//! Cross-validation of the analytical model (Equations 1–5) against the
//! discrete-event simulation: each of the three throughput regimes the
//! paper identifies must emerge from the simulator and agree with the
//! closed form.

use cxl_gpu_graph::core::access::DeviceRequest;
use cxl_gpu_graph::core::system::{BackendConfig, SystemConfig};
use cxl_gpu_graph::model::eqs::{throughput, ThroughputParams};
use cxl_gpu_graph::prelude::*;
use cxl_gpu_graph::sim::SimTime;

fn uniform_requests(n: usize, bytes: u64, stride: u64) -> Vec<DeviceRequest> {
    (0..n)
        .map(|i| DeviceRequest {
            addr: i as u64 * stride,
            bytes, overhead_ps: 0 })
        .collect()
}

fn simulated_throughput(sys: &SystemConfig, reqs: &[DeviceRequest]) -> (f64, f64) {
    let mut engine = sys.build_engine();
    let batch = engine.run_batch(SimTime::ZERO, reqs);
    let bytes: u64 = reqs.iter().map(|r| r.bytes).sum();
    let t = bytes as f64 / 1e6 / batch.end.as_secs_f64();
    (t, batch.latency.mean())
}

#[test]
fn bandwidth_regime_w_capped() {
    // Host DRAM on Gen4: infinite IOPS, short latency -> T = W.
    let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
    let (t, _) = simulated_throughput(&sys, &uniform_requests(60_000, 128, 4096));
    assert!(
        (t - 24_000.0).abs() / 24_000.0 < 0.03,
        "expected W-capped ~24,000 MB/s, got {t}"
    );
}

#[test]
fn littles_law_regime_nmax_over_l() {
    // CXL with +4 us added latency on Gen4: Nmax * d / L binds.
    let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen4, 5).with_added_latency_us(4.0);
    let (t_sim, l_measured) = simulated_throughput(&sys, &uniform_requests(60_000, 128, 4096));
    let model = throughput(
        &ThroughputParams {
            iops: f64::INFINITY,
            latency_us: l_measured,
            nmax: 768.0,
            bandwidth_mb_per_sec: 24_000.0,
        },
        128.0,
    );
    let err = (t_sim - model).abs() / model;
    assert!(
        err < 0.15,
        "Little regime: sim {t_sim} vs model {model} (L = {l_measured} us)"
    );
    // And it must be well below the bandwidth cap.
    assert!(t_sim < 0.8 * 24_000.0, "should not be W-capped: {t_sim}");
}

#[test]
fn iops_regime_s_times_d() {
    // BaM's 4 SSDs at 512 B transfers: S = 6 MIOPS binds well below W
    // (§3.3.2: "the IOPS is the limiting factor").
    let sys = SystemConfig::bam_on_nvme(PcieGen::Gen4, 4);
    let (t, _) = simulated_throughput(&sys, &uniform_requests(40_000, 512, 4096));
    let model_mb = 6e6 * 512.0 / 1e6; // S * d = 3,072 MB/s
    let err = (t - model_mb).abs() / model_mb;
    assert!(err < 0.12, "IOPS regime: sim {t} vs model {model_mb}");
}

#[test]
fn iops_regime_vanishes_at_4kb() {
    // At BaM's chosen d = 4 kB the same drives saturate the link —
    // exactly why BaM picks 4 kB (d_opt = W / S).
    let sys = SystemConfig::bam_on_nvme(PcieGen::Gen4, 4);
    let (t, _) = simulated_throughput(&sys, &uniform_requests(30_000, 4096, 4096));
    assert!(
        t > 0.85 * 24_000.0,
        "4 kB transfers should approach W, got {t}"
    );
}

#[test]
fn xlfdd_sublist_transfers_saturate_the_link() {
    // §4.1.1: 16 drives at 11 MIOPS with ~256 B transfers exceed the
    // 93.75 MIOPS requirement, so the link is the limit.
    let sys = SystemConfig::xlfdd(PcieGen::Gen4, 16);
    let (t, _) = simulated_throughput(&sys, &uniform_requests(100_000, 256, 4096));
    assert!(t > 0.85 * 24_000.0, "XLFDD should be W-capped, got {t}");
}

#[test]
fn xlfdd_iops_bound_with_tiny_transfers() {
    // With 16 B transfers the same array is IOPS-bound:
    // T = 16 * 11 MIOPS * 16 B = 2,816 MB/s.
    let sys = SystemConfig::xlfdd(PcieGen::Gen4, 16);
    let (t, _) = simulated_throughput(&sys, &uniform_requests(200_000, 16, 4096));
    let model = 16.0 * 11.0 * 16.0;
    let err = (t - model).abs() / model;
    assert!(err < 0.15, "sim {t} vs model {model}");
}

#[test]
fn equation1_runtime_identity_holds_per_run() {
    // t = D / T by construction of the metrics; verify on a real run.
    let g = GraphSpec::urand(12).seed(3).build();
    let r = Traversal::bfs(0).run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
    let d_mb = r.metrics.fetched_bytes as f64 / 1e6;
    let t = r.metrics.throughput_mb_per_sec();
    let runtime = r.metrics.runtime.as_secs_f64();
    assert!((d_mb / t - runtime).abs() / runtime < 1e-9);
}

#[test]
fn gen3_latency_allowance_matches_eq6() {
    // Below the Eq. 6 allowance the runtime matches DRAM; above it the
    // ratio grows roughly like L / allowance.
    let g = GraphSpec::urand(13).seed(1).build();
    let bfs = Traversal::bfs(0);
    let dram = bfs.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen3));
    let ratio = |add: f64| {
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(add);
        bfs.run(&g, &sys).metrics.runtime.as_secs_f64() / dram.metrics.runtime.as_secs_f64()
    };
    assert!(ratio(0.0) < 1.06, "+0 should match DRAM: {}", ratio(0.0));
    assert!(ratio(0.5) < 1.10, "+0.5 still within allowance: {}", ratio(0.5));
    let r3 = ratio(3.0);
    assert!(
        (1.6..2.6).contains(&r3),
        "+3 us should degrade ~2x (Fig. 11): {r3}"
    );
}

#[test]
fn cxl_backend_count_affects_only_headroom() {
    // §4.2.2 sizes 5 devices so collective tags (320) exceed Gen3's
    // Nmax (256). With only 1 device (64 GPU-visible slots), the device
    // becomes the bottleneck and runtime degrades.
    let g = GraphSpec::urand(13).seed(1).build();
    let bfs = Traversal::bfs(0);
    let five = bfs.run(&g, &SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5));
    let one = bfs.run(&g, &SystemConfig::emogi_on_cxl(PcieGen::Gen3, 1));
    let ratio =
        one.metrics.runtime.as_secs_f64() / five.metrics.runtime.as_secs_f64();
    assert!(ratio > 1.5, "single device should bottleneck: {ratio}");
}

#[test]
fn backend_config_names_align_with_reports() {
    let g = GraphSpec::urand(10).seed(1).build();
    for (sys, expect) in [
        (SystemConfig::emogi_on_dram(PcieGen::Gen4), "host-dram:emogi"),
        (SystemConfig::xlfdd(PcieGen::Gen4, 16), "xlfdd:direct"),
        (SystemConfig::bam_on_nvme(PcieGen::Gen4, 4), "nvme:bam"),
    ] {
        let r = Traversal::bfs(0).run(&g, &sys);
        assert_eq!(r.backend, expect);
        match (&sys.backend, expect) {
            (BackendConfig::HostDram { .. }, "host-dram:emogi") => {}
            (BackendConfig::Xlfdd { .. }, "xlfdd:direct") => {}
            (BackendConfig::Nvme { .. }, "nvme:bam") => {}
            _ => panic!("mismatched backend"),
        }
    }
}
