//! End-to-end determinism and serialization: identical configurations
//! must produce bit-identical results across runs and across rayon
//! parallelism, and every public config/report type must round-trip
//! through serde.

use cxl_gpu_graph::core::runner::{sweep, sweep_systems, sweep_with_threads};
use cxl_gpu_graph::core::system::SystemConfig as Sys;
use cxl_gpu_graph::prelude::*;
use proptest::prelude::*;

#[test]
fn full_stack_repeatability() {
    let spec = GraphSpec::kron(11).seed(99);
    let g1 = spec.build();
    let g2 = spec.build();
    assert_eq!(g1, g2, "graph generation must be deterministic");

    let sys = Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(1.5);
    let src = g1.max_degree_vertex().unwrap();
    for trav in [
        Traversal::bfs(src),
        Traversal::sssp(src),
        Traversal::pagerank(2),
    ] {
        let a = trav.run(&g1, &sys);
        let b = trav.run(&g2, &sys);
        assert_eq!(a.metrics.runtime, b.metrics.runtime, "{}", trav.name());
        assert_eq!(a.metrics.fetched_bytes, b.metrics.fetched_bytes);
        assert_eq!(a.metrics.requests, b.metrics.requests);
        assert_eq!(a.reached, b.reached);
        assert_eq!(a.levels.len(), b.levels.len());
    }
}

#[test]
fn parallel_sweep_equals_sequential_run() {
    let g = GraphSpec::urand(11).seed(5).build();
    let systems: Vec<Sys> = (0..6)
        .map(|i| Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(i as f64 * 0.5))
        .collect();
    let par = sweep_systems(&g, Traversal::bfs(0), &systems);
    for (i, sys) in systems.iter().enumerate() {
        let seq = Traversal::bfs(0).run(&g, sys);
        assert_eq!(par[i].metrics.runtime, seq.metrics.runtime, "point {i}");
    }
}

#[test]
fn full_stack_is_byte_identical_across_thread_counts() {
    // Generator -> CSR -> sweep, serialized exactly as the figure
    // binaries serialize it, compared across pool sizes. This is the
    // in-process version of ci.sh's cross-thread-count JSON diff.
    let run = |threads: usize| {
        rayon::with_num_threads(threads, || {
            let g = GraphSpec::kron(10).seed(42).build();
            let systems: Vec<Sys> = (0..5)
                .map(|i| Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(i as f64 * 0.4))
                .collect();
            let reports = sweep_systems(&g, Traversal::bfs(g.max_degree_vertex().unwrap()), &systems);
            serde_json::to_string(&reports).expect("serialize sweep reports")
        })
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_eq!(
            run(threads),
            reference,
            "sweep JSON differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn nested_parallel_sweeps_are_stable() {
    // Sweep of sweeps — the shape fig11 uses. Run twice, compare.
    let run_all = || {
        sweep(vec![0.0f64, 1.0, 2.0], |add| {
            let g = GraphSpec::urand(10).seed(1).build();
            let sys = Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(add);
            Traversal::bfs(0).run(&g, &sys).metrics.runtime.as_ps()
        })
    };
    assert_eq!(run_all(), run_all());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The PR 6 parallel paths — round-shard simulation in the engine and
    /// parallel BFS frontier expansion — under the same property sweep
    /// the graph pipeline gets: any family × scale × seed, every worker
    /// count must yield identical `RunMetrics` *and* identical trace
    /// bytes.
    #[test]
    fn parallel_engine_and_traversal_are_thread_count_invariant(
        fam in 0u8..3,
        scale in 7u32..11,
        seed in 0u64..1_000_000,
        sys_pick in 0u8..4,
    ) {
        let spec = match fam {
            0 => GraphSpec::urand(scale),
            1 => GraphSpec::kron(scale),
            _ => GraphSpec::friendster_like(scale),
        }
        .seed(seed);
        let sys = match sys_pick {
            0 => Sys::emogi_on_dram(PcieGen::Gen4),
            1 => Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(1.0),
            2 => Sys::bam_on_nvme(PcieGen::Gen4, 4),
            _ => Sys::xlfdd(PcieGen::Gen4, 16),
        };
        let observe = |threads: usize| {
            rayon::with_num_threads(threads, || {
                let g = spec.build();
                let src = g.max_degree_vertex().unwrap();
                let trace = cxl_gpu_graph::core::traversal::bfs_trace(&g, src);
                let reports: Vec<_> = [Traversal::bfs(src), Traversal::sssp(src)]
                    .iter()
                    .map(|t| t.run(&g, &sys))
                    .collect();
                (
                    serde_json::to_string(&trace).unwrap(),
                    serde_json::to_string(&reports).unwrap(),
                )
            })
        };
        let reference = observe(1);
        for threads in [2, 8] {
            let got = observe(threads);
            assert_eq!(got.0, reference.0, "trace bytes differ at {threads} threads");
            assert_eq!(got.1, reference.1, "run reports differ at {threads} threads");
        }
    }
}

#[test]
fn sweep_with_threads_pins_the_pool_and_preserves_results() {
    // The campaign knob: the same sweep through an explicit pool size
    // must match the ambient-pool run bit-for-bit, whatever the size.
    let g = GraphSpec::kron(10).seed(3).build();
    let src = g.max_degree_vertex().unwrap();
    let points: Vec<f64> = vec![0.0, 0.8, 1.6, 2.4];
    let run = |threads: usize| {
        sweep_with_threads(threads, points.clone(), |add| {
            let sys = Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(add);
            Traversal::bfs(src).run(&g, &sys).metrics.runtime.as_ps()
        })
    };
    let ambient = sweep(points.clone(), |add| {
        let sys = Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(add);
        Traversal::bfs(src).run(&g, &sys).metrics.runtime.as_ps()
    });
    for threads in [1, 2, 8] {
        assert_eq!(run(threads), ambient, "sweep_with_threads({threads})");
    }
}

#[test]
fn configs_serde_round_trip() {
    let sys = Sys::xlfdd(PcieGen::Gen4, 16).with_alignment(64);
    let json = serde_json::to_string(&sys).unwrap();
    let back: Sys = serde_json::from_str(&json).unwrap();
    assert_eq!(sys, back);

    let spec = GraphSpec::friendster_like(20).seed(7);
    let json = serde_json::to_string(&spec).unwrap();
    assert_eq!(spec, serde_json::from_str::<GraphSpec>(&json).unwrap());
}

#[test]
fn reports_serialize_for_the_results_dump() {
    let g = GraphSpec::urand(9).seed(1).build();
    let r = Traversal::bfs(0).run(&g, &Sys::emogi_on_dram(PcieGen::Gen4));
    let json = serde_json::to_string(&r).unwrap();
    assert!(json.contains("\"runtime\""));
    assert!(json.contains("\"levels\""));
    let back: cxl_gpu_graph::core::metrics::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.reached, r.reached);
    assert_eq!(back.metrics.fetched_bytes, r.metrics.fetched_bytes);
}

#[test]
fn different_seeds_change_results_but_not_shape() {
    let sys = Sys::emogi_on_dram(PcieGen::Gen4);
    let a = Traversal::bfs(0).run(&GraphSpec::urand(11).seed(1).build(), &sys);
    let b = Traversal::bfs(0).run(&GraphSpec::urand(11).seed(2).build(), &sys);
    assert_ne!(a.metrics.runtime, b.metrics.runtime);
    // Same scale and degree: totals agree within level-structure noise
    // (small graphs can differ by a BFS level).
    let ra = a.metrics.runtime.as_secs_f64();
    let rb = b.metrics.runtime.as_secs_f64();
    assert!((ra / rb - 1.0).abs() < 0.25, "{ra} vs {rb}");
}

#[test]
fn spill_storage_is_byte_identical_to_mem_across_the_stack() {
    // The out-of-core graph backend is an execution strategy, not a
    // result input: the exact serialized reports the figure binaries
    // dump must come out byte-for-byte the same whether the CSR lives
    // in memory or is demand-paged from a spill file — at any thread
    // count. This is the in-process version of ci.sh's spill-campaign
    // byte-diff gate.
    use cxl_gpu_graph::graph::{SpillConfig, StorageMode};
    let spec = GraphSpec::kron(10).seed(42);
    let dir = std::env::temp_dir().join(format!("cxlg-spill-diff-{}", std::process::id()));
    let cfg = SpillConfig::new(&dir);
    let mem = spec.build_with(StorageMode::Mem, &cfg);
    let spill = spec.build_with(StorageMode::Spill, &cfg);
    assert_eq!(mem.fingerprint(), spill.fingerprint(), "backends must hold the same graph");

    let systems: Vec<Sys> = (0..4)
        .map(|i| Sys::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(i as f64 * 0.4))
        .collect();
    let src = mem.max_degree_vertex().unwrap();
    let reference: Vec<String> = [Traversal::bfs(src), Traversal::sssp(src), Traversal::pagerank(2)]
        .into_iter()
        .map(|t| serde_json::to_string(&sweep_systems(&mem, t, &systems)).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let got: Vec<String> = rayon::with_num_threads(threads, || {
            [Traversal::bfs(src), Traversal::sssp(src), Traversal::pagerank(2)]
                .into_iter()
                .map(|t| serde_json::to_string(&sweep_systems(&spill, t, &systems)).unwrap())
                .collect()
        });
        assert_eq!(got, reference, "spill reports diverge at {threads} thread(s)");
    }
    drop(spill);
    let _ = std::fs::remove_dir(&dir);
}
