//! Property-based tests (proptest) on the core invariants the paper's
//! analysis rests on: coverage and alignment of access-method requests,
//! interleave partitioning, coalescer geometry, CSR structure, RAF
//! bounds, and model monotonicity.

use cxl_gpu_graph::core::access::AccessMethod;
use cxl_gpu_graph::core::raf::{default_capacity, raf_for_trace};
use cxl_gpu_graph::core::traversal::bfs_trace;
use cxl_gpu_graph::device::interleave::Interleave;
use cxl_gpu_graph::gpu::coalesce::coalesce_span_vec;
use cxl_gpu_graph::graph::builder::csr_from_edges;
use cxl_gpu_graph::graph::layout::{span_aligned_bytes, ByteSpan};
use cxl_gpu_graph::model::eqs::{throughput, ThroughputParams};
use cxl_gpu_graph::prelude::*;
use proptest::prelude::*;

fn span_strategy() -> impl Strategy<Value = ByteSpan> {
    // 8 B-granular spans, as the edge list layout guarantees.
    (0u64..1_000_000, 1u64..400).prop_map(|(off8, len8)| ByteSpan {
        offset: off8 * 8,
        len: len8 * 8,
    })
}

proptest! {
    #[test]
    fn coalescer_covers_span_exactly_once(span in span_strategy()) {
        let ts = coalesce_span_vec(span, 128, 32);
        // Transactions are contiguous, sector-aligned, within lines, and
        // cover the span.
        prop_assert!(ts.first().unwrap().addr <= span.offset);
        let end = ts.last().map(|t| t.addr + t.bytes).unwrap();
        prop_assert!(end >= span.end());
        for w in ts.windows(2) {
            prop_assert_eq!(w[0].addr + w[0].bytes, w[1].addr);
        }
        for t in &ts {
            prop_assert_eq!(t.addr % 32, 0);
            prop_assert!(t.bytes >= 32 && t.bytes <= 128 && t.bytes % 32 == 0);
            prop_assert_eq!(t.addr / 128, (t.addr + t.bytes - 1) / 128);
        }
        // Total fetched equals the aligned-span cost at 32 B.
        let total: u64 = ts.iter().map(|t| t.bytes).sum();
        prop_assert_eq!(total, span_aligned_bytes(span, 32));
    }

    #[test]
    fn access_methods_cover_every_requested_byte(
        span in span_strategy(),
        method_id in 0usize..3,
    ) {
        let mut method = match method_id {
            0 => AccessMethod::emogi(),
            1 => AccessMethod::bam(1 << 22, 4096),
            _ => AccessMethod::xlfdd_direct(16),
        };
        let mut reqs = Vec::new();
        method.requests_for_span(span, &mut reqs);
        // Every byte of the span is covered by some request (the BaM
        // cache never hits on a fresh cache).
        let covered = |b: u64| reqs.iter().any(|r| (r.addr..r.addr + r.bytes).contains(&b));
        prop_assert!(covered(span.offset), "first byte uncovered");
        prop_assert!(covered(span.end() - 1), "last byte uncovered");
        prop_assert!(covered(span.offset + span.len / 2), "middle byte uncovered");
        // All requests respect the method's alignment.
        let a = method.alignment();
        for r in &reqs {
            prop_assert_eq!(r.addr % a, 0, "misaligned request");
            prop_assert!(r.bytes > 0);
        }
    }

    #[test]
    fn direct_method_over_fetch_is_bounded_by_alignment(span in span_strategy()) {
        let mut m = AccessMethod::xlfdd_direct(16);
        let mut reqs = Vec::new();
        m.requests_for_span(span, &mut reqs);
        let total: u64 = reqs.iter().map(|r| r.bytes).sum();
        prop_assert!(total >= span.len);
        // At most one alignment unit of slack at each end.
        prop_assert!(total <= span.len + 2 * 16);
    }

    #[test]
    fn interleave_partitions_reads(
        addr in 0u64..10_000_000,
        bytes in 1u64..20_000,
        n in 1u32..16,
        shift in 7u32..13,
    ) {
        let il = Interleave::new(1 << shift, n);
        let mut total = 0u64;
        let mut last_end = addr;
        il.split_read(addr, bytes, |dev, local, len| {
            assert!(dev < n);
            assert!(len > 0);
            // Pieces are contiguous in the flat address space.
            let (rdev, rlocal) = il.route(last_end);
            assert_eq!((rdev, rlocal), (dev, local));
            last_end += len;
            total += len;
        });
        prop_assert_eq!(total, bytes);
        prop_assert_eq!(last_end, addr + bytes);
    }

    #[test]
    fn interleave_route_is_a_bijection_on_blocks(
        n in 1u32..9,
        blocks in 1u64..200,
    ) {
        let il = Interleave::new(4096, n);
        let mut seen = std::collections::HashSet::new();
        for b in 0..blocks {
            let (dev, local) = il.route(b * 4096);
            prop_assert!(seen.insert((dev, local)), "collision at block {}", b);
            prop_assert_eq!(local % 4096, 0);
        }
    }

    #[test]
    fn model_throughput_never_exceeds_any_cap(
        iops_m in 1.0f64..1000.0,
        lat_us in 0.1f64..50.0,
        d in 16.0f64..8192.0,
    ) {
        let p = ThroughputParams {
            iops: iops_m * 1e6,
            latency_us: lat_us,
            nmax: 768.0,
            bandwidth_mb_per_sec: 24_000.0,
        };
        let t = throughput(&p, d);
        prop_assert!(t <= 24_000.0 + 1e-9);
        prop_assert!(t <= iops_m * d + 1e-9);
        prop_assert!(t <= 768.0 * d / lat_us + 1e-9);
        prop_assert!(t > 0.0);
    }

    #[test]
    fn csr_from_random_edges_is_structurally_valid(
        edges in proptest::collection::vec((0u32..200, 0u32..200), 0..500),
        symmetrize in any::<bool>(),
        dedup in any::<bool>(),
    ) {
        let g = csr_from_edges(200, &edges, symmetrize, dedup);
        prop_assert!(g.validate().is_ok());
        let expected_max = edges.len() as u64 * if symmetrize { 2 } else { 1 };
        prop_assert!(g.num_edges() <= expected_max);
        if !dedup {
            prop_assert_eq!(g.num_edges(), expected_max);
        }
        // Neighbor lists are sorted (builder sorts arcs).
        for v in 0..200u32 {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn raf_bounded_by_worst_case(scale in 7u32..10, seed in 0u64..50) {
        // 1 <= RAF(a) <= (avg_sublist + 2a) / avg_sublist roughly; we
        // assert the hard bounds: at least (close to) 1, at most a full
        // alignment block per 8 B entry.
        let g = GraphSpec::urand(scale).seed(seed).build();
        let trace = bfs_trace(&g, 0);
        for a in [8u64, 64, 512] {
            let p = raf_for_trace(&g, &trace, a, default_capacity(&g, a));
            prop_assert!(p.raf <= a as f64, "RAF {} > alignment {}", p.raf, a);
            prop_assert!(p.raf > 0.2, "RAF {} absurdly low", p.raf);
            prop_assert_eq!(p.fetched_bytes % a, 0, "fetches are line-granular");
        }
    }

    #[test]
    fn bfs_runtime_scales_with_graph_size(seed in 0u64..10) {
        // Doubling the edge count should roughly double a W-capped run.
        let small = GraphSpec::urand(10).seed(seed).build();
        let large = GraphSpec::urand(11).seed(seed).build();
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
        let ts = Traversal::bfs(0).run(&small, &sys).metrics.runtime.as_secs_f64();
        let tl = Traversal::bfs(0).run(&large, &sys).metrics.runtime.as_secs_f64();
        let ratio = tl / ts;
        prop_assert!((1.4..3.0).contains(&ratio), "scaling ratio {}", ratio);
    }
}
