//! The paper's headline findings as executable assertions. Each test
//! corresponds to a figure or observation; EXPERIMENTS.md records the
//! measured numbers. Scales are small so the suite stays fast; the
//! bench binaries rerun the same experiments at larger scale.

use cxl_gpu_graph::core::microbench::{cxl_cpu_random_read, pointer_chase_latency};
use cxl_gpu_graph::core::raf::{default_capacity, raf_for_trace};
use cxl_gpu_graph::core::runner::geometric_mean;
use cxl_gpu_graph::core::traversal::bfs_trace;
use cxl_gpu_graph::device::cxl_mem::CxlMemConfig;
use cxl_gpu_graph::prelude::*;

// Scale floor: the XLFDD flash-die model needs enough 4 kB pages per
// drive (edge list >= ~16 MB over 16 drives) for die-level load to
// balance the way it does at the paper's 30 GB scale; below that, die
// contention is a small-scale artifact rather than a property of the
// system.
const SCALE: u32 = 15;

fn urand() -> Csr {
    GraphSpec::urand(SCALE).seed(0x5EED).build()
}

#[test]
fn observation1_smaller_alignment_is_better() {
    // Fig. 5: XLFDD runtime increases monotonically with alignment, and
    // 16 B lands close to EMOGI on host DRAM.
    let g = urand();
    let bfs = Traversal::bfs(0);
    let emogi = bfs.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
    let base = emogi.metrics.runtime.as_secs_f64();
    let mut last = 0.0;
    for a in [16u64, 64, 256, 4096] {
        let r = bfs.run(&g, &SystemConfig::xlfdd(PcieGen::Gen4, 16).with_alignment(a));
        let norm = r.metrics.runtime.as_secs_f64() / base;
        assert!(
            norm >= last * 0.98,
            "alignment {a}: normalized {norm} < previous {last}"
        );
        last = norm;
        if a == 16 {
            assert!(
                (0.8..1.4).contains(&norm),
                "16 B XLFDD should approach host DRAM (paper ~1.1x), got {norm}"
            );
        }
        if a == 4096 {
            assert!(norm > 1.7, "4 kB should be much slower: {norm}");
        }
    }
}

#[test]
fn fig6_ranking_xlfdd_beats_bam() {
    // Fig. 6: XLFDD (16 B) is much closer to EMOGI than BaM on every
    // dataset/algorithm pair; paper geomeans 1.13x vs 2.76x.
    let datasets = [
        GraphSpec::urand(SCALE).seed(1),
        GraphSpec::kron(SCALE).seed(1),
        GraphSpec::friendster_like(SCALE).seed(1),
    ];
    let mut xl_ratios = Vec::new();
    let mut bam_ratios = Vec::new();
    for spec in datasets {
        let g = spec.build();
        let src = g.max_degree_vertex().unwrap();
        for trav in [Traversal::bfs(src), Traversal::sssp(src)] {
            let base = trav
                .run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4))
                .metrics
                .runtime
                .as_secs_f64();
            let xl = trav.run(&g, &SystemConfig::xlfdd(PcieGen::Gen4, 16));
            let bam = trav.run(&g, &SystemConfig::bam_on_nvme(PcieGen::Gen4, 4));
            xl_ratios.push(xl.metrics.runtime.as_secs_f64() / base);
            bam_ratios.push(bam.metrics.runtime.as_secs_f64() / base);
        }
    }
    let xl_geo = geometric_mean(&xl_ratios);
    let bam_geo = geometric_mean(&bam_ratios);
    assert!(
        xl_geo < bam_geo,
        "XLFDD ({xl_geo:.2}) must beat BaM ({bam_geo:.2})"
    );
    assert!(
        (0.8..1.8).contains(&xl_geo),
        "XLFDD geomean {xl_geo:.2} (paper 1.13)"
    );
    assert!(
        (1.6..4.5).contains(&bam_geo),
        "BaM geomean {bam_geo:.2} (paper 2.76)"
    );
}

#[test]
fn observation2_latency_knee_near_allowance() {
    // Fig. 11: flat while under the Eq. 6 allowance, degraded at +3 us.
    let g = urand();
    let bfs = Traversal::bfs(0);
    let dram = bfs.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen3));
    let ratio = |add: f64| {
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(add);
        bfs.run(&g, &sys).metrics.runtime.as_secs_f64() / dram.metrics.runtime.as_secs_f64()
    };
    assert!(ratio(0.0) < 1.05);
    assert!(ratio(0.5) < 1.10);
    assert!(ratio(3.0) > 1.6);
}

#[test]
fn fig9_latency_ladder() {
    // DRAM ~1.1 us < CXL(+0) ~1.6 us < CXL(+2) ~3.5 us, far socket
    // marginally above near.
    let region = 1 << 24;
    let dram = pointer_chase_latency(
        &SystemConfig::emogi_on_dram(PcieGen::Gen4),
        region,
        300,
        1,
    )
    .latency_us;
    let dram_far = pointer_chase_latency(
        &SystemConfig::emogi_on_dram(PcieGen::Gen4).on_far_socket(),
        region,
        300,
        1,
    )
    .latency_us;
    let cxl0 = pointer_chase_latency(
        &SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1),
        region,
        300,
        1,
    )
    .latency_us;
    let cxl2 = pointer_chase_latency(
        &SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1).with_added_latency_us(2.0),
        region,
        300,
        1,
    )
    .latency_us;
    assert!((1.0..1.35).contains(&dram), "DRAM {dram}");
    assert!(dram_far > dram && dram_far - dram < 0.25, "far {dram_far}");
    assert!((0.35..0.75).contains(&(cxl0 - dram)), "CXL adds {}", cxl0 - dram);
    assert!(cxl2 > cxl0 + 1.5, "bridge shift {} -> {}", cxl0, cxl2);
}

#[test]
fn fig10_throughput_cap_and_decay() {
    let t = |add: f64| {
        cxl_cpu_random_read(
            CxlMemConfig::default().with_added_latency_us(add),
            1 << 28,
            30_000,
            512,
            3,
        )
    };
    let base = t(0.0);
    let mid = t(2.0);
    let slow = t(8.0);
    assert!((base.throughput_mb_per_sec - 5_700.0).abs() / 5_700.0 < 0.05);
    assert!(mid.throughput_mb_per_sec < base.throughput_mb_per_sec);
    assert!(slow.throughput_mb_per_sec < 1_200.0, "{}", slow.throughput_mb_per_sec);
    // Outstanding pinned at the 128-tag limit throughout saturation.
    assert!((slow.outstanding - 128.0).abs() < 12.0);
}

#[test]
fn fig3_raf_shape_replicated() {
    // RAF near 1 at 8 B, meaningfully above 1 at 4 kB, monotone.
    let g = urand();
    let trace = bfs_trace(&g, 0);
    let r8 = raf_for_trace(&g, &trace, 8, default_capacity(&g, 8));
    let r512 = raf_for_trace(&g, &trace, 512, default_capacity(&g, 512));
    let r4k = raf_for_trace(&g, &trace, 4096, default_capacity(&g, 4096));
    assert!(r8.raf <= 1.01, "{}", r8.raf);
    assert!(r512.raf > r8.raf);
    assert!(r4k.raf > r512.raf);
    assert!(r4k.raf > 1.5 && r4k.raf < 20.0, "{}", r4k.raf);
}

#[test]
fn table2_frontier_profile() {
    // §3.5.1: most BFS depths carry frontiers far larger than Nmax.
    let g = urand();
    let trace = bfs_trace(&g, 0);
    let big_levels = trace.iter().filter(|l| l.len() > 768).count();
    assert!(
        big_levels >= 2,
        "expected multiple levels above Nmax, got {big_levels}"
    );
    let peak = trace.iter().map(|l| l.len()).max().unwrap();
    assert!(peak > g.num_vertices() / 4);
}

#[test]
fn extensions_run_end_to_end() {
    // PageRank and CC (Discussion-section extensions) run on every
    // backend without panicking and with sane metrics.
    let g = GraphSpec::kron(10).seed(2).build();
    for sys in [
        SystemConfig::emogi_on_dram(PcieGen::Gen4),
        SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5),
        SystemConfig::xlfdd(PcieGen::Gen4, 16),
    ] {
        let pr = Traversal::pagerank(2).run(&g, &sys);
        assert_eq!(pr.levels.len(), 2);
        assert!(pr.metrics.raf() >= 0.9);
        let cc = Traversal::connected_components().run(&g, &sys);
        assert!(cc.reached >= 1, "at least one component");
    }
}

#[test]
fn pagerank_is_less_alignment_sensitive_than_bfs() {
    // Sequential sweeps amortize large cache lines across adjacent
    // sublists — the reason Graphene-style systems tolerate big blocks
    // for PageRank (Related Work) while random-access BFS does not.
    // Measured through the caching (BaM) access method at 4 kB lines.
    let g = urand();
    let sys = SystemConfig::bam_on_nvme(PcieGen::Gen4, 4); // 4 kB lines
    let bfs_raf = Traversal::bfs(0).run(&g, &sys).metrics.raf();
    let pr_raf = Traversal::pagerank(1).run(&g, &sys).metrics.raf();
    assert!(
        pr_raf < bfs_raf,
        "sequential PageRank RAF {pr_raf:.2} should undercut BFS {bfs_raf:.2}"
    );
    assert!(pr_raf < 1.6, "sequential sweep should be near RAF 1: {pr_raf:.2}");
}
