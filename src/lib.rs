//! # cxl-gpu-graph
//!
//! A full reproduction of **“GPU Graph Processing on CXL-Based
//! Microsecond-Latency External Memory”** (Sano et al., Kioxia; SC-W 2023)
//! as a Rust workspace: graph substrate, discrete-event hardware simulator
//! (GPU warps, PCIe link, CXL memory, microsecond flash), the three
//! external-memory access methods the paper studies (EMOGI zero-copy,
//! BaM software-cache, XLFDD direct), the traversal workloads (BFS, SSSP,
//! plus PageRank/CC extensions), the paper's analytical model, and a bench
//! harness that regenerates every table and figure.
//!
//! This facade crate re-exports the member crates under stable names and
//! hosts the runnable examples and cross-crate integration tests. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use cxl_gpu_graph::prelude::*;
//!
//! // A small uniform-random graph with the paper's urand average degree.
//! let graph = GraphSpec::uniform(14, 32).seed(1).build();
//!
//! // EMOGI-style zero-copy BFS against latency-adjustable CXL memory.
//! let system = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5)
//!     .with_added_latency_us(1.0);
//! let report = Traversal::bfs(0).run(&graph, &system);
//! assert!(report.metrics.runtime.as_us_f64() > 0.0);
//! assert!(report.reached > 1);
//! ```

pub use cxlg_core as core;
pub use cxlg_device as device;
pub use cxlg_gpu as gpu;
pub use cxlg_graph as graph;
pub use cxlg_link as link;
pub use cxlg_model as model;
pub use cxlg_sim as sim;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use cxlg_core::access::AccessMethod;
    pub use cxlg_core::metrics::{RunMetrics, RunReport};
    pub use cxlg_core::system::SystemConfig;
    pub use cxlg_core::traversal::Traversal;
    pub use cxlg_graph::spec::GraphSpec;
    pub use cxlg_graph::Csr;
    pub use cxlg_link::pcie::PcieGen;
    pub use cxlg_sim::{SimDuration, SimTime};
}
