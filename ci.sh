#!/usr/bin/env bash
# CI for cxl-gpu-graph: tier-1 verification plus docs and bench-target
# compilation. Everything runs offline (dependencies are vendored under
# vendor/; see README.md "Offline dependency policy").
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1, LTO baseline)"
cargo build --release

echo "==> cargo test -q (tier-1, all workspace members)"
cargo test -q

echo "==> cargo doc --no-deps with rustdoc warnings denied"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> bench targets compile"
cargo build --benches

echo "==> quickstart example runs"
cargo run --release --example quickstart >/dev/null

echo "==> all figure/table binaries run (small scale)"
CXLG_SCALE=10 cargo run --release -p cxlg-bench --bin all_figures >/dev/null

echo "CI OK"
