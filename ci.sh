#!/usr/bin/env bash
# CI for cxl-gpu-graph: tier-1 verification plus docs and bench-target
# compilation. Everything runs offline (dependencies are vendored under
# vendor/; see README.md "Offline dependency policy").
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1, LTO baseline)"
cargo build --release

echo "==> cxlg lint --deny (determinism & unsafety static analysis, rules D1-D6)"
# The cheap early gate: every workspace .rs file is checked against the
# determinism invariants (no hash-order iteration, no wall-clock/env
# reads in result paths, seeded RNG only, pinned float accumulation,
# SAFETY-commented unsafe) before any simulation runs. Un-pragma'd
# violations are red; the lint prints its wall-clock on stderr.
cargo run --release -p cxlg-bench --bin cxlg -- lint --deny

echo "==> cargo test -q (tier-1, all workspace members, 1-thread and 4-thread pools)"
# The vendored rayon promises bit-identical results at any pool size;
# run the whole suite at both extremes so thread-count nondeterminism
# (not just crashes) fails the gate.
RAYON_NUM_THREADS=1 cargo test -q
RAYON_NUM_THREADS=4 cargo test -q

echo "==> cargo doc --no-deps with rustdoc warnings denied"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> bench targets compile"
cargo build --benches

echo "==> quickstart example runs"
cargo run --release --example quickstart >/dev/null

echo "==> streaming CSR builder stays within the peak-RSS budget (scale 18, <= 10 B/arc)"
# The two-pass scatter builder promises ~4 B per directed arc plus the
# per-vertex offset/cursor arrays; 10 B/arc leaves slack for the process
# baseline while still failing loudly if arc materialization ever
# creeps back in (the sort-based path measured ~19-24 B/arc).
GM="cargo run --release -p cxlg-bench --bin cxlg -- graph-mem"
U18_MEM=$($GM urand 18 --max-bytes-per-arc=10);  echo "    $U18_MEM"
K18_MEM=$($GM kron 18 --max-bytes-per-arc=12);   echo "    $K18_MEM"
U20_MEM=$($GM urand 20 --max-bytes-per-arc=10);  echo "    $U20_MEM"

echo "==> a scale-22 urand graph (134M arcs) builds to completion"
U22_MEM=$($GM urand 22 --max-bytes-per-arc=10);  echo "    $U22_MEM"

echo "==> out-of-core spill backend: tighter peak-RSS budgets up the scale ladder"
# Spill mode keeps only the offsets and a bounded page cache resident
# and streams the build through fixed-size segments, so its peak RSS
# must land *under* the resident mem CSR (4.25 B/arc of offsets +
# targets alone) at scale 18 and keep falling as scale grows — the
# demonstration that the builder, not the graph, bounds memory.
U18_SPILL=$($GM urand 18 --storage=spill --max-bytes-per-arc=4);  echo "    $U18_SPILL"
K18_SPILL=$($GM kron 18 --storage=spill --max-bytes-per-arc=4);   echo "    $K18_SPILL"
U20_SPILL=$($GM urand 20 --storage=spill --max-bytes-per-arc=2);  echo "    $U20_SPILL"
U22_SPILL=$($GM urand 22 --storage=spill --max-bytes-per-arc=1.5); echo "    $U22_SPILL"

echo "==> spill fingerprints are byte-identical to mem at every ladder rung"
fp() { grep -o 'fingerprint=0x[0-9a-f]*' <<<"$1"; }
[ "$(fp "$U18_MEM")" = "$(fp "$U18_SPILL")" ] || { echo "urand18 fingerprint diverges across backends"; exit 1; }
[ "$(fp "$K18_MEM")" = "$(fp "$K18_SPILL")" ] || { echo "kron18 fingerprint diverges across backends"; exit 1; }
[ "$(fp "$U20_MEM")" = "$(fp "$U20_SPILL")" ] || { echo "urand20 fingerprint diverges across backends"; exit 1; }
[ "$(fp "$U22_MEM")" = "$(fp "$U22_SPILL")" ] || { echo "urand22 fingerprint diverges across backends"; exit 1; }

echo "==> cxlg lists the full experiment registry"
LISTED=$(cargo run --release -p cxlg-bench --bin cxlg -- list | grep -c '^[a-z]')
[ "$LISTED" -ge 17 ] || { echo "cxlg list shows only $LISTED experiments"; exit 1; }

echo "==> full campaign via cxlg run --all at 1-, 2- and 4-thread pools (small scale)"
# Three pool sizes, not two: with PR 6 the worker count also drives the
# within-run round shards, so an intermediate pool catches shard-merge
# bugs that only show between the 1-thread and saturated extremes.
rm -rf target/ci-results-t1 target/ci-results-t2 target/ci-results-t4
for T in 1 2 4; do
    CXLG_SCALE=10 RAYON_NUM_THREADS=$T CXLG_RESULTS_DIR=target/ci-results-t$T \
        cargo run --release -p cxlg-bench --bin cxlg -- run --all --json-manifest >/dev/null
done

echo "==> result JSON is byte-identical across thread counts (all experiments)"
# Every result file must match across all pool sizes except the
# "threads" header line (which records the pool by design). The
# manifest is telemetry (wall-clock), not a result, so it is excluded.
CHECKED=0
for f in target/ci-results-t1/*.json; do
    b="$(basename "$f")"
    [ "$b" = manifest.json ] && continue
    for T in 2 4; do
        cmp <(sed '/"threads"/d' "$f") <(sed '/"threads"/d' "target/ci-results-t$T/$b") \
            || { echo "$b differs between RAYON_NUM_THREADS=1 and $T"; exit 1; }
    done
    CHECKED=$((CHECKED + 1))
done
[ "$CHECKED" -ge 16 ] || { echo "only $CHECKED result files diffed; campaign incomplete"; exit 1; }
echo "    $CHECKED result files byte-identical across pools 1/2/4"

echo "==> cxlg validate — paper-fidelity gate over the captured campaign"
# Every series is checked against the paper's reported numbers
# (crates/bench/src/fidelity/reference.rs); any FLAG verdict fails CI.
# At this small scale the near-parity checks are scale-gated to SKIP
# (still reported with residuals); the golden-file test in
# crates/bench/tests/fidelity_golden.rs enforces zero FLAGs at scale 20
# on the checked-in campaign.
cargo run --release -p cxlg-bench --bin cxlg -- validate \
    --campaign-dir=target/ci-results-t1 --write-report=target/ci-results-t1/FIDELITY.md

echo "==> manifest proves each dataset was built exactly once"
grep -Eq '"builds": 1$|"builds": 1,' target/ci-results-t1/manifest.json \
    || { echo "manifest lacks per-spec build counts"; exit 1; }
if grep -E '"builds": ([2-9]|[0-9]{2,})' target/ci-results-t1/manifest.json; then
    echo "a dataset was built more than once per campaign"; exit 1
fi

echo "==> spill-storage campaign: byte-identical results, green validate, no litter"
# The whole campaign with every graph demand-paged from spill files.
# Result JSON must match the mem-mode campaigns byte for byte (threads
# header exempt, as above) — storage is an execution strategy, not a
# result input — and the evicted graphs must leave no spill files
# behind.
rm -rf target/ci-results-spill
CXLG_SCALE=10 RAYON_NUM_THREADS=2 CXLG_RESULTS_DIR=target/ci-results-spill \
    cargo run --release -p cxlg-bench --bin cxlg -- \
    run --all --graph-storage=spill --json-manifest >/dev/null
SPILLED=0
for f in target/ci-results-spill/*.json; do
    b="$(basename "$f")"
    [ "$b" = manifest.json ] && continue
    for T in 1 2; do
        cmp <(sed '/"threads"/d' "$f") <(sed '/"threads"/d' "target/ci-results-t$T/$b") \
            || { echo "$b differs between the spill and mem (t$T) campaigns"; exit 1; }
    done
    SPILLED=$((SPILLED + 1))
done
[ "$SPILLED" -ge 16 ] || { echo "only $SPILLED spill result files diffed; campaign incomplete"; exit 1; }
echo "    $SPILLED spill result files byte-identical to both mem campaigns"
grep -q '"graph_storage": "spill"' target/ci-results-spill/manifest.json \
    || { echo "spill manifest does not record its storage mode"; exit 1; }
[ -z "$(ls -A target/ci-results-spill/graph-spill 2>/dev/null)" ] \
    || { echo "the spill campaign leaked spill files"; exit 1; }

echo "==> cxlg validate stays green over the spill campaign, FIDELITY.md unchanged"
cargo run --release -p cxlg-bench --bin cxlg -- validate \
    --campaign-dir=target/ci-results-spill \
    --write-report=target/ci-results-spill/FIDELITY.md >/dev/null
cmp target/ci-results-spill/FIDELITY.md target/ci-results-t1/FIDELITY.md \
    || { echo "FIDELITY.md differs between spill and mem campaigns"; exit 1; }

echo "==> cached campaign: cxlg run --cached twice against one store"
# The campaign service path: pass 1 populates the content-addressed
# store, pass 2 must be served entirely from it — byte-identical result
# JSON, no graph builds, a green validate, and an unchanged FIDELITY.md.
rm -rf target/ci-cached-pass1 target/ci-cached-pass2 target/ci-cas
for P in 1 2; do
    CXLG_SCALE=10 RAYON_NUM_THREADS=2 CXLG_RESULTS_DIR=target/ci-cached-pass$P \
        cargo run --release -p cxlg-bench --bin cxlg -- \
        run --all --cached --cas-root=target/ci-cas --json-manifest >/dev/null
done

echo "==> second cached pass is all cache hits"
grep -q '"cache_misses": 0' target/ci-cached-pass2/manifest.json \
    || { echo "second cached pass executed jobs instead of serving them"; exit 1; }
if grep -q '"cache_hit": false' target/ci-cached-pass2/manifest.json; then
    echo "an experiment missed the cache on the second pass"; exit 1
fi
# A fully warm pass resolves job keys from the fingerprint memo and
# serves results from the store: it must not build a single graph.
if grep -Eq '"builds": [1-9]' target/ci-cached-pass2/manifest.json; then
    echo "the warm cached pass rebuilt a graph"; exit 1
fi

echo "==> cached result JSON is byte-identical across passes and to the plain campaign"
CACHED=0
for f in target/ci-cached-pass1/*.json; do
    b="$(basename "$f")"
    # The manifest and the service-stats snapshot are run telemetry
    # (wall-clock, hit/miss counters), not results.
    case "$b" in manifest.json|service-stats.json) continue ;; esac
    cmp "$f" "target/ci-cached-pass2/$b" \
        || { echo "$b differs between cached passes"; exit 1; }
    # Same scale, seed, and thread count as the plain t2 campaign above:
    # routing through the scheduler + store must not change a byte.
    cmp "$f" "target/ci-results-t2/$b" \
        || { echo "$b differs between cached and plain campaigns"; exit 1; }
    CACHED=$((CACHED + 1))
done
[ "$CACHED" -ge 16 ] || { echo "only $CACHED cached result files diffed; campaign incomplete"; exit 1; }
echo "    $CACHED cached result files byte-identical"

echo "==> cxlg validate stays green over the cached campaign, FIDELITY.md unchanged"
for P in 1 2; do
    cargo run --release -p cxlg-bench --bin cxlg -- validate \
        --campaign-dir=target/ci-cached-pass$P \
        --write-report=target/ci-cached-pass$P/FIDELITY.md >/dev/null
done
cmp target/ci-cached-pass1/FIDELITY.md target/ci-cached-pass2/FIDELITY.md \
    || { echo "FIDELITY.md differs between cached passes"; exit 1; }

echo "==> chaos gate: a cached campaign under a pinned fault plan self-heals"
# A deterministic fault schedule — a worker panic, an execute error, a
# torn publish, a checksum corruption, and a delayed completion — hits a
# fresh-store cached campaign. The scheduler must retry within the
# attempt budget and the heal loop must re-execute the poisoned
# publication, so the campaign converges to the same bytes as the
# fault-free cached run above.
CHAOS_PLAN='panic@2,error@5,torn@3,corrupt@4,delay@6:25'
rm -rf target/ci-chaos-run1 target/ci-chaos-run2 target/ci-cas-chaos1 target/ci-cas-chaos2
for R in 1 2; do
    CXLG_SCALE=10 RAYON_NUM_THREADS=2 CXLG_RESULTS_DIR=target/ci-chaos-run$R \
        cargo run --release -p cxlg-bench --bin cxlg -- \
        run --all --cached --cas-root=target/ci-cas-chaos$R \
        --fault-plan="$CHAOS_PLAN" --fault-seed=2023 --max-attempts=4 >/dev/null
done

echo "==> chaos results converge to the fault-free bytes"
HEALED=0
for f in target/ci-cached-pass1/*.json; do
    b="$(basename "$f")"
    case "$b" in manifest.json|service-stats.json) continue ;; esac
    cmp "$f" "target/ci-chaos-run1/$b" \
        || { echo "$b differs between the chaos and fault-free campaigns"; exit 1; }
    HEALED=$((HEALED + 1))
done
[ "$HEALED" -ge 16 ] || { echo "only $HEALED chaos result files diffed; campaign incomplete"; exit 1; }
echo "    $HEALED chaos result files byte-identical to the fault-free run"

echo "==> the chaos run actually retried, quarantined, and recovered"
grep -Eq '"retries": [1-9]' target/ci-chaos-run1/service-stats.json \
    || { echo "the chaos run recorded no retries"; exit 1; }
grep -Eq '"faults_injected": [1-9]' target/ci-chaos-run1/service-stats.json \
    || { echo "the chaos run fired no faults"; exit 1; }
grep -Eq '"failed": 0' target/ci-chaos-run1/service-stats.json \
    || { echo "a chaos job exhausted its retry budget"; exit 1; }

echo "==> the same (seed, plan) replays to an identical stats snapshot"
# Everything but the wall-clock / RSS telemetry exemptions must match
# byte for byte across two runs of the same chaos schedule.
cmp <(grep -v -e wall_ms -e rss_ target/ci-chaos-run1/service-stats.json) \
    <(grep -v -e wall_ms -e rss_ target/ci-chaos-run2/service-stats.json) \
    || { echo "chaos stats snapshots differ across replays"; exit 1; }

echo "==> cxlg validate stays green over the chaos campaign, FIDELITY.md unchanged"
cargo run --release -p cxlg-bench --bin cxlg -- validate \
    --campaign-dir=target/ci-chaos-run1 --write-report=target/ci-chaos-run1/FIDELITY.md >/dev/null
cmp target/ci-cached-pass1/FIDELITY.md target/ci-chaos-run1/FIDELITY.md \
    || { echo "FIDELITY.md differs between chaos and fault-free campaigns"; exit 1; }

echo "==> cxlg cas gc bounds the chaos store and survives a re-open"
# LRU-by-publication eviction down to 4 entries, then a recovery-only
# pass that must find nothing left to do.
cargo run --release -p cxlg-bench --bin cxlg -- cas gc \
    --cas-root=target/ci-cas-chaos2 --max-entries=4 | tail -1
REMAIN=$(cargo run --release -p cxlg-bench --bin cxlg -- cas gc \
    --cas-root=target/ci-cas-chaos2 2>/dev/null | tail -1)
echo "    $REMAIN"
case "$REMAIN" in
    *"entries 4 -> 4"*) ;;
    *) echo "cas gc did not hold the store at 4 entries"; exit 1 ;;
esac

echo "CI OK"
