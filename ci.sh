#!/usr/bin/env bash
# CI for cxl-gpu-graph: tier-1 verification plus docs and bench-target
# compilation. Everything runs offline (dependencies are vendored under
# vendor/; see README.md "Offline dependency policy").
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1, LTO baseline)"
cargo build --release

echo "==> cargo test -q (tier-1, all workspace members, 1-thread and 4-thread pools)"
# The vendored rayon promises bit-identical results at any pool size;
# run the whole suite at both extremes so thread-count nondeterminism
# (not just crashes) fails the gate.
RAYON_NUM_THREADS=1 cargo test -q
RAYON_NUM_THREADS=4 cargo test -q

echo "==> cargo doc --no-deps with rustdoc warnings denied"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> bench targets compile"
cargo build --benches

echo "==> quickstart example runs"
cargo run --release --example quickstart >/dev/null

echo "==> all figure/table binaries run (small scale)"
CXLG_SCALE=10 cargo run --release -p cxlg-bench --bin all_figures >/dev/null

echo "==> figure JSON is byte-identical across thread counts"
# One full figure binary (generators + CSR build + parallel sweep) at two
# pool sizes; any divergence in the dumped JSON is a determinism bug.
CXLG_SCALE=10 RAYON_NUM_THREADS=1 CXLG_RESULTS_DIR=target/ci-results-t1 \
    cargo run --release -p cxlg-bench --bin fig3 >/dev/null
CXLG_SCALE=10 RAYON_NUM_THREADS=4 CXLG_RESULTS_DIR=target/ci-results-t4 \
    cargo run --release -p cxlg-bench --bin fig3 >/dev/null
cmp target/ci-results-t1/fig3.json target/ci-results-t4/fig3.json \
    || { echo "fig3.json differs between RAYON_NUM_THREADS=1 and 4"; exit 1; }

echo "CI OK"
