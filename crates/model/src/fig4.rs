//! Figure 4: total data `D(d)`, throughput `T(d)` and runtime `t(d)` as
//! functions of the data transfer size `d` (= alignment, for BaM-style
//! cache-line access where `d = a`).
//!
//! The paper plots `D` from BFS/urand27 measurements smoothed over `d`,
//! `T` from the §3.2 example profile, and `t = D/T`. The shape conclusion
//! (§3.3.2): the best runtime sits at the *smallest* `d` that still
//! saturates the bandwidth, `s · d_opt = W`.

use crate::eqs::{throughput, ThroughputParams};
use serde::{Deserialize, Serialize};

/// Inputs for the Figure 4 curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Params {
    /// Throughput model parameters (the §3.2 example in the paper).
    pub throughput: ThroughputParams,
    /// Useful bytes `E` of the workload, in MB (BFS/urand at the chosen
    /// scale).
    pub useful_mb: f64,
    /// RAF measurements `(alignment_bytes, raf)` used to interpolate
    /// `D(d) = E · RAF(d)`; must be sorted by alignment.
    pub raf_points: Vec<(f64, f64)>,
}

/// One point of the Figure 4 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Transfer size `d` in bytes.
    pub d_bytes: f64,
    /// Total data `D` in MB.
    pub total_mb: f64,
    /// Throughput `T` in MB/s.
    pub throughput_mb_per_sec: f64,
    /// Runtime `t = D / T` in seconds.
    pub runtime_sec: f64,
}

/// Piecewise-linear interpolation of RAF over the measured alignments
/// (log-linear in `d`, matching how Figure 4 "smoothly interpolates the
/// data points").
pub fn interp_raf(points: &[(f64, f64)], d: f64) -> f64 {
    assert!(!points.is_empty(), "no RAF points");
    if d <= points[0].0 {
        return points[0].1;
    }
    if d >= points[points.len() - 1].0 {
        return points[points.len() - 1].1;
    }
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if d >= x0 && d <= x1 {
            let f = (d.ln() - x0.ln()) / (x1.ln() - x0.ln());
            return y0 + f * (y1 - y0);
        }
    }
    unreachable!("sorted points cover the range");
}

/// Generate the Figure 4 series for transfer sizes `d` from 32 B to
/// `max_d` in `steps` log-spaced points.
pub fn fig4_series(p: &Fig4Params, max_d: f64, steps: usize) -> Vec<Fig4Point> {
    assert!(steps >= 2);
    let min_d: f64 = 32.0;
    (0..steps)
        .map(|i| {
            let f = i as f64 / (steps - 1) as f64;
            let d = (min_d.ln() + f * (max_d.ln() - min_d.ln())).exp();
            let raf = interp_raf(&p.raf_points, d);
            let total_mb = p.useful_mb * raf;
            let t = throughput(&p.throughput, d);
            Fig4Point {
                d_bytes: d,
                total_mb,
                throughput_mb_per_sec: t,
                runtime_sec: total_mb / t,
            }
        })
        .collect()
}

/// The optimal transfer size `d_opt` satisfying `s · d_opt = W`
/// (§3.3.2) for the given parameters.
pub fn optimal_transfer_bytes(p: &ThroughputParams) -> f64 {
    let s = crate::eqs::slope(p); // IOPS
    p.bandwidth_mb_per_sec * 1e6 / s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Fig4Params {
        Fig4Params {
            throughput: ThroughputParams::section32_example(),
            useful_mb: 20_000.0, // ~ urand27's E in the paper's plot scale
            raf_points: vec![
                (32.0, 1.3),
                (128.0, 1.5),
                (512.0, 1.9),
                (1024.0, 2.2),
                (4096.0, 3.3),
            ],
        }
    }

    #[test]
    fn interp_is_exact_at_knots_and_monotone() {
        let p = params();
        for &(x, y) in &p.raf_points {
            assert!((interp_raf(&p.raf_points, x) - y).abs() < 1e-9);
        }
        let mut last = 0.0;
        for d in [32.0, 64.0, 100.0, 300.0, 512.0, 2000.0, 4096.0, 9999.0] {
            let r = interp_raf(&p.raf_points, d);
            assert!(r >= last);
            last = r;
        }
        // Clamped outside the measured range.
        assert_eq!(interp_raf(&p.raf_points, 1.0), 1.3);
        assert_eq!(interp_raf(&p.raf_points, 1e9), 3.3);
    }

    #[test]
    fn optimal_d_for_section32_example() {
        // s = 48 MIOPS, W = 24,000 MB/s => d_opt = 500 B.
        let d = optimal_transfer_bytes(&ThroughputParams::section32_example());
        assert!((d - 500.0).abs() < 1.0);
    }

    #[test]
    fn runtime_minimum_sits_at_smallest_saturating_d() {
        // Figure 4's headline: "the best (shortest) runtime is obtained
        // at the minimum transfer size that still fully utilizes the
        // bandwidth W".
        let p = params();
        let series = fig4_series(&p, 4096.0, 200);
        let best = series
            .iter()
            .min_by(|a, b| a.runtime_sec.total_cmp(&b.runtime_sec))
            .unwrap();
        let d_opt = optimal_transfer_bytes(&p.throughput);
        // The best point should sit within a step of d_opt.
        assert!(
            (best.d_bytes / d_opt).ln().abs() < 0.15,
            "best at {} B, expected near {} B",
            best.d_bytes,
            d_opt
        );
        // Runtime rises on both sides.
        let first = &series[0];
        let last = series.last().unwrap();
        assert!(first.runtime_sec > best.runtime_sec);
        assert!(last.runtime_sec > best.runtime_sec);
    }

    #[test]
    fn d_curve_grows_t_curve_saturates() {
        let p = params();
        let series = fig4_series(&p, 4096.0, 50);
        for w in series.windows(2) {
            assert!(w[1].total_mb >= w[0].total_mb, "D must grow with d");
            assert!(
                w[1].throughput_mb_per_sec >= w[0].throughput_mb_per_sec,
                "T must be non-decreasing"
            );
        }
        assert_eq!(
            series.last().unwrap().throughput_mb_per_sec,
            p.throughput.bandwidth_mb_per_sec
        );
    }
}
