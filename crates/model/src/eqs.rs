//! Equations 1–5 of the paper, in the paper's own units: bytes, MB/s
//! (decimal), microseconds, and IOPS.

use serde::{Deserialize, Serialize};

/// Inputs to the throughput model (Equation 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputParams {
    /// External-memory random-read rate `S` in IOPS.
    pub iops: f64,
    /// Average latency `L` in microseconds (link + CXL + device).
    pub latency_us: f64,
    /// Maximum outstanding requests `Nmax` on the PCIe link (or queue
    /// depth for storage).
    pub nmax: f64,
    /// PCIe effective bandwidth `W` in MB/s.
    pub bandwidth_mb_per_sec: f64,
}

impl ThroughputParams {
    /// The worked example of §3.2: `S = 100` MIOPS, `L = 16` µs,
    /// Gen4 x16 (`Nmax = 768`, `W = 24,000` MB/s), giving Equation 4:
    /// `T = min(100 d, 48 d, 24 000)`.
    pub fn section32_example() -> Self {
        ThroughputParams {
            iops: 100e6,
            latency_us: 16.0,
            nmax: 768.0,
            bandwidth_mb_per_sec: 24_000.0,
        }
    }
}

/// Equation 2: `T = min(S·d, Nmax·d/L, W)` in MB/s, for a transfer size
/// `d` in bytes.
pub fn throughput(p: &ThroughputParams, d_bytes: f64) -> f64 {
    let s_term = p.iops * d_bytes / 1e6; // bytes/s -> MB/s
    let little_term = p.nmax * d_bytes / p.latency_us; // B/us == MB/s
    s_term.min(little_term).min(p.bandwidth_mb_per_sec)
}

/// Equation 5: the slope `s = min(S, Nmax / L)` of the throughput profile
/// before the bandwidth cap, in IOPS.
pub fn slope(p: &ThroughputParams) -> f64 {
    p.iops.min(p.nmax / p.latency_us * 1e6)
}

/// Equation 1: `t = D / T`, with `D` in MB and `T` in MB/s; returns
/// seconds.
pub fn runtime(total_mb: f64, throughput_mb_per_sec: f64) -> f64 {
    total_mb / throughput_mb_per_sec
}

/// Equation 3 rearranged: the outstanding requests `N = T·L / d` needed
/// to sustain throughput `T` (MB/s) at latency `L` (µs) with transfers of
/// `d` bytes.
pub fn littles_law_outstanding(throughput_mb_per_sec: f64, latency_us: f64, d_bytes: f64) -> f64 {
    throughput_mb_per_sec * latency_us / d_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_4_reproduced() {
        // §3.2: "Then, Equations 2 becomes T = min{100 d, 48 d, 24,000}".
        let p = ThroughputParams::section32_example();
        // Slope terms at d = 1 B.
        assert!((throughput(&p, 1.0) - 48.0).abs() < 1e-9);
        // The S term would be 100 d, the Little term 48 d: Little wins.
        assert!((slope(&p) - 48e6).abs() < 1.0);
        // Bandwidth cap at large d: 24,000 MB/s.
        assert!((throughput(&p, 4096.0) - 24_000.0).abs() < 1e-9);
        // Crossover: 48 d = 24,000 at d = 500 B.
        assert!((throughput(&p, 500.0) - 24_000.0).abs() < 1e-6);
        assert!(throughput(&p, 499.0) < 24_000.0);
    }

    #[test]
    fn emogi_sanity_check_from_section_331() {
        // §3.3.1: s · d_EMOGI = (768 / 1.2) × 89.6 = 57,344 MB/s > W.
        let p = ThroughputParams {
            iops: f64::INFINITY,
            latency_us: 1.2,
            nmax: 768.0,
            bandwidth_mb_per_sec: 24_000.0,
        };
        let s = p.nmax / p.latency_us; // per-us slope
        let t_unclamped = s * 89.6;
        assert!((t_unclamped - 57_344.0).abs() < 1.0);
        // Therefore the achieved throughput is the full W.
        assert!((throughput(&p, 89.6) - 24_000.0).abs() < 1e-9);
    }

    #[test]
    fn bam_optimal_transfer_from_section_332() {
        // §3.3.2: d_BaM = W / S = 24,000 / 6 MIOPS ≈ 4 kB.
        let w: f64 = 24_000.0;
        let s_miops: f64 = 6.0;
        let d_opt = w / s_miops * 1e6 / 1e6; // MB/s over MIOPS -> bytes
        assert!((d_opt - 4000.0).abs() < 1.0);
        // With 4 kB transfers BaM saturates the link.
        let p = ThroughputParams {
            iops: 6e6,
            latency_us: 25.0,
            nmax: 4096.0, // queue depth, not PCIe Nmax (§3.2)
            bandwidth_mb_per_sec: w,
        };
        assert!((throughput(&p, 4096.0) - 24_000.0).abs() < 1e-9);
        // With 512 B transfers it cannot: S term binds at 3,072 MB/s.
        assert!((throughput(&p, 512.0) - 3_072.0).abs() < 1e-9);
    }

    #[test]
    fn littles_law_matches_paper_gen3_number() {
        // §4.2.2: L = Nmax · d / W = 256 × 89.6 / 12,000 = 1.91 us.
        let l: f64 = 256.0 * 89.6 / 12_000.0;
        assert!((l - 1.911).abs() < 0.01);
        // Inverse check via the helper.
        let n = littles_law_outstanding(12_000.0, l, 89.6);
        assert!((n - 256.0).abs() < 1e-6);
    }

    #[test]
    fn runtime_is_d_over_t() {
        assert!((runtime(48_000.0, 24_000.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_monotone_in_d_until_cap() {
        let p = ThroughputParams::section32_example();
        let mut last = 0.0;
        for d in (32..4096).step_by(32) {
            let t = throughput(&p, d as f64);
            assert!(t >= last);
            last = t;
        }
        assert_eq!(last, 24_000.0);
    }
}
