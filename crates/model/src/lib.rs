//! # cxlg-model — the paper's closed-form analytical model (§3)
//!
//! * Equation 1: `t = D / T` ([`runtime`]);
//! * Equation 2: `T = min(S·d, Nmax·d/L, W)` ([`throughput`]);
//! * Equation 3: Little's Law `N·d = T·L` ([`littles_law_outstanding`]);
//! * Equation 5: slope `s = min(S, Nmax/L)` ([`slope`]);
//! * Equation 6: the external-memory requirements for matching host-DRAM
//!   EMOGI performance ([`requirements`](mod@requirements));
//! * Figure 4: the `D(d)`, `T(d)`, `t(d)` curves ([`fig4`]).
//!
//! Everything here is validated against the discrete-event simulation in
//! the integration tests (`tests/model_vs_sim.rs`): the same limits that
//! are *formulas* here *emerge* there.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eqs;
pub mod fig4;
pub mod requirements;

pub use eqs::{littles_law_outstanding, runtime, slope, throughput, ThroughputParams};
pub use fig4::{fig4_series, Fig4Params, Fig4Point};
pub use requirements::{requirements, Requirements};
