//! Equation 6: what an external memory must provide to match host-DRAM
//! EMOGI performance.
//!
//! §3.4: saturating the link requires `min(S, Nmax/L) · d ≥ W`, i.e.
//! `S ≥ W / d` **and** `L ≤ Nmax · d / W`. With Gen4 x16 and EMOGI's
//! `d = 89.6 B` this gives `S ≥ 268 MIOPS` and `L ≤ 2.87 µs` — the
//! paper's "a few microseconds may be tolerated" headline. §4.2.2 redoes
//! the numbers for Gen3 (`S ≥ 134 MIOPS`, `L ≤ 1.91 µs`), and §4.1.1 for
//! XLFDD's sublist-sized transfers (`d = 256 B ⇒ S ≥ 93.75 MIOPS`).

use cxlg_link::pcie::{PcieGen, PcieLinkConfig};
use serde::{Deserialize, Serialize};

/// External-memory requirements for link saturation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Minimum random-read rate `S` in MIOPS.
    pub min_miops: f64,
    /// Maximum tolerable latency `L` in microseconds.
    pub max_latency_us: f64,
    /// The transfer size `d` assumed, bytes.
    pub d_bytes: f64,
    /// The link bandwidth `W` assumed, MB/s.
    pub bandwidth_mb_per_sec: f64,
    /// The outstanding-request limit `Nmax` assumed.
    pub nmax: u64,
}

/// Solve Equation 6 for a link and transfer size.
pub fn requirements(link: &PcieLinkConfig, d_bytes: f64) -> Requirements {
    let w = link.bandwidth().mb_per_sec();
    let nmax = link.nmax();
    Requirements {
        min_miops: w / d_bytes, // (MB/s) / B = M ops/s
        max_latency_us: nmax as f64 * d_bytes / (w),
        d_bytes,
        bandwidth_mb_per_sec: w,
        nmax,
    }
}

/// The EMOGI average transfer size assumed throughout §3 (89.6 B).
pub const D_EMOGI_BYTES: f64 = 89.6;

/// Requirements for EMOGI on a given PCIe generation (x16).
pub fn emogi_requirements(gen: PcieGen) -> Requirements {
    requirements(&PcieLinkConfig::x16(gen), D_EMOGI_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gen4_numbers() {
        // §3.4: "This becomes S ≥ 268 MIOPS and L ≤ 2.87 usec."
        let r = emogi_requirements(PcieGen::Gen4);
        assert!((r.min_miops - 267.86).abs() < 0.5, "{}", r.min_miops);
        assert!((r.max_latency_us - 2.867).abs() < 0.01, "{}", r.max_latency_us);
        assert_eq!(r.nmax, 768);
    }

    #[test]
    fn paper_gen3_numbers() {
        // §4.2.2: "S = 12,000/89.6 = 134 MIOPS and
        // L = 256 × 89.6 / 12,000 = 1.91 usec".
        let r = emogi_requirements(PcieGen::Gen3);
        assert!((r.min_miops - 133.93).abs() < 0.5, "{}", r.min_miops);
        assert!((r.max_latency_us - 1.911).abs() < 0.01, "{}", r.max_latency_us);
    }

    #[test]
    fn xlfdd_sublist_transfers_relax_the_iops_requirement() {
        // §4.1.1: with d = 256 B (urand sublists), S ≥ 93.75 MIOPS.
        let r = requirements(&PcieLinkConfig::x16(PcieGen::Gen4), 256.0);
        assert!((r.min_miops - 93.75).abs() < 0.01, "{}", r.min_miops);
        // And 16 XLFDD drives provide 16 × 11 = 176 MIOPS > 93.75.
        assert!(16.0 * 11.0 > r.min_miops);
    }

    #[test]
    fn larger_transfers_relax_both_requirements() {
        let small = requirements(&PcieLinkConfig::x16(PcieGen::Gen4), 64.0);
        let large = requirements(&PcieLinkConfig::x16(PcieGen::Gen4), 512.0);
        assert!(large.min_miops < small.min_miops);
        assert!(large.max_latency_us > small.max_latency_us);
    }

    #[test]
    fn gen5_doubles_gen4_demands() {
        // The Discussion: PCIe generations double bandwidth, so the IOPS
        // requirement doubles and the latency allowance halves (same
        // Nmax).
        let g4 = emogi_requirements(PcieGen::Gen4);
        let g5 = emogi_requirements(PcieGen::Gen5);
        assert!((g5.min_miops / g4.min_miops - 2.0).abs() < 1e-9);
        assert!((g4.max_latency_us / g5.max_latency_us - 2.0).abs() < 1e-9);
    }
}
