//! Dual-socket system topology (Figure 8 of the paper).
//!
//! The evaluation machine has two CPUs; the GPU hangs off CPU 1. DRAM 0
//! and CXL devices 0–2 are attached to CPU 0, DRAM 1 and CXL devices 3–4
//! to CPU 1. Accesses from the GPU to a device on the *other* socket cross
//! the inter-CPU link and observe a marginally longer latency — the
//! solid-filled vs. hollow bars of Figure 9.

use cxlg_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A CPU socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Socket {
    /// CPU 0 (far from the GPU).
    Cpu0,
    /// CPU 1 (the GPU's socket).
    Cpu1,
}

/// Where a memory device lives in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DevicePlacement {
    /// Attachment socket.
    pub socket: Socket,
}

impl DevicePlacement {
    /// Attached to the GPU's socket (CPU 1), like DRAM 1 / CXL 3.
    pub fn near() -> Self {
        DevicePlacement {
            socket: Socket::Cpu1,
        }
    }

    /// Attached to the far socket (CPU 0), like DRAM 0 / CXL 0.
    pub fn far() -> Self {
        DevicePlacement {
            socket: Socket::Cpu0,
        }
    }
}

/// System topology: which socket the GPU is on and the inter-CPU hop cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// The GPU's socket (CPU 1 in Fig. 8).
    pub gpu_socket: Socket,
    /// One-way inter-CPU (UPI) hop latency in picoseconds. Fig. 9 shows
    /// DRAM 0 / CXL 0 only "marginally" slower than DRAM 1 / CXL 3; we
    /// default to 50 ns each way (0.1 µs round trip).
    pub upi_hop_ps: u64,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            gpu_socket: Socket::Cpu1,
            upi_hop_ps: 50_000,
        }
    }
}

impl Topology {
    /// Extra one-way latency for the GPU to reach a device at `placement`.
    pub fn socket_penalty(&self, placement: DevicePlacement) -> SimDuration {
        if placement.socket == self.gpu_socket {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.upi_hop_ps)
        }
    }

    /// Round-trip form of [`Topology::socket_penalty`].
    pub fn socket_penalty_round_trip(&self, placement: DevicePlacement) -> SimDuration {
        let one_way = self.socket_penalty(placement);
        one_way + one_way
    }

    /// The Figure 8 device placements: `(name, placement)` for the five
    /// CXL devices and two DRAM nodes.
    pub fn paper_fig8_devices() -> Vec<(&'static str, DevicePlacement)> {
        vec![
            ("DRAM0", DevicePlacement::far()),
            ("DRAM1", DevicePlacement::near()),
            ("CXL0", DevicePlacement::far()),
            ("CXL1", DevicePlacement::far()),
            ("CXL2", DevicePlacement::far()),
            ("CXL3", DevicePlacement::near()),
            ("CXL4", DevicePlacement::near()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_devices_have_no_penalty() {
        let t = Topology::default();
        assert_eq!(t.socket_penalty(DevicePlacement::near()), SimDuration::ZERO);
        assert_eq!(
            t.socket_penalty_round_trip(DevicePlacement::near()),
            SimDuration::ZERO
        );
    }

    #[test]
    fn far_devices_pay_the_upi_hop() {
        let t = Topology::default();
        assert_eq!(
            t.socket_penalty(DevicePlacement::far()).as_ns_f64(),
            50.0
        );
        assert_eq!(
            t.socket_penalty_round_trip(DevicePlacement::far()).as_ns_f64(),
            100.0
        );
    }

    #[test]
    fn fig8_placement_matches_paper() {
        let devs = Topology::paper_fig8_devices();
        let find = |n: &str| devs.iter().find(|(name, _)| *name == n).unwrap().1;
        // GPU is on CPU 1; DRAM1 and CXL3 are near it (solid bars in Fig 9).
        assert_eq!(find("DRAM1").socket, Socket::Cpu1);
        assert_eq!(find("CXL3").socket, Socket::Cpu1);
        assert_eq!(find("DRAM0").socket, Socket::Cpu0);
        assert_eq!(find("CXL0").socket, Socket::Cpu0);
        // Five CXL devices total (§4.2.2).
        assert_eq!(
            devs.iter().filter(|(n, _)| n.starts_with("CXL")).count(),
            5
        );
    }

    #[test]
    fn custom_gpu_socket_flips_penalties() {
        let t = Topology {
            gpu_socket: Socket::Cpu0,
            upi_hop_ps: 70_000,
        };
        assert_eq!(t.socket_penalty(DevicePlacement::far()), SimDuration::ZERO);
        assert_eq!(t.socket_penalty(DevicePlacement::near()).as_ns_f64(), 70.0);
    }
}
