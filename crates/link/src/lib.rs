//! # cxlg-link — interconnect models
//!
//! The paper's central claim is that the **PCIe link to the GPU is the
//! bottleneck** of external-memory graph processing (§3): its effective
//! bandwidth `W` caps throughput, and its outstanding-read limit `Nmax`
//! (256 for Gen3, 768 for Gen4/5) combines with memory latency `L` through
//! Little's Law into the second cap `Nmax · d / L` of Equation 2.
//!
//! This crate owns those link-level constants and mechanisms:
//!
//! * [`pcie`] — PCIe generations, lane scaling, effective bandwidth, tag
//!   limits, and the request/completion overhead model;
//! * [`cxl`] — CXL.mem framing: 64 B flit granularity (a 96 B or 128 B GPU
//!   read splits into two device-level accesses, §4.2.2) and protocol tag
//!   budget (16 tag bits, §3.5.3);
//! * [`topology`] — the dual-socket system of Figure 8, where devices
//!   attached to the far socket incur an extra inter-CPU hop (visible in
//!   the latency measurements of Figure 9).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cxl;
pub mod pcie;
pub mod topology;

pub use cxl::{flits_for, CxlPortConfig, CXL_FLIT_BYTES, CXL_PROTOCOL_TAGS};
pub use pcie::{PcieGen, PcieLinkConfig};
pub use topology::{DevicePlacement, Socket, Topology};
