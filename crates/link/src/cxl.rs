//! CXL.mem protocol framing.
//!
//! §3.5.3 of the paper: the CXL specification provides 16 tag bits (65,536
//! outstanding requests) so the protocol itself is not the concurrency
//! limit — individual devices are (the Agilex-7 prototype handles 128).
//! The CXL data transfer size is **64 B**, so larger GPU reads are split:
//! *"a 128 B or 96 B read from the GPU through PCIe is split into two 64 B
//! reads at the CXL level, \[so\] the number of requests for the CXL memory
//! can double"* (§4.2.2).

use cxlg_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// CXL.mem access granularity in bytes.
pub const CXL_FLIT_BYTES: u64 = 64;

/// Outstanding requests permitted by the CXL protocol's 16 tag bits.
pub const CXL_PROTOCOL_TAGS: u64 = 65_536;

/// Number of device-level 64 B accesses needed for a read of `bytes`.
/// Zero-byte reads cost nothing; any partial flit rounds up.
#[inline]
pub fn flits_for(bytes: u64) -> u64 {
    bytes.div_ceil(CXL_FLIT_BYTES)
}

/// Per-port CXL interface configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CxlPortConfig {
    /// One-way protocol/port processing latency in picoseconds. Fig. 9
    /// shows CXL(+0) ≈ host DRAM + 0.5 µs; we attribute that 0.5 µs to the
    /// CXL port (0.25 µs each way).
    pub port_latency_ps: u64,
    /// Number of CXL.mem instances exposed by the device (the prototype in
    /// Fig. 7 has two, bridged onto a single DRAM channel).
    pub mem_instances: u32,
}

impl Default for CxlPortConfig {
    fn default() -> Self {
        CxlPortConfig {
            port_latency_ps: 250_000,
            mem_instances: 2,
        }
    }
}

impl CxlPortConfig {
    /// One-way port latency.
    pub fn port_latency(&self) -> SimDuration {
        SimDuration::from_ps(self.port_latency_ps)
    }

    /// Round-trip port latency contribution.
    pub fn round_trip(&self) -> SimDuration {
        SimDuration::from_ps(self.port_latency_ps * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_splitting_matches_paper() {
        // §4.2.2: 96 B and 128 B GPU reads become two 64 B CXL reads.
        assert_eq!(flits_for(96), 2);
        assert_eq!(flits_for(128), 2);
        // 32 B and 64 B reads are a single access.
        assert_eq!(flits_for(32), 1);
        assert_eq!(flits_for(64), 1);
        assert_eq!(flits_for(65), 2);
        assert_eq!(flits_for(0), 0);
    }

    #[test]
    fn protocol_tags_are_not_the_limit() {
        // §3.5.3: 16 tag bits = 65,536 outstanding requests, far above
        // any Nmax in the PCIe path.
        assert_eq!(CXL_PROTOCOL_TAGS, 1 << 16);
        assert!(CXL_PROTOCOL_TAGS > 768);
    }

    #[test]
    fn default_port_adds_half_microsecond_round_trip() {
        let port = CxlPortConfig::default();
        assert!((port.round_trip().as_us_f64() - 0.5).abs() < 1e-9);
        assert_eq!(port.mem_instances, 2);
    }

    #[test]
    fn large_transfers_split_linearly() {
        assert_eq!(flits_for(4096), 64);
        assert_eq!(flits_for(2048), 32);
        assert_eq!(flits_for(2049), 33);
    }
}
