//! PCIe link parameters: generations, effective bandwidth, and the
//! outstanding-read tag limit `Nmax`.
//!
//! §3.2 of the paper: *"consider a PCIe Gen 4.0 x16 link supported by
//! modern GPUs. Then Nmax = 768 due to the PCIe specification, and
//! W = 24,000 MB/sec, for which we use an effective bandwidth rather than
//! the theoretical value of 31,500 MB/sec."* §3.5: Nmax is 256 for
//! Gen 3.0 and 768 for Gen 4.0 and 5.0.

use cxlg_sim::{Bandwidth, SimDuration};
use serde::{Deserialize, Serialize};

/// PCIe generation of the GPU link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGen {
    /// PCIe 3.0 — 256 outstanding reads, ~12 GB/s effective at x16.
    Gen3,
    /// PCIe 4.0 — 768 outstanding reads, ~24 GB/s effective at x16.
    Gen4,
    /// PCIe 5.0 — 768 outstanding reads, ~48 GB/s effective at x16.
    Gen5,
}

impl PcieGen {
    /// Maximum outstanding non-posted read requests (`Nmax`, §3.2/§3.5).
    pub fn nmax_outstanding(self) -> u64 {
        match self {
            PcieGen::Gen3 => 256,
            PcieGen::Gen4 | PcieGen::Gen5 => 768,
        }
    }

    /// Effective data bandwidth of a x16 link in MB/s (the paper's `W`:
    /// 12,000 for Gen3 per §4.2.2, 24,000 for Gen4 per §3.2; Gen5 doubles
    /// Gen4 per the Discussion section).
    pub fn effective_mb_per_sec_x16(self) -> u64 {
        match self {
            PcieGen::Gen3 => 12_000,
            PcieGen::Gen4 => 24_000,
            PcieGen::Gen5 => 48_000,
        }
    }

    /// Theoretical x16 bandwidth in MB/s, for reference.
    pub fn theoretical_mb_per_sec_x16(self) -> u64 {
        match self {
            PcieGen::Gen3 => 15_750,
            PcieGen::Gen4 => 31_500,
            PcieGen::Gen5 => 63_000,
        }
    }
}

/// A configured PCIe link (generation + lane count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PcieLinkConfig {
    /// Link generation.
    pub gen: PcieGen,
    /// Lane count (1, 2, 4, 8, or 16).
    pub lanes: u32,
    /// One-way propagation + root-complex processing delay in picoseconds.
    /// The GPU-observed host-DRAM latency of ~1.1–1.2 µs (Fig. 9) is
    /// calibrated as `2 * propagation + DRAM device latency`.
    pub propagation_ps: u64,
}

impl PcieLinkConfig {
    /// Default one-way propagation (0.4 µs, so ~0.8 µs of the Fig. 9
    /// round trip is attributed to the link and root complex).
    pub const DEFAULT_PROPAGATION_PS: u64 = 400_000;

    /// A x16 GPU link of the given generation with default propagation.
    pub fn x16(gen: PcieGen) -> Self {
        PcieLinkConfig {
            gen,
            lanes: 16,
            propagation_ps: Self::DEFAULT_PROPAGATION_PS,
        }
    }

    /// A x4 link (per-drive links for XLFDD / NVMe SSDs).
    pub fn x4(gen: PcieGen) -> Self {
        PcieLinkConfig {
            gen,
            lanes: 4,
            propagation_ps: Self::DEFAULT_PROPAGATION_PS,
        }
    }

    /// Override the one-way propagation delay.
    pub fn with_propagation(mut self, d: SimDuration) -> Self {
        self.propagation_ps = d.as_ps();
        self
    }

    /// Effective bandwidth `W` scaled by lane count.
    pub fn bandwidth(&self) -> Bandwidth {
        let mb = self.gen.effective_mb_per_sec_x16() as u128 * self.lanes as u128 / 16;
        Bandwidth::from_mb_per_sec(mb as u64)
    }

    /// Outstanding-read limit `Nmax` (a property of the protocol/credits,
    /// not of lane count).
    pub fn nmax(&self) -> u64 {
        self.gen.nmax_outstanding()
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        SimDuration::from_ps(self.propagation_ps)
    }

    /// Wire cost of a read *request* TLP. Read requests carry no payload;
    /// we charge the 24-byte TLP header against the (otherwise idle)
    /// request-direction bandwidth.
    pub const REQUEST_TLP_BYTES: u64 = 24;

    /// Per-completion header overhead added to response payloads.
    ///
    /// Zero by design: the paper's `W` is an **effective** bandwidth
    /// ("24,000 MB/sec ... rather than the theoretical value of 31,500",
    /// §3.2), i.e. TLP/DLLP framing overhead is already discounted.
    /// Charging headers again on top of the effective rate would
    /// double-count ~17% of goodput at 96 B payloads and push saturated
    /// runs below `W`.
    pub const COMPLETION_HEADER_BYTES: u64 = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        // §3.2 and §4.2.2 of the paper.
        assert_eq!(PcieGen::Gen4.nmax_outstanding(), 768);
        assert_eq!(PcieGen::Gen3.nmax_outstanding(), 256);
        assert_eq!(PcieGen::Gen5.nmax_outstanding(), 768);
        assert_eq!(PcieGen::Gen4.effective_mb_per_sec_x16(), 24_000);
        assert_eq!(PcieGen::Gen3.effective_mb_per_sec_x16(), 12_000);
        assert_eq!(PcieGen::Gen4.theoretical_mb_per_sec_x16(), 31_500);
    }

    #[test]
    fn lane_scaling() {
        let x16 = PcieLinkConfig::x16(PcieGen::Gen4);
        let x4 = PcieLinkConfig::x4(PcieGen::Gen4);
        assert_eq!(x16.bandwidth().mb_per_sec(), 24_000.0);
        assert_eq!(x4.bandwidth().mb_per_sec(), 6_000.0);
        assert_eq!(x16.nmax(), x4.nmax(), "Nmax is not lane-scaled");
    }

    #[test]
    fn gen3_halves_gen4() {
        // §4.2.2: "With PCIe Gen 3.0 x16 link ... the effective bandwidth
        // is halved as W = 12,000 MB/sec".
        let g3 = PcieLinkConfig::x16(PcieGen::Gen3).bandwidth().mb_per_sec();
        let g4 = PcieLinkConfig::x16(PcieGen::Gen4).bandwidth().mb_per_sec();
        assert_eq!(g3 * 2.0, g4);
    }

    #[test]
    fn propagation_override() {
        let l = PcieLinkConfig::x16(PcieGen::Gen4)
            .with_propagation(SimDuration::from_us(0.3));
        assert_eq!(l.propagation().as_us_f64(), 0.3);
        let d = PcieLinkConfig::x16(PcieGen::Gen4);
        assert_eq!(d.propagation().as_us_f64(), 0.4);
    }

    #[test]
    fn serialization_times_are_sane() {
        // 128 B at Gen4 x16: ~5.3 ns; the request TLP is about 1 ns.
        let l = PcieLinkConfig::x16(PcieGen::Gen4);
        let resp = l.bandwidth().transfer_time(128);
        assert!((resp.as_ns_f64() - 5.33).abs() < 0.1);
        let req = l.bandwidth().transfer_time(PcieLinkConfig::REQUEST_TLP_BYTES);
        assert!(req.as_ns_f64() < 1.5);
    }
}
