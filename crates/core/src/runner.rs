//! Rayon-parallel parameter sweeps.
//!
//! Every simulation point is deterministic and single-threaded, so the
//! figure harnesses fan sweep points out across cores with rayon and the
//! results are identical to a sequential run — the guideline-recommended
//! "convert the outer loop to `par_iter`" shape for embarrassingly
//! parallel work.

use crate::metrics::RunReport;
use crate::system::SystemConfig;
use crate::traversal::Traversal;
use cxlg_graph::CsrView;
use rayon::prelude::*;

/// Run one traversal over many system configurations in parallel,
/// preserving input order. Accepts any graph storage backend.
pub fn sweep_systems<G: CsrView + ?Sized>(
    graph: &G,
    traversal: Traversal,
    systems: &[SystemConfig],
) -> Vec<RunReport> {
    systems
        .par_iter()
        .map(|sys| traversal.run(graph, sys))
        .collect()
}

/// Run many `(label, graph, traversal, system)` points in parallel.
/// The generic point type keeps harness code declarative.
pub fn sweep<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync + Send,
{
    points.into_par_iter().map(f).collect()
}

/// [`sweep`] on a pool of exactly `threads` workers, regardless of the
/// ambient pool size. Campaign drivers route every sweep through this
/// with the context's configured worker count, so one knob governs both
/// the cross-point fan-out here and the within-run round shards in
/// [`crate::engine::simulate_shards`]. Results are identical at any
/// thread count; only wall-clock changes.
pub fn sweep_with_threads<P, R, F>(threads: usize, points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync + Send,
{
    rayon::with_num_threads(threads.max(1), || sweep(points, f))
}

/// Run `f`, returning its result together with the elapsed wall-clock
/// time. The campaign driver wraps each experiment in this to report
/// per-experiment wall-clock in the run manifest; wall-clock is *host*
/// time (nondeterministic), so it must never feed back into simulated
/// results — only into operator-facing telemetry.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// A labelled runtime measurement, the common shape of the paper's
/// normalized-runtime figures.
#[derive(Debug, Clone)]
pub struct LabelledRun {
    /// Point label (e.g. "+1.0us", "64 B").
    pub label: String,
    /// The run's report.
    pub report: RunReport,
}

/// Normalize a set of runtimes by a baseline runtime (the paper
/// normalizes XLFDD/BaM by EMOGI, and CXL by host DRAM).
///
/// # Panics
///
/// Panics if the baseline runtime is zero: a zero baseline would turn
/// every normalized point into `inf`/`NaN`, which serializes into figure
/// JSON without complaint and poisons the BENCH_* trajectories silently.
/// A zero simulated runtime always indicates a mis-configured run (empty
/// trace, degenerate graph), so fail loudly at the source.
pub fn normalized_runtimes(baseline: &RunReport, runs: &[LabelledRun]) -> Vec<(String, f64)> {
    let base = baseline.metrics.runtime.as_secs_f64();
    assert!(
        base > 0.0,
        "normalized_runtimes: baseline runtime must be positive, got {base} s \
         (baseline workload {:?} on {:?}); every normalized point would be inf/NaN",
        baseline.workload,
        baseline.backend,
    );
    runs.iter()
        .map(|r| {
            (
                r.label.clone(),
                r.report.metrics.runtime.as_secs_f64() / base,
            )
        })
        .collect()
}

// The geometric-mean summaries moved to `metrics` (they are statistics,
// not sweep machinery); re-exported here so existing
// `runner::geometric_mean` imports keep compiling.
pub use crate::metrics::{geometric_mean, try_geometric_mean};

/// Interpolate a `(x, y)` series at `x`, clamping outside the sampled
/// range — the alignment step when a measured series and a paper series
/// sample different x grids. `log_x` interpolates linearly in `ln x`
/// (right for log-spaced axes like alignment sweeps); otherwise linear
/// in `x`. Points must be sorted by ascending `x`.
///
/// Returns `None` for an empty series or a non-finite/non-positive-in-
/// log-mode query; a single-point series clamps to that point's `y`.
pub fn interp_series(points: &[(f64, f64)], x: f64, log_x: bool) -> Option<f64> {
    if points.is_empty() || !x.is_finite() || (log_x && x <= 0.0) {
        return None;
    }
    if x <= points[0].0 {
        return Some(points[0].1);
    }
    if x >= points[points.len() - 1].0 {
        return Some(points[points.len() - 1].1);
    }
    for w in points.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if x >= x0 && x <= x1 {
            let f = if log_x {
                (x.ln() - x0.ln()) / (x1.ln() - x0.ln())
            } else {
                (x - x0) / (x1 - x0)
            };
            return Some(y0 + f * (y1 - y0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_graph::spec::GraphSpec;
    use cxlg_link::pcie::PcieGen;
    use cxlg_sim::SimDuration;

    #[test]
    fn parallel_sweep_matches_sequential() {
        let g = GraphSpec::urand(8).seed(1).build();
        let systems = vec![
            SystemConfig::emogi_on_dram(PcieGen::Gen4),
            SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5),
        ];
        let seq: Vec<_> = systems
            .iter()
            .map(|s| Traversal::bfs(0).run(&g, s))
            .collect();
        // The sequential reference must be reproduced bit-for-bit at
        // every pool size, not just the default one.
        for threads in [1, 2, 8] {
            let par =
                rayon::with_num_threads(threads, || sweep_systems(&g, Traversal::bfs(0), &systems));
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.metrics.runtime, b.metrics.runtime, "threads={threads}");
                assert_eq!(a.metrics.fetched_bytes, b.metrics.fetched_bytes);
            }
        }
    }

    #[test]
    fn sweep_reports_are_byte_identical_across_thread_counts() {
        // The figure JSON is serialized straight from RunReports, so
        // compare the full serialized form — not just a few fields.
        let g = GraphSpec::kron(9).seed(3).build();
        let systems: Vec<SystemConfig> = (0..5)
            .map(|i| {
                SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(i as f64 * 0.5)
            })
            .collect();
        let run = |threads: usize| {
            rayon::with_num_threads(threads, || {
                let reports = sweep_systems(&g, Traversal::bfs(0), &systems);
                serde_json::to_string(&reports).expect("serialize reports")
            })
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(
                run(threads),
                reference,
                "sweep JSON differs between 1 and {threads} threads"
            );
        }
    }

    #[test]
    fn timed_returns_result_and_nonzero_elapsed() {
        let ((), d) = timed(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(d >= std::time::Duration::from_millis(2));
        let (v, _) = timed(|| 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn sweep_preserves_order() {
        let out = sweep(vec![3u64, 1, 4, 1, 5], |x| x * 10);
        assert_eq!(out, vec![30, 10, 40, 10, 50]);
    }

    #[test]
    fn geometric_mean_reexport_resolves() {
        // The functions moved to `metrics`; the `runner` path must keep
        // working for the figure binaries that import it from here.
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(try_geometric_mean(&[]), None);
    }

    #[test]
    fn interp_series_handles_degenerate_series() {
        assert_eq!(interp_series(&[], 1.0, false), None);
        assert_eq!(interp_series(&[(8.0, 1.5)], 4096.0, true), Some(1.5));
        assert_eq!(interp_series(&[(8.0, 1.5)], 2.0, false), Some(1.5));
        assert_eq!(interp_series(&[(1.0, 2.0), (2.0, 3.0)], f64::NAN, false), None);
        assert_eq!(interp_series(&[(1.0, 2.0), (2.0, 3.0)], -1.0, true), None);
    }

    #[test]
    fn interp_series_clamps_and_interpolates_on_both_axes() {
        let pts = [(8.0, 1.0), (64.0, 2.0), (512.0, 4.0)];
        // Clamped outside the sampled range.
        assert_eq!(interp_series(&pts, 1.0, true), Some(1.0));
        assert_eq!(interp_series(&pts, 4096.0, true), Some(4.0));
        // Exact at knots.
        assert_eq!(interp_series(&pts, 64.0, true), Some(2.0));
        // Log-x: halfway between 8 and 64 in ln-space is sqrt(8*64) ≈ 22.6.
        let mid = interp_series(&pts, (8.0f64 * 64.0).sqrt(), true).unwrap();
        assert!((mid - 1.5).abs() < 1e-12, "{mid}");
        // Linear-x: halfway between 64 and 512 is 288.
        let mid = interp_series(&pts, 288.0, false).unwrap();
        assert!((mid - 3.0).abs() < 1e-12, "{mid}");
    }

    #[test]
    #[should_panic(expected = "baseline runtime must be positive")]
    fn normalization_rejects_zero_baseline() {
        let g = GraphSpec::urand(8).seed(1).build();
        let mut base = Traversal::bfs(0).run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
        base.metrics.runtime = SimDuration::ZERO;
        let runs = vec![LabelledRun {
            label: "any".into(),
            report: base.clone(),
        }];
        normalized_runtimes(&base, &runs);
    }

    #[test]
    fn normalization_against_baseline() {
        let g = GraphSpec::urand(8).seed(1).build();
        let base = Traversal::bfs(0).run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
        let mut slow = base.clone();
        slow.metrics.runtime = SimDuration::from_ps(base.metrics.runtime.as_ps() * 2);
        let runs = vec![LabelledRun {
            label: "slow".into(),
            report: slow,
        }];
        let norm = normalized_runtimes(&base, &runs);
        assert!((norm[0].1 - 2.0).abs() < 1e-9);
    }
}
