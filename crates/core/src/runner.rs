//! Rayon-parallel parameter sweeps.
//!
//! Every simulation point is deterministic and single-threaded, so the
//! figure harnesses fan sweep points out across cores with rayon and the
//! results are identical to a sequential run — the guideline-recommended
//! "convert the outer loop to `par_iter`" shape for embarrassingly
//! parallel work.

use crate::metrics::RunReport;
use crate::system::SystemConfig;
use crate::traversal::Traversal;
use cxlg_graph::Csr;
use rayon::prelude::*;

/// Run one traversal over many system configurations in parallel,
/// preserving input order.
pub fn sweep_systems(
    graph: &Csr,
    traversal: Traversal,
    systems: &[SystemConfig],
) -> Vec<RunReport> {
    systems
        .par_iter()
        .map(|sys| traversal.run(graph, sys))
        .collect()
}

/// Run many `(label, graph, traversal, system)` points in parallel.
/// The generic point type keeps harness code declarative.
pub fn sweep<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync + Send,
{
    points.into_par_iter().map(f).collect()
}

/// A labelled runtime measurement, the common shape of the paper's
/// normalized-runtime figures.
#[derive(Debug, Clone)]
pub struct LabelledRun {
    /// Point label (e.g. "+1.0us", "64 B").
    pub label: String,
    /// The run's report.
    pub report: RunReport,
}

/// Normalize a set of runtimes by a baseline runtime (the paper
/// normalizes XLFDD/BaM by EMOGI, and CXL by host DRAM).
pub fn normalized_runtimes(baseline: &RunReport, runs: &[LabelledRun]) -> Vec<(String, f64)> {
    let base = baseline.metrics.runtime.as_secs_f64();
    runs.iter()
        .map(|r| {
            (
                r.label.clone(),
                r.report.metrics.runtime.as_secs_f64() / base,
            )
        })
        .collect()
}

/// Geometric mean of ratios — the paper summarizes Fig. 6 as geometric
/// means ("1.13 times longer on average, where the geometric mean is
/// taken over all the six pairs").
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_graph::spec::GraphSpec;
    use cxlg_link::pcie::PcieGen;
    use cxlg_sim::SimDuration;

    #[test]
    fn parallel_sweep_matches_sequential() {
        let g = GraphSpec::urand(8).seed(1).build();
        let systems = vec![
            SystemConfig::emogi_on_dram(PcieGen::Gen4),
            SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5),
        ];
        let par = sweep_systems(&g, Traversal::bfs(0), &systems);
        let seq: Vec<_> = systems
            .iter()
            .map(|s| Traversal::bfs(0).run(&g, s))
            .collect();
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.metrics.runtime, b.metrics.runtime);
            assert_eq!(a.metrics.fetched_bytes, b.metrics.fetched_bytes);
        }
    }

    #[test]
    fn sweep_preserves_order() {
        let out = sweep(vec![3u64, 1, 4, 1, 5], |x| x * 10);
        assert_eq!(out, vec![30, 10, 40, 10, 50]);
    }

    #[test]
    fn geometric_mean_of_paper_example() {
        // geomean(1, 4) = 2; invariant to permutation.
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let g = GraphSpec::urand(8).seed(1).build();
        let base = Traversal::bfs(0).run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
        let mut slow = base.clone();
        slow.metrics.runtime = SimDuration::from_ps(base.metrics.runtime.as_ps() * 2);
        let runs = vec![LabelledRun {
            label: "slow".into(),
            report: slow,
        }];
        let norm = normalized_runtimes(&base, &runs);
        assert!((norm[0].1 - 2.0).abs() < 1e-9);
    }
}
