//! Peak-RSS instrumentation for the campaign manifest.
//!
//! Peak resident set size is the campaign's binding constraint (the
//! shared graph cache keeps every built dataset alive), so the driver
//! records the process high-water mark after every experiment and the
//! `cxlg graph-mem` probe turns it into a bytes-per-arc figure that CI
//! budgets against.
//!
//! Sources, in order:
//!
//! 1. `VmHWM` from `/proc/self/status` — the kernel's high-water RSS.
//! 2. `getrusage(RUSAGE_SELF).ru_maxrss` via a raw syscall — some
//!    sandboxed kernels (gVisor among them) omit `VmHWM` from
//!    `/proc/self/status` but still account `ru_maxrss` faithfully.
//! 3. `0` — non-Linux or non-x86_64 fallback; consumers treat zero as
//!    "not measured", never as "zero bytes".

use std::sync::atomic::{AtomicU64, Ordering};

/// Running maximum across calls: some sandboxed kernels let `VmHWM`
/// *decrease* after large frees, which would break the manifest's
/// monotone peak accounting, so the process keeps its own high water.
static PEAK_SEEN_KB: AtomicU64 = AtomicU64::new(0);

/// Peak resident set size of this process in kilobytes, or 0 when no
/// source is available on this platform. Monotone non-decreasing over
/// the life of the process regardless of kernel quirks.
pub fn peak_rss_kb() -> u64 {
    let kb = vm_hwm_kb().or_else(ru_maxrss_kb).unwrap_or(0);
    PEAK_SEEN_KB.fetch_max(kb, Ordering::Relaxed).max(kb)
}

/// Peak-RSS readings bracketing one unit of work — the honest answer
/// to "how much memory did this job add?".
///
/// [`peak_rss_kb`] is **process-global and monotone**: under a shared
/// process (the campaign service runs many jobs in one), every job
/// sampling it at completion reports the same campaign high-water
/// mark, which misattributes the largest job's footprint to everyone.
/// A span records the mark before and after instead; the delta is the
/// growth of the process high-water mark *during* the span, with two
/// documented caveats: under concurrency it is an upper bound on the
/// span's own footprint (a neighbour's allocations land in whichever
/// span is open), and it is 0 whenever the process peak predates the
/// span — never a per-job absolute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssSpan {
    /// Process high-water mark (kB) when the span opened.
    pub before_kb: u64,
    /// Process high-water mark (kB) when the span closed.
    pub after_kb: u64,
}

impl RssSpan {
    /// Growth of the process high-water mark across the span (kB).
    /// 0 when the peak predates the span or no source exists.
    pub fn delta_kb(&self) -> u64 {
        self.after_kb.saturating_sub(self.before_kb)
    }
}

/// Run `f`, bracketing it with peak-RSS samples. Both samples come from
/// the monotone [`peak_rss_kb`], so `after_kb >= before_kb` always.
pub fn rss_span<R>(f: impl FnOnce() -> R) -> (R, RssSpan) {
    let before_kb = peak_rss_kb();
    let r = f();
    let after_kb = peak_rss_kb();
    (r, RssSpan { before_kb, after_kb })
}

/// *Current* resident set size of this process in kilobytes, or 0 when
/// no source is available. Unlike [`peak_rss_kb`] this is
/// instantaneous — it goes down when memory is freed — and feeds the
/// campaign service's admission gate and `serve --stats` telemetry.
/// Falls back to the (monotone) peak when `VmRSS` is unavailable, which
/// only over-reports — the safe direction for an admission gate.
pub fn current_rss_kb() -> u64 {
    proc_status_kb("VmRSS:").unwrap_or_else(peak_rss_kb)
}

/// Parse `VmHWM:  <n> kB` out of `/proc/self/status`.
fn vm_hwm_kb() -> Option<u64> {
    proc_status_kb("VmHWM:")
}

/// Parse one `<prefix>  <n> kB` line out of `/proc/self/status`.
fn proc_status_kb(prefix: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(prefix) {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok();
        }
    }
    None
}

/// `getrusage(RUSAGE_SELF)` through a raw syscall (no libc dependency is
/// vendored). `ru_maxrss` is already in kilobytes on Linux.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn ru_maxrss_kb() -> Option<u64> {
    // struct rusage begins { timeval ru_utime; timeval ru_stime;
    // long ru_maxrss; ... } — ru_maxrss sits after two 16-byte timevals.
    // The full struct is 16 longs beyond the timevals; round up generously.
    let mut rusage = [0i64; 36];
    let ret: i64;
    // SAFETY: SYS_getrusage only writes within the caller-provided
    // buffer; `rusage` is a live, 288-byte stack array comfortably
    // larger than the 144-byte kernel struct, and the asm clobbers
    // (rcx/r11) are exactly the registers the syscall ABI tramples.
    unsafe {
        std::arch::asm!(
            "syscall",
            in("rax") 98i64, // SYS_getrusage
            in("rdi") 0i64,  // RUSAGE_SELF
            in("rsi") rusage.as_mut_ptr(),
            lateout("rax") ret,
            out("rcx") _,
            out("r11") _,
        );
    }
    if ret == 0 {
        u64::try_from(rusage[4]).ok().filter(|&kb| kb > 0)
    } else {
        None
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn ru_maxrss_kb() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_a_positive_high_water_mark() {
        // Either source must see this very test binary's RSS.
        let kb = peak_rss_kb();
        assert!(kb > 0, "no peak-RSS source found on Linux");
        // A test process maps at least a few hundred kB and far less
        // than 1 TB; anything outside that is a parsing bug.
        assert!(kb > 100 && kb < (1u64 << 30), "implausible VmHWM {kb} kB");
    }

    #[test]
    fn rss_span_brackets_work_and_never_goes_negative() {
        let (value, span) = rss_span(|| {
            // Touch ~16 MB inside the span.
            let v = vec![3u8; 16 << 20];
            v[1 << 20] as u64
        });
        assert_eq!(value, 3);
        assert!(span.after_kb >= span.before_kb, "span must be monotone");
        assert_eq!(span.delta_kb(), span.after_kb - span.before_kb);
    }

    #[test]
    fn rss_span_delta_saturates() {
        // delta_kb never underflows even on a hand-built inverted span
        // (can only arise from a buggy caller, but must not panic).
        let span = RssSpan { before_kb: 10, after_kb: 4 };
        assert_eq!(span.delta_kb(), 0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn current_rss_is_positive_and_no_larger_than_a_sane_bound() {
        let now = current_rss_kb();
        assert!(now > 0, "no current-RSS source found on Linux");
        assert!(now < (1u64 << 30), "implausible VmRSS {now} kB");
    }

    #[test]
    fn high_water_mark_is_monotone() {
        let before = peak_rss_kb();
        // Touch ~32 MB so the high-water mark must not decrease (and, on
        // any working source, strictly covers the allocation).
        let v = vec![1u8; 32 << 20];
        let after = peak_rss_kb();
        assert!(after >= before, "high-water mark decreased: {before} -> {after}");
        drop(v);
        let released = peak_rss_kb();
        assert!(released >= after, "high-water mark fell after free");
    }
}
