//! The three external-memory access methods the paper studies (§3.3,
//! §4.1.1).
//!
//! An access method converts an *edge-sublist read* (a byte span of the
//! external edge list) into concrete device requests:
//!
//! * [`AccessMethod::ZeroCopy`] — **EMOGI** (§3.3.1): the GPU reads the
//!   span directly; the coalescer emits one 32–128 B transaction per
//!   touched cache line. Alignment `a` = 32 B comes from the GPU
//!   architecture. No state.
//! * [`AccessMethod::SoftwareCache`] — **BaM** (§3.3.2): data is read at
//!   cache-line granularity (`d = a`) through a GPU-memory software
//!   cache; only misses reach the device.
//! * [`AccessMethod::Direct`] — **XLFDD** (§4.1.1): no cache; the whole
//!   sublist is fetched in one request rounded to the drive's small
//!   alignment, split only at the 2 kB max transfer. This keeps the
//!   average transfer size `d` close to the average sublist size.

use cxlg_graph::layout::{align_down, align_up, span_block_range, ByteSpan};
use cxlg_gpu::coalesce::coalesce_span;
use cxlg_gpu::swcache::{AccessOutcome, SoftwareCache, SoftwareCacheConfig};
use cxlg_gpu::uvm::{UvmAccess, UvmConfig, UvmPageTable};
use serde::{Deserialize, Serialize};

/// One read request as seen by the external device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeviceRequest {
    /// Aligned byte address in the external edge list.
    pub addr: u64,
    /// Request size in bytes.
    pub bytes: u64,
    /// Host-side overhead paid before this request reaches the link, in
    /// ps. Zero for hardware-issued reads; the UVM access method charges
    /// its driver fault-handling time here (Related Work, §6).
    pub overhead_ps: u64,
}

/// A configured access method (stateful for the BaM cache).
#[derive(Debug, Clone)]
pub enum AccessMethod {
    /// EMOGI zero-copy: per-line sector-coalesced transactions.
    ZeroCopy {
        /// GPU cache-line size (128 B).
        line: u64,
        /// GPU sector size — the effective alignment `a` (32 B).
        sector: u64,
    },
    /// BaM: software cache with line size = alignment `a`.
    SoftwareCache {
        /// The cache (line size defines the device request size).
        cache: SoftwareCache,
    },
    /// XLFDD-direct: whole-sublist requests at a small alignment.
    ///
    /// Consecutive sublists that share an aligned block are merged: the
    /// GPU kernel hands consecutive frontier vertices to the same warp,
    /// which fetches a shared block once. This matters only at large
    /// alignments (a 4 kB block holds many 256 B sublists) — exactly the
    /// regime where Figure 5's XLFDD curve would otherwise explode past
    /// the measured ~3.7x.
    Direct {
        /// Device address alignment (16 B for XLFDD).
        alignment: u64,
        /// Maximum single transfer (2 kB for XLFDD).
        max_transfer: u64,
        /// End of the last fetched aligned range in the current level
        /// (reset by [`AccessMethod::begin_level`]).
        fetched_to: u64,
    },
    /// Unified virtual memory: 4 kB page migration on fault (the
    /// pre-EMOGI baseline, Related Work §6). Faulted pages carry the
    /// driver's fault-handling overhead into the request path.
    Uvm {
        /// Page table with residency tracking.
        table: UvmPageTable,
    },
}

impl AccessMethod {
    /// EMOGI defaults (128 B lines, 32 B sectors).
    pub fn emogi() -> Self {
        AccessMethod::ZeroCopy {
            line: 128,
            sector: 32,
        }
    }

    /// BaM with the given cache capacity and line size (= alignment).
    pub fn bam(capacity_bytes: u64, line_bytes: u64) -> Self {
        AccessMethod::SoftwareCache {
            cache: SoftwareCache::new(SoftwareCacheConfig::new(capacity_bytes, line_bytes)),
        }
    }

    /// XLFDD-direct with the paper's interface limits.
    pub fn xlfdd_direct(alignment: u64) -> Self {
        AccessMethod::Direct {
            alignment,
            max_transfer: 2048,
            fetched_to: 0,
        }
    }

    /// UVM with a given GPU residency budget.
    pub fn uvm(resident_bytes: u64) -> Self {
        AccessMethod::Uvm {
            table: UvmPageTable::new(UvmConfig {
                resident_bytes,
                ..UvmConfig::default()
            }),
        }
    }

    /// Start a new traversal level: frontier offsets restart from low
    /// addresses, so the Direct method's block-merge window resets.
    pub fn begin_level(&mut self) {
        if let AccessMethod::Direct { fetched_to, .. } = self {
            *fetched_to = 0;
        }
    }

    /// The effective address alignment `a` of this method.
    pub fn alignment(&self) -> u64 {
        match self {
            AccessMethod::ZeroCopy { sector, .. } => *sector,
            AccessMethod::SoftwareCache { cache } => cache.config().line_bytes,
            AccessMethod::Direct { alignment, .. } => *alignment,
            AccessMethod::Uvm { table } => table.config().page_bytes,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AccessMethod::ZeroCopy { .. } => "emogi",
            AccessMethod::SoftwareCache { .. } => "bam",
            AccessMethod::Direct { .. } => "xlfdd-direct",
            AccessMethod::Uvm { .. } => "uvm",
        }
    }

    /// Convert one sublist span into device requests, appending to `out`.
    /// Returns the number of cache hits (BaM only — hits produce no
    /// request).
    pub fn requests_for_span(&mut self, span: ByteSpan, out: &mut Vec<DeviceRequest>) -> u64 {
        if span.is_empty() {
            return 0;
        }
        match self {
            AccessMethod::ZeroCopy { line, sector } => {
                coalesce_span(span, *line, *sector, |t| {
                    out.push(DeviceRequest {
                        addr: t.addr,
                        bytes: t.bytes, overhead_ps: 0 });
                });
                0
            }
            AccessMethod::SoftwareCache { cache } => {
                let line_bytes = cache.config().line_bytes;
                let (first, last) = span_block_range(span, line_bytes);
                let mut hits = 0;
                for line in first..last {
                    match cache.access(line) {
                        AccessOutcome::Hit => hits += 1,
                        AccessOutcome::Miss { .. } => out.push(DeviceRequest {
                            addr: line * line_bytes,
                            bytes: line_bytes, overhead_ps: 0 }),
                    }
                }
                hits
            }
            AccessMethod::Direct {
                alignment,
                max_transfer,
                fetched_to,
            } => {
                let start = align_down(span.offset, *alignment).max(*fetched_to);
                let end = align_up(span.end(), *alignment);
                if start >= end {
                    // Entirely inside a block already fetched for a
                    // neighboring sublist this level.
                    return 1;
                }
                let mut cur = start;
                while cur < end {
                    let len = (*max_transfer).min(end - cur);
                    out.push(DeviceRequest {
                        addr: cur,
                        bytes: len, overhead_ps: 0 });
                    cur += len;
                }
                *fetched_to = end;
                0
            }
            AccessMethod::Uvm { table } => {
                let page = table.config().page_bytes;
                let overhead = table.config().fault_overhead_ps;
                let (first, last) = span_block_range(span, page);
                let mut hits = 0;
                for p in first..last {
                    match table.touch(p * page) {
                        UvmAccess::Resident => hits += 1,
                        UvmAccess::Fault => out.push(DeviceRequest {
                            addr: p * page,
                            bytes: page,
                            overhead_ps: overhead,
                        }),
                    }
                }
                hits
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(offset: u64, len: u64) -> ByteSpan {
        ByteSpan { offset, len }
    }

    fn collect(m: &mut AccessMethod, s: ByteSpan) -> Vec<DeviceRequest> {
        let mut v = Vec::new();
        m.requests_for_span(s, &mut v);
        v
    }

    #[test]
    fn emogi_produces_sector_transactions() {
        let mut m = AccessMethod::emogi();
        let reqs = collect(&mut m, span(32, 256));
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].bytes, 96);
        assert_eq!(reqs[1].bytes, 128);
        assert_eq!(reqs[2].bytes, 32);
        assert_eq!(m.alignment(), 32);
        assert_eq!(m.name(), "emogi");
    }

    #[test]
    fn bam_fetches_whole_lines_once() {
        let mut m = AccessMethod::bam(1 << 20, 4096);
        // A 256 B sublist in page 2.
        let reqs = collect(&mut m, span(2 * 4096 + 100, 256));
        assert_eq!(reqs, vec![DeviceRequest { addr: 8192, bytes: 4096, overhead_ps: 0 }]);
        // A neighboring sublist in the same page: pure hit, no request.
        let mut out = Vec::new();
        let hits = m.requests_for_span(span(2 * 4096 + 400, 256), &mut out);
        assert!(out.is_empty());
        assert_eq!(hits, 1);
        assert_eq!(m.alignment(), 4096);
    }

    #[test]
    fn bam_span_straddling_lines_fetches_both() {
        let mut m = AccessMethod::bam(1 << 20, 512);
        let reqs = collect(&mut m, span(500, 100)); // bytes 500..600: lines 0 and 1
        assert_eq!(
            reqs,
            vec![
                DeviceRequest { addr: 0, bytes: 512, overhead_ps: 0 },
                DeviceRequest { addr: 512, bytes: 512, overhead_ps: 0 },
            ]
        );
    }

    #[test]
    fn direct_fetches_one_aligned_request() {
        let mut m = AccessMethod::xlfdd_direct(16);
        // 440 B sublist at an odd offset.
        let reqs = collect(&mut m, span(1003, 440));
        assert_eq!(reqs.len(), 1);
        let r = reqs[0];
        assert_eq!(r.addr % 16, 0);
        assert!(r.addr <= 1003);
        assert!(r.addr + r.bytes >= 1003 + 440);
        // Rounded tightly: at most 15 bytes of slack each side.
        assert!(r.bytes <= 440 + 32);
    }

    #[test]
    fn direct_splits_at_max_transfer() {
        let mut m = AccessMethod::xlfdd_direct(16);
        // 5000 B sublist: 2048 + 2048 + remainder.
        let reqs = collect(&mut m, span(0, 5000));
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].bytes, 2048);
        assert_eq!(reqs[1].bytes, 2048);
        assert_eq!(reqs[2].bytes, 5008 - 4096);
        let total: u64 = reqs.iter().map(|r| r.bytes).sum();
        assert_eq!(total, align_up(5000, 16));
    }

    #[test]
    fn direct_merges_consecutive_sublists_sharing_a_block() {
        // Two 256 B sublists inside the same 4 kB block: the second is
        // already fetched (merged), so it produces no new request.
        let mut m = AccessMethod::Direct {
            alignment: 4096,
            max_transfer: 4096,
            fetched_to: 0,
        };
        let r1 = collect(&mut m, span(100, 256));
        assert_eq!(r1, vec![DeviceRequest { addr: 0, bytes: 4096, overhead_ps: 0 }]);
        let mut out = Vec::new();
        let merged = m.requests_for_span(span(400, 256), &mut out);
        assert!(out.is_empty(), "second sublist should merge");
        assert_eq!(merged, 1);
        // A sublist straddling into the next block fetches only the
        // unfetched tail.
        let r3 = collect(&mut m, span(4000, 256));
        assert_eq!(r3, vec![DeviceRequest { addr: 4096, bytes: 4096, overhead_ps: 0 }]);
    }

    #[test]
    fn direct_merge_resets_per_level() {
        let mut m = AccessMethod::xlfdd_direct(4096);
        let _ = collect(&mut m, span(0, 256));
        let mut out = Vec::new();
        assert_eq!(m.requests_for_span(span(512, 256), &mut out), 1);
        assert!(out.is_empty());
        // New level: offsets restart; the same block is fetched again.
        m.begin_level();
        let again = collect(&mut m, span(512, 256));
        assert!(!again.is_empty(), "level reset should clear the window");
    }

    #[test]
    fn direct_merge_is_noop_at_small_alignment() {
        // At 16 B alignment, 256 B sublists almost never share blocks;
        // back-to-back adjacent sublists still fetch their own bytes.
        let mut m = AccessMethod::xlfdd_direct(16);
        let r1 = collect(&mut m, span(0, 256));
        let r2 = collect(&mut m, span(256, 256));
        assert_eq!(r1.iter().map(|r| r.bytes).sum::<u64>(), 256);
        assert_eq!(r2.iter().map(|r| r.bytes).sum::<u64>(), 256);
    }

    #[test]
    fn empty_span_produces_no_requests() {
        for m in [
            &mut AccessMethod::emogi(),
            &mut AccessMethod::bam(1 << 20, 4096),
            &mut AccessMethod::xlfdd_direct(16),
        ] {
            assert!(collect(m, span(123, 0)).is_empty());
        }
    }

    #[test]
    fn fetched_bytes_ordering_matches_observation_1() {
        // For the same 256 B sublist at an unaligned offset, fetched bytes
        // should rank: direct(16) <= emogi(32) <= bam(4096) — the essence
        // of Observation 1.
        let s = span(1000, 256);
        let sum = |reqs: &[DeviceRequest]| reqs.iter().map(|r| r.bytes).sum::<u64>();
        let direct = sum(&collect(&mut AccessMethod::xlfdd_direct(16), s));
        let emogi = sum(&collect(&mut AccessMethod::emogi(), s));
        let bam = sum(&collect(&mut AccessMethod::bam(1 << 20, 4096), s));
        assert!(direct <= emogi, "{direct} > {emogi}");
        assert!(emogi <= bam, "{emogi} > {bam}");
        assert!(direct >= 256);
    }
}
