//! System-characterization microbenchmarks (§4.2.2).
//!
//! * [`pointer_chase_latency`] — the Appendix-B GPU pointer chase: a
//!   single warp performs dependent 128 B loads, so run time / hops is
//!   the GPU-observed external-memory latency (Figure 9);
//! * [`cxl_cpu_random_read`] — the CPU-side 64 B random-read loop against
//!   one CXL prototype device, reporting throughput and the implied
//!   outstanding-request count via Little's Law (Figure 10).

use crate::access::DeviceRequest;
use crate::system::SystemConfig;
use crate::traversal::Traversal;
use cxlg_device::cxl_mem::{CxlMemConfig, CxlMemDevice};
use cxlg_device::target::MemoryTarget;
use cxlg_gpu::pointer_chase::{PointerChase, POINTER_BYTES};
use cxlg_sim::{SimTime, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Result of a pointer-chase run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointerChaseResult {
    /// Mean per-hop latency in microseconds — the Figure 9 bar height.
    pub latency_us: f64,
    /// Hops performed.
    pub hops: u64,
}

/// Run the Appendix-B pointer chase on a system: one warp, dependent
/// 128 B loads over `region_bytes` of external memory.
pub fn pointer_chase_latency(
    sys: &SystemConfig,
    region_bytes: u64,
    hops: u64,
    seed: u64,
) -> PointerChaseResult {
    let mut chase = PointerChase::new(region_bytes, seed);
    let requests: Vec<DeviceRequest> = (0..hops)
        .map(|_| DeviceRequest {
            addr: chase.next_addr(),
            bytes: POINTER_BYTES, overhead_ps: 0 })
        .collect();
    // One warp serializes the loads exactly like the dependent chase.
    let single = sys.with_active_warps(1);
    let mut engine = single.build_engine();
    let batch = engine.run_batch(SimTime::ZERO, &requests);
    // Subtract the per-item compute the engine charges between loads: the
    // chase kernel does nothing but load.
    let total = batch.end.as_us_f64() - sys.gpu.item_compute().as_us_f64() * hops as f64;
    PointerChaseResult {
        latency_us: total / hops as f64,
        hops,
    }
}

/// Result of the CPU-side CXL random-read characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CxlReadResult {
    /// Added bridge latency in microseconds.
    pub added_latency_us: f64,
    /// Observed throughput in MB/s.
    pub throughput_mb_per_sec: f64,
    /// Mean observed latency per 64 B read, µs (CPU-side, excluding the
    /// GPU PCIe path — Fig. 10 measures at the CPU).
    pub latency_us: f64,
    /// Outstanding requests implied by Little's Law,
    /// `N = T * L / d` (Eq. 3 / §4.2.2).
    pub outstanding: f64,
}

/// Drive one CXL device with `reads` closed-loop random 64 B reads at CPU
/// concurrency `cpu_outstanding`, as in §4.2.2 / Figure 10.
pub fn cxl_cpu_random_read(
    cfg: CxlMemConfig,
    region_bytes: u64,
    reads: u64,
    cpu_outstanding: usize,
    seed: u64,
) -> CxlReadResult {
    assert!(cpu_outstanding >= 1);
    let mut dev = CxlMemDevice::new(cfg);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut inflight: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>> =
        std::collections::BinaryHeap::new();
    let mut out = Vec::with_capacity(2);
    let mut latency_sum = 0.0f64;
    let mut last = SimTime::ZERO;
    for _ in 0..reads {
        let issue = if inflight.len() >= cpu_outstanding {
            inflight.pop().expect("non-empty").0
        } else {
            SimTime::ZERO
        };
        let addr = rng.next_below(region_bytes / 64) * 64;
        out.clear();
        let done = dev.read(issue, addr, 64, &mut out);
        // cxlg-lint: allow(D4) -- sequential fold in fixed issue order over a single-threaded read loop; order is structural
        latency_sum += done.saturating_since(issue).as_us_f64();
        inflight.push(std::cmp::Reverse(done));
        last = last.max(done);
    }
    let secs = last.as_secs_f64();
    let throughput = (reads * 64) as f64 / 1e6 / secs;
    let latency_us = latency_sum / reads as f64;
    // Little's Law on the *device* (Eq. 3 / §4.2.2): the number of
    // requests resident in the device is throughput times the mean
    // tag-holding (admission-to-release) time. This is the curve the
    // paper uses to infer the Agilex-7's 128-tag limit.
    let t_bytes_per_us = (reads * 64) as f64 / last.as_us_f64();
    let outstanding = t_bytes_per_us * dev.mean_resident().as_us_f64() / 64.0;
    CxlReadResult {
        added_latency_us: cfg.added_latency().as_us_f64(),
        throughput_mb_per_sec: throughput,
        latency_us,
        outstanding,
    }
}

/// Convenience: the BFS pointer-chase-style latency ladder of Figure 9 —
/// DRAM near/far and CXL near/far at each added latency.
pub fn fig9_labels() -> Vec<(&'static str, bool)> {
    // (label, is_near_socket)
    vec![
        ("DRAM0", false),
        ("DRAM1", true),
        ("CXL0(+0)", false),
        ("CXL0(+1)", false),
        ("CXL0(+2)", false),
        ("CXL0(+3)", false),
        ("CXL3(+0)", true),
        ("CXL3(+1)", true),
        ("CXL3(+2)", true),
        ("CXL3(+3)", true),
    ]
}

/// Sanity helper: BFS on a trivially small system, used by examples and
/// smoke tests to confirm the full stack is wired.
pub fn smoke_bfs() -> crate::metrics::RunReport {
    use cxlg_graph::spec::GraphSpec;
    use cxlg_link::pcie::PcieGen;
    let g = GraphSpec::urand(8).seed(1).build();
    let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
    Traversal::bfs(0).run(&g, &sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_link::pcie::PcieGen;

    #[test]
    fn host_dram_pointer_chase_matches_fig9() {
        // Fig. 9: "The GPU sees a latency of around 1+ usec going through
        // the PCIe link to the host DRAM".
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
        let r = pointer_chase_latency(&sys, 1 << 24, 500, 1);
        assert!(
            (1.0..1.4).contains(&r.latency_us),
            "DRAM chase latency {} us",
            r.latency_us
        );
    }

    #[test]
    fn cxl_pointer_chase_adds_half_microsecond() {
        // Fig. 9: CXL(+0) ~ DRAM + 0.5 us.
        let dram = pointer_chase_latency(
            &SystemConfig::emogi_on_dram(PcieGen::Gen4),
            1 << 24,
            300,
            1,
        );
        let cxl = pointer_chase_latency(
            &SystemConfig::emogi_on_cxl(PcieGen::Gen4, 5),
            1 << 24,
            300,
            1,
        );
        let delta = cxl.latency_us - dram.latency_us;
        assert!((0.3..0.8).contains(&delta), "CXL adds {delta} us");
    }

    #[test]
    fn far_socket_chase_is_marginally_slower() {
        let near = pointer_chase_latency(
            &SystemConfig::emogi_on_dram(PcieGen::Gen4),
            1 << 24,
            300,
            1,
        );
        let far = pointer_chase_latency(
            &SystemConfig::emogi_on_dram(PcieGen::Gen4).on_far_socket(),
            1 << 24,
            300,
            1,
        );
        let delta = far.latency_us - near.latency_us;
        assert!(
            (0.05..0.2).contains(&delta),
            "UPI hop should add ~0.1 us, got {delta}"
        );
    }

    #[test]
    fn added_latency_shifts_chase_linearly() {
        let lat = |us| {
            pointer_chase_latency(
                &SystemConfig::emogi_on_cxl(PcieGen::Gen4, 5).with_added_latency_us(us),
                1 << 24,
                200,
                1,
            )
            .latency_us
        };
        let l0 = lat(0.0);
        let l2 = lat(2.0);
        let delta = l2 - l0;
        // The Appendix-A bridge pops at max(data_ready, stamp + added),
        // so the ~0.3 us of DRAM service is absorbed into the target:
        // the observed shift is 2.0 minus the base DRAM time.
        assert!((1.55..1.9).contains(&delta), "added 2 us observed {delta}");
    }

    #[test]
    fn fig10_throughput_capped_then_decaying() {
        // At +0 the single DRAM channel caps at ~5,700 MB/s; by +4 us the
        // 128-tag pool dominates and throughput falls well below the cap.
        let base = cxl_cpu_random_read(CxlMemConfig::default(), 1 << 30, 40_000, 512, 7);
        assert!(
            (base.throughput_mb_per_sec - 5_700.0).abs() / 5_700.0 < 0.05,
            "base throughput {}",
            base.throughput_mb_per_sec
        );
        let slow = cxl_cpu_random_read(
            CxlMemConfig::default().with_added_latency_us(4.0),
            1 << 30,
            40_000,
            512,
            7,
        );
        assert!(
            slow.throughput_mb_per_sec < 2_500.0,
            "latency-starved throughput {}",
            slow.throughput_mb_per_sec
        );
        // Under deep CPU pressure the device is tag-saturated in both
        // regimes (tags are held while flits queue on the DRAM channel),
        // so Little's Law pins N at the 128-tag limit — exactly how
        // §4.2.2 infers the Agilex-7's limit.
        assert!(
            (slow.outstanding - 128.0).abs() < 10.0,
            "outstanding {}",
            slow.outstanding
        );
        assert!(
            (base.outstanding - 128.0).abs() < 10.0,
            "outstanding at +0 {}",
            base.outstanding
        );
    }

    #[test]
    fn smoke_bfs_runs() {
        let report = smoke_bfs();
        assert!(report.reached > 1);
        assert!(report.metrics.runtime.as_us_f64() > 0.0);
    }
}
