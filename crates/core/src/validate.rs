//! Reference implementations and verifiers for the traversal results.
//!
//! The simulated runs compute real answers (distances, components,
//! ranks) on the host graph; these verifiers check them against
//! independent implementations, GAP-benchmark style, so a timing-model
//! bug can never silently corrupt algorithmic results.

use crate::traversal::{bfs_trace, sssp_trace};
use cxlg_graph::{CsrView, VertexId};
use std::collections::VecDeque;

/// BFS depths by a plain queue implementation; `u32::MAX` = unreached.
pub fn reference_bfs_depths<G: CsrView + ?Sized>(g: &G, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut depth = vec![u32::MAX; n];
    depth[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        g.for_neighbors(v, &mut |u| {
            if depth[u as usize] == u32::MAX {
                depth[u as usize] = depth[v as usize] + 1;
                queue.push_back(u);
            }
        });
    }
    depth
}

/// Dijkstra reference distances; `u64::MAX` = unreached.
pub fn reference_sssp_distances<G: CsrView + ?Sized>(
    g: &G,
    source: VertexId,
    max_weight: u32,
) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u64, source))]);
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        g.for_neighbors(v, &mut |u| {
            let nd = d + g.edge_weight(v, u, max_weight) as u64;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        });
    }
    dist
}

/// Verify that a level-synchronous BFS trace assigns every vertex the
/// reference depth (vertex in level `k` ⇔ reference depth `k`).
pub fn verify_bfs_trace<G: CsrView + ?Sized>(
    g: &G,
    source: VertexId,
    trace: &[Vec<VertexId>],
) -> Result<(), String> {
    let reference = reference_bfs_depths(g, source);
    let mut seen = vec![false; g.num_vertices()];
    for (k, level) in trace.iter().enumerate() {
        for &v in level {
            if reference[v as usize] != k as u32 {
                return Err(format!(
                    "vertex {v} in level {k} but reference depth is {}",
                    reference[v as usize]
                ));
            }
            if seen[v as usize] {
                return Err(format!("vertex {v} appears twice"));
            }
            seen[v as usize] = true;
        }
    }
    let traced = seen.iter().filter(|&&s| s).count();
    let reachable = reference.iter().filter(|&&d| d != u32::MAX).count();
    if traced != reachable {
        return Err(format!("trace covers {traced} vertices, reference {reachable}"));
    }
    Ok(())
}

/// Verify that the frontier-Bellman–Ford trace converges to Dijkstra's
/// distances (re-running the relaxations over the trace).
pub fn verify_sssp<G: CsrView + ?Sized>(
    g: &G,
    source: VertexId,
    max_weight: u32,
) -> Result<(), String> {
    // Replay the production trace's relaxation logic...
    let trace = sssp_trace(g, source, max_weight);
    let mut dist = vec![u64::MAX; g.num_vertices()];
    dist[source as usize] = 0;
    for round in &trace {
        for &v in round {
            let dv = dist[v as usize];
            if dv == u64::MAX {
                return Err(format!("vertex {v} active with infinite distance"));
            }
            g.for_neighbors(v, &mut |u| {
                let nd = dv + g.edge_weight(v, u, max_weight) as u64;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                }
            });
        }
    }
    // ...and compare with Dijkstra.
    let reference = reference_sssp_distances(g, source, max_weight);
    for (v, (&got, &want)) in dist.iter().zip(&reference).enumerate() {
        if got != want {
            return Err(format!("vertex {v}: got {got}, reference {want}"));
        }
    }
    Ok(())
}

/// Count connected components by union-find (reference for `cc_trace`).
pub fn reference_component_count<G: CsrView + ?Sized>(g: &G) -> u64 {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for v in 0..n as u32 {
        g.for_neighbors(v, &mut |u| {
            let (rv, ru) = (find(&mut parent, v), find(&mut parent, u));
            if rv != ru {
                parent[rv.max(ru) as usize] = rv.min(ru);
            }
        });
    }
    (0..n as u32).filter(|&v| find(&mut parent, v) == v).count() as u64
}

/// End-to-end check used by tests: BFS trace, SSSP convergence, and CC
/// count all match their references.
pub fn verify_all<G: CsrView + ?Sized>(g: &G, source: VertexId) -> Result<(), String> {
    verify_bfs_trace(g, source, &bfs_trace(g, source))?;
    verify_sssp(g, source, 64)?;
    let (_, cc) = crate::traversal::cc_trace(g);
    let reference = reference_component_count(g);
    if cc != reference {
        return Err(format!("components: got {cc}, reference {reference}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_graph::spec::GraphSpec;

    #[test]
    fn bfs_trace_matches_reference_on_all_families() {
        for spec in [
            GraphSpec::urand(10).seed(1),
            GraphSpec::kron(10).seed(2),
            GraphSpec::friendster_like(10).seed(3),
        ] {
            let g = spec.build();
            let src = g.max_degree_vertex().unwrap();
            verify_bfs_trace(&g, src, &bfs_trace(&g, src))
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        }
    }

    #[test]
    fn sssp_converges_to_dijkstra() {
        for seed in 1..4 {
            let g = GraphSpec::urand(9).seed(seed).build();
            verify_sssp(&g, 0, 64).unwrap();
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = GraphSpec::kron(10).seed(5).build();
        let (_, cc) = crate::traversal::cc_trace(&g);
        assert_eq!(cc, reference_component_count(&g));
    }

    #[test]
    fn verify_all_on_each_family() {
        for spec in [
            GraphSpec::urand(9).seed(7),
            GraphSpec::kron(9).seed(7),
            GraphSpec::friendster_like(9).seed(7),
        ] {
            let g = spec.build();
            let src = g.max_degree_vertex().unwrap();
            verify_all(&g, src).unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        }
    }

    #[test]
    fn verifier_catches_corrupt_traces() {
        let g = GraphSpec::urand(8).seed(1).build();
        let mut trace = bfs_trace(&g, 0);
        // Move a vertex one level later: must be rejected.
        if trace.len() >= 3 {
            let v = trace[1].pop().unwrap();
            trace[2].push(v);
            assert!(verify_bfs_trace(&g, 0, &trace).is_err());
        }
    }

    #[test]
    fn reference_bfs_depth_zero_is_source() {
        let g = GraphSpec::urand(8).seed(2).build();
        let d = reference_bfs_depths(&g, 5);
        assert_eq!(d[5], 0);
        assert!(d.iter().filter(|&&x| x != u32::MAX).count() > 1);
    }

    #[test]
    fn relabeled_graph_has_same_component_count() {
        let g = GraphSpec::kron(9).seed(9).build();
        let r = cxlg_graph::reorder::by_degree(&g);
        assert_eq!(reference_component_count(&g), reference_component_count(&r));
    }
}
