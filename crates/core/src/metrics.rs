//! Per-run measurements: everything the paper's figures plot.
//!
//! The fundamental identity is Equation 1, `t = D / T`: a run's total
//! fetched bytes `D`, its useful bytes `E` (sum of edge-sublist sizes),
//! their ratio `RAF = D / E` (§3.1), the achieved throughput `T`, and the
//! mean transfer size `d = D / requests` (§3.2) are all first-class here.

use cxlg_sim::{OnlineStats, SimDuration};
use serde::{Deserialize, Serialize};

/// Aggregate measurements for one traversal (or microbenchmark) run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// End-to-end simulated runtime (`t` in Equation 1).
    pub runtime: SimDuration,
    /// Useful bytes: the sum of edge-sublist sizes the algorithm needed
    /// (`E` in §3.1).
    pub useful_bytes: u64,
    /// Bytes actually fetched from the external memory (`D` in Eq. 1).
    pub fetched_bytes: u64,
    /// Device read requests issued.
    pub requests: u64,
    /// Cache hits (BaM access method only; zero otherwise).
    pub cache_hits: u64,
    /// Mean observed request latency (issue to last byte at the GPU).
    pub latency: OnlineStats,
    /// Time-averaged outstanding requests on the GPU link (`N` of
    /// Little's Law, Eq. 3).
    pub mean_outstanding: f64,
    /// Peak outstanding requests.
    pub peak_outstanding: u64,
}

impl RunMetrics {
    /// Read amplification factor `D / E` (§3.1). Returns `NaN` when no
    /// useful bytes were requested.
    pub fn raf(&self) -> f64 {
        self.fetched_bytes as f64 / self.useful_bytes as f64
    }

    /// Mean data transfer size per request, `d = D / requests` (§3.2).
    pub fn mean_transfer_bytes(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.fetched_bytes as f64 / self.requests as f64
        }
    }

    /// Achieved throughput `T = D / t` in MB/s.
    pub fn throughput_mb_per_sec(&self) -> f64 {
        let secs = self.runtime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.fetched_bytes as f64 / 1e6 / secs
        }
    }

    /// Achieved request rate in MIOPS.
    pub fn miops(&self) -> f64 {
        let secs = self.runtime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / 1e6 / secs
        }
    }

    /// Merge a batch's metrics into the run totals.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.runtime += other.runtime;
        self.useful_bytes += other.useful_bytes;
        self.fetched_bytes += other.fetched_bytes;
        self.requests += other.requests;
        self.cache_hits += other.cache_hits;
        self.latency.merge(&other.latency);
        // Time-weight the outstanding averages by batch runtime.
        let (a, b) = (
            (self.runtime - other.runtime).as_secs_f64(),
            other.runtime.as_secs_f64(),
        );
        if a + b > 0.0 {
            self.mean_outstanding =
                (self.mean_outstanding * a + other.mean_outstanding * b) / (a + b);
        }
        self.peak_outstanding = self.peak_outstanding.max(other.peak_outstanding);
    }
}

/// Per-traversal-level (per BFS depth / SSSP round) statistics — Table 2
/// of the paper reports the frontier column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelStats {
    /// Depth / round index (source level is 0).
    pub depth: u32,
    /// Vertices in the frontier at this level.
    pub frontier: u64,
    /// Useful bytes read for this level.
    pub useful_bytes: u64,
    /// Fetched bytes for this level.
    pub fetched_bytes: u64,
    /// Simulated time spent in this level.
    pub runtime: SimDuration,
}

/// Full result of one traversal run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Aggregate metrics.
    pub metrics: RunMetrics,
    /// Per-level breakdown.
    pub levels: Vec<LevelStats>,
    /// Vertices reached (BFS/SSSP/CC) or processed (PageRank).
    pub reached: u64,
    /// Workload name for display.
    pub workload: String,
    /// Backend name for display.
    pub backend: String,
}

impl RunReport {
    /// Total traversal depth (levels with non-empty frontiers).
    pub fn depth(&self) -> u32 {
        self.levels.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_sim::SimDuration;

    fn metrics(runtime_us: f64, useful: u64, fetched: u64, reqs: u64) -> RunMetrics {
        RunMetrics {
            runtime: SimDuration::from_us(runtime_us),
            useful_bytes: useful,
            fetched_bytes: fetched,
            requests: reqs,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn raf_is_d_over_e() {
        let m = metrics(1.0, 1000, 2500, 10);
        assert!((m.raf() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_transfer_is_d_over_requests() {
        let m = metrics(1.0, 1000, 4096, 32);
        assert!((m.mean_transfer_bytes() - 128.0).abs() < 1e-12);
        let empty = metrics(1.0, 0, 0, 0);
        assert_eq!(empty.mean_transfer_bytes(), 0.0);
    }

    #[test]
    fn throughput_is_d_over_t() {
        // 24,000 bytes in 1 us = 24,000 MB/s.
        let m = metrics(1.0, 24_000, 24_000, 10);
        assert!((m.throughput_mb_per_sec() - 24_000.0).abs() < 1e-6);
        assert!((m.miops() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates_and_time_weights() {
        let mut a = metrics(1.0, 100, 200, 2);
        a.mean_outstanding = 10.0;
        let mut b = metrics(3.0, 300, 400, 4);
        b.mean_outstanding = 30.0;
        b.peak_outstanding = 77;
        a.absorb(&b);
        assert_eq!(a.runtime.as_us_f64(), 4.0);
        assert_eq!(a.useful_bytes, 400);
        assert_eq!(a.fetched_bytes, 600);
        assert_eq!(a.requests, 6);
        // Time-weighted: (10 * 1 + 30 * 3) / 4 = 25.
        assert!((a.mean_outstanding - 25.0).abs() < 1e-9);
        assert_eq!(a.peak_outstanding, 77);
    }

    #[test]
    fn report_depth() {
        let report = RunReport {
            metrics: RunMetrics::default(),
            levels: vec![
                LevelStats {
                    depth: 0,
                    frontier: 1,
                    useful_bytes: 0,
                    fetched_bytes: 0,
                    runtime: SimDuration::ZERO,
                },
                LevelStats {
                    depth: 1,
                    frontier: 31,
                    useful_bytes: 0,
                    fetched_bytes: 0,
                    runtime: SimDuration::ZERO,
                },
            ],
            reached: 32,
            workload: "bfs".into(),
            backend: "host-dram".into(),
        };
        assert_eq!(report.depth(), 2);
    }
}
