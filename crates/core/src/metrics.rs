//! Per-run measurements: everything the paper's figures plot.
//!
//! The fundamental identity is Equation 1, `t = D / T`: a run's total
//! fetched bytes `D`, its useful bytes `E` (sum of edge-sublist sizes),
//! their ratio `RAF = D / E` (§3.1), the achieved throughput `T`, and the
//! mean transfer size `d = D / requests` (§3.2) are all first-class here.

use cxlg_sim::{OnlineStats, SimDuration};
use serde::{Deserialize, Serialize};

/// Aggregate measurements for one traversal (or microbenchmark) run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// End-to-end simulated runtime (`t` in Equation 1).
    pub runtime: SimDuration,
    /// Useful bytes: the sum of edge-sublist sizes the algorithm needed
    /// (`E` in §3.1).
    pub useful_bytes: u64,
    /// Bytes actually fetched from the external memory (`D` in Eq. 1).
    pub fetched_bytes: u64,
    /// Device read requests issued.
    pub requests: u64,
    /// Cache hits (BaM access method only; zero otherwise).
    pub cache_hits: u64,
    /// Mean observed request latency (issue to last byte at the GPU).
    pub latency: OnlineStats,
    /// Time-averaged outstanding requests on the GPU link (`N` of
    /// Little's Law, Eq. 3).
    pub mean_outstanding: f64,
    /// Peak outstanding requests.
    pub peak_outstanding: u64,
}

impl RunMetrics {
    /// Read amplification factor `D / E` (§3.1). Returns `NaN` when no
    /// useful bytes were requested.
    pub fn raf(&self) -> f64 {
        self.fetched_bytes as f64 / self.useful_bytes as f64
    }

    /// Mean data transfer size per request, `d = D / requests` (§3.2).
    pub fn mean_transfer_bytes(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.fetched_bytes as f64 / self.requests as f64
        }
    }

    /// Achieved throughput `T = D / t` in MB/s.
    pub fn throughput_mb_per_sec(&self) -> f64 {
        let secs = self.runtime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.fetched_bytes as f64 / 1e6 / secs
        }
    }

    /// Achieved request rate in MIOPS.
    pub fn miops(&self) -> f64 {
        let secs = self.runtime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / 1e6 / secs
        }
    }

    /// Merge a batch's metrics into the run totals.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.runtime += other.runtime;
        self.useful_bytes += other.useful_bytes;
        self.fetched_bytes += other.fetched_bytes;
        self.requests += other.requests;
        self.cache_hits += other.cache_hits;
        self.latency.merge(&other.latency);
        // Time-weight the outstanding averages by batch runtime.
        let (a, b) = (
            (self.runtime - other.runtime).as_secs_f64(),
            other.runtime.as_secs_f64(),
        );
        if a + b > 0.0 {
            self.mean_outstanding =
                (self.mean_outstanding * a + other.mean_outstanding * b) / (a + b);
        }
        self.peak_outstanding = self.peak_outstanding.max(other.peak_outstanding);
    }
}

/// Per-traversal-level (per BFS depth / SSSP round) statistics — Table 2
/// of the paper reports the frontier column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelStats {
    /// Depth / round index (source level is 0).
    pub depth: u32,
    /// Vertices in the frontier at this level.
    pub frontier: u64,
    /// Useful bytes read for this level.
    pub useful_bytes: u64,
    /// Fetched bytes for this level.
    pub fetched_bytes: u64,
    /// Simulated time spent in this level.
    pub runtime: SimDuration,
}

/// Full result of one traversal run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Aggregate metrics.
    pub metrics: RunMetrics,
    /// Per-level breakdown.
    pub levels: Vec<LevelStats>,
    /// Vertices reached (BFS/SSSP/CC) or processed (PageRank).
    pub reached: u64,
    /// Workload name for display.
    pub workload: String,
    /// Backend name for display.
    pub backend: String,
}

impl RunReport {
    /// Total traversal depth (levels with non-empty frontiers).
    pub fn depth(&self) -> u32 {
        self.levels.len() as u32
    }
}

/// Non-panicking geometric mean of ratios: `None` for an empty input or
/// any non-positive/NaN ratio. The fidelity engine aggregates
/// measured/paper ratios with this — a degenerate series in a result
/// file must surface as an "n/a" summary cell, not abort the whole
/// validation run. This is the single implementation;
/// [`geometric_mean`] is a panicking shell around it.
pub fn try_geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| !(x > 0.0)) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Geometric mean of ratios — the paper summarizes Fig. 6 as geometric
/// means ("1.13 times longer on average, where the geometric mean is
/// taken over all the six pairs").
///
/// # Panics
///
/// Panics on an empty input and on any non-positive (or NaN) ratio:
/// `ln()` of zero or a negative number is `-inf`/`NaN`, which would
/// propagate into the summary statistic with no diagnostic. Runtime
/// ratios are positive by construction, so a violation is a bug
/// upstream. Computation is delegated to [`try_geometric_mean`]; this
/// wrapper only turns the `None` into a diagnostic.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of nothing");
    try_geometric_mean(xs).unwrap_or_else(|| {
        let (i, x) = xs
            .iter()
            .enumerate()
            .find(|&(_, &x)| !(x > 0.0))
            .expect("non-empty input without a mean must hold a bad ratio");
        panic!(
            "geometric_mean: ratio [{i}] = {x} is not positive; \
             the geometric mean is only defined over positive ratios"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_sim::SimDuration;

    fn metrics(runtime_us: f64, useful: u64, fetched: u64, reqs: u64) -> RunMetrics {
        RunMetrics {
            runtime: SimDuration::from_us(runtime_us),
            useful_bytes: useful,
            fetched_bytes: fetched,
            requests: reqs,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn raf_is_d_over_e() {
        let m = metrics(1.0, 1000, 2500, 10);
        assert!((m.raf() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_transfer_is_d_over_requests() {
        let m = metrics(1.0, 1000, 4096, 32);
        assert!((m.mean_transfer_bytes() - 128.0).abs() < 1e-12);
        let empty = metrics(1.0, 0, 0, 0);
        assert_eq!(empty.mean_transfer_bytes(), 0.0);
    }

    #[test]
    fn throughput_is_d_over_t() {
        // 24,000 bytes in 1 us = 24,000 MB/s.
        let m = metrics(1.0, 24_000, 24_000, 10);
        assert!((m.throughput_mb_per_sec() - 24_000.0).abs() < 1e-6);
        assert!((m.miops() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates_and_time_weights() {
        let mut a = metrics(1.0, 100, 200, 2);
        a.mean_outstanding = 10.0;
        let mut b = metrics(3.0, 300, 400, 4);
        b.mean_outstanding = 30.0;
        b.peak_outstanding = 77;
        a.absorb(&b);
        assert_eq!(a.runtime.as_us_f64(), 4.0);
        assert_eq!(a.useful_bytes, 400);
        assert_eq!(a.fetched_bytes, 600);
        assert_eq!(a.requests, 6);
        // Time-weighted: (10 * 1 + 30 * 3) / 4 = 25.
        assert!((a.mean_outstanding - 25.0).abs() < 1e-9);
        assert_eq!(a.peak_outstanding, 77);
    }

    #[test]
    fn report_depth() {
        let report = RunReport {
            metrics: RunMetrics::default(),
            levels: vec![
                LevelStats {
                    depth: 0,
                    frontier: 1,
                    useful_bytes: 0,
                    fetched_bytes: 0,
                    runtime: SimDuration::ZERO,
                },
                LevelStats {
                    depth: 1,
                    frontier: 31,
                    useful_bytes: 0,
                    fetched_bytes: 0,
                    runtime: SimDuration::ZERO,
                },
            ],
            reached: 32,
            workload: "bfs".into(),
            backend: "host-dram".into(),
        };
        assert_eq!(report.depth(), 2);
    }

    #[test]
    fn geometric_mean_of_paper_example() {
        // geomean(1, 4) = 2; invariant to permutation.
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn panicking_and_fallible_geomean_agree_bit_for_bit() {
        // The wrapper routes through `try_geometric_mean` — same input
        // must produce the identical float, not a re-derived one.
        let xs = [0.97, 1.13, 2.4, 0.51, 3.09];
        assert_eq!(
            geometric_mean(&xs).to_bits(),
            try_geometric_mean(&xs).unwrap().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "geometric mean of nothing")]
    fn geometric_mean_rejects_empty_input() {
        geometric_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "ratio [1] = 0 is not positive")]
    fn geometric_mean_rejects_zero_ratio_and_names_the_index() {
        geometric_mean(&[1.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "is not positive")]
    fn geometric_mean_rejects_negative_ratio() {
        geometric_mean(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "is not positive")]
    fn geometric_mean_rejects_nan_ratio() {
        geometric_mean(&[1.0, f64::NAN]);
    }

    #[test]
    fn try_geometric_mean_degrades_instead_of_panicking() {
        assert_eq!(try_geometric_mean(&[]), None);
        assert_eq!(try_geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(try_geometric_mean(&[1.0, -2.0]), None);
        assert_eq!(try_geometric_mean(&[1.0, f64::NAN]), None);
        let g = try_geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }
}
