//! Read-amplification simulation — Figure 3 of the paper.
//!
//! §3.1: "we ran representative graph traversal algorithms … for varying
//! alignment sizes and calculated the RAF. This is CPU simulation
//! implementing a software cache to experiment with alignment sizes
//! without hardware constraints." We do exactly that: replay a
//! traversal's access trace through a set-associative software cache
//! whose line size is the alignment `a`, and report
//! `RAF = fetched bytes / useful bytes`.
//!
//! The cache capacity models the GPU memory available for caching; the
//! paper's graphs (28–35 GB edge lists) exceed the A5000's 24 GB, so the
//! default capacity here is a quarter of the edge list, preserving the
//! "cache smaller than graph" regime at any simulation scale.

use cxlg_gpu::swcache::{SoftwareCache, SoftwareCacheConfig};
use cxlg_graph::layout::{span_block_range, EdgeListLayout};
use cxlg_graph::{CsrView, VertexId};
use serde::{Deserialize, Serialize};

/// One RAF measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RafPoint {
    /// Alignment size `a` in bytes.
    pub alignment: u64,
    /// Read amplification factor `D / E`.
    pub raf: f64,
    /// Useful bytes `E`.
    pub useful_bytes: u64,
    /// Fetched bytes `D`.
    pub fetched_bytes: u64,
    /// Cache hit rate over line accesses.
    pub hit_rate: f64,
}

/// RAF of replaying `trace` (per-level vertex frontiers) at alignment
/// `alignment` with a cache of `capacity_bytes`.
pub fn raf_for_trace<G: CsrView + ?Sized>(
    g: &G,
    trace: &[Vec<VertexId>],
    alignment: u64,
    capacity_bytes: u64,
) -> RafPoint {
    let layout = EdgeListLayout::new(g);
    let mut cache = SoftwareCache::new(SoftwareCacheConfig::new(capacity_bytes, alignment));
    let mut useful = 0u64;
    for level in trace {
        for &v in level {
            let span = layout.sublist_span(v);
            useful += span.len;
            let (first, last) = span_block_range(span, alignment);
            for line in first..last {
                // Misses are tallied inside the cache as fetched lines.
                let _ = cache.access(line);
            }
        }
    }
    let fetched = cache.fetched_bytes();
    RafPoint {
        alignment,
        raf: fetched as f64 / useful as f64,
        useful_bytes: useful,
        fetched_bytes: fetched,
        hit_rate: cache.hit_rate(),
    }
}

/// Default cache capacity for a graph: a quarter of the edge list,
/// with a small floor so tiny test graphs still hold one full set.
/// The floor is deliberately tiny — capacity must not grow with the
/// alignment under sweep, or the Figure 3 monotonicity would be an
/// artifact of changing cache sizes.
pub fn default_capacity<G: CsrView + ?Sized>(g: &G, alignment: u64) -> u64 {
    (g.num_edges() * 8 / 4).max(alignment * 16)
}

/// RAF sweep over alignment sizes for one trace, as plotted in Figure 3
/// (8 B – 4 kB on a log2 axis).
pub fn raf_sweep<G: CsrView + ?Sized>(
    g: &G,
    trace: &[Vec<VertexId>],
    alignments: &[u64],
    capacity_bytes: Option<u64>,
) -> Vec<RafPoint> {
    alignments
        .iter()
        .map(|&a| {
            let cap = capacity_bytes.unwrap_or_else(|| default_capacity(g, a));
            raf_for_trace(g, trace, a, cap)
        })
        .collect()
}

/// The alignment axis of Figure 3.
pub const FIG3_ALIGNMENTS: [u64; 10] = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_trace, sssp_trace};
    use cxlg_graph::spec::GraphSpec;

    #[test]
    fn raf_at_8b_alignment_is_nearly_one() {
        // 8 B alignment on an 8 B-granular edge list wastes nothing
        // except cross-sublist line sharing (which only *reduces* D).
        let g = GraphSpec::urand(10).seed(1).build();
        let trace = bfs_trace(&g, 0);
        let p = raf_for_trace(&g, &trace, 8, default_capacity(&g, 8));
        assert!(p.raf <= 1.0 + 1e-9, "RAF {} at 8 B", p.raf);
        assert!(p.raf > 0.9, "RAF {} suspiciously low", p.raf);
    }

    #[test]
    fn raf_grows_with_alignment() {
        // Figure 3: "the RAFs are increasing functions of the alignment
        // size".
        let g = GraphSpec::urand(11).seed(1).build();
        let trace = bfs_trace(&g, 0);
        let points = raf_sweep(&g, &trace, &FIG3_ALIGNMENTS, None);
        for w in points.windows(2) {
            assert!(
                w[1].raf >= w[0].raf * 0.98,
                "RAF not (weakly) increasing: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // And it reaches well above 1 at 4 kB ("up to 4 at 4 kB").
        let raf4k = points.last().unwrap().raf;
        assert!(raf4k > 1.5, "RAF at 4 kB only {raf4k}");
        assert!(raf4k < 20.0, "RAF at 4 kB implausibly high {raf4k}");
    }

    #[test]
    fn kron_raf_lower_than_urand_at_large_alignment() {
        // Heavier-tailed graphs have larger sublists, which amortize the
        // alignment padding: Figure 3 shows kron/Friendster below urand.
        let urand = GraphSpec::urand(11).seed(1).build();
        let kron = GraphSpec::kron(11).seed(1).build();
        let ur = raf_for_trace(
            &urand,
            &bfs_trace(&urand, 0),
            4096,
            default_capacity(&urand, 4096),
        );
        let hub = kron.max_degree_vertex().unwrap();
        let kr = raf_for_trace(
            &kron,
            &bfs_trace(&kron, hub),
            4096,
            default_capacity(&kron, 4096),
        );
        assert!(
            kr.raf < ur.raf * 1.2,
            "kron RAF {} should not exceed urand {} by much",
            kr.raf,
            ur.raf
        );
    }

    #[test]
    fn sssp_raf_reasonable() {
        let g = GraphSpec::urand(9).seed(2).build();
        let trace = sssp_trace(&g, 0, 64);
        let p = raf_for_trace(&g, &trace, 128, default_capacity(&g, 128));
        assert!(p.raf >= 0.5 && p.raf < 4.0, "SSSP RAF {}", p.raf);
        assert!(p.useful_bytes > 0);
    }

    #[test]
    fn bigger_cache_lowers_raf() {
        let g = GraphSpec::urand(10).seed(3).build();
        let trace = bfs_trace(&g, 0);
        let small = raf_for_trace(&g, &trace, 4096, 64 * 4096);
        let big = raf_for_trace(&g, &trace, 4096, g.num_edges() * 8 * 2);
        assert!(
            big.raf <= small.raf,
            "bigger cache must not amplify more: {} vs {}",
            big.raf,
            small.raf
        );
        assert!(big.hit_rate >= small.hit_rate);
    }

    #[test]
    fn fig3_axis_is_log2() {
        for w in FIG3_ALIGNMENTS.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }
}
