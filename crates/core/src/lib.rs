//! # cxlg-core — the paper's contribution
//!
//! GPU graph traversal over external memory, reproduced end to end on the
//! discrete-event hardware models of the sibling crates. The public
//! surface mirrors how the paper's experiments are described:
//!
//! * [`system::SystemConfig`] — a complete machine: GPU, PCIe link
//!   (generation → `W`, `Nmax`), topology, and one external-memory
//!   backend (host DRAM / CXL expanders / XLFDD drives / NVMe SSDs);
//! * [`access`] — the three access methods under study: **EMOGI**
//!   zero-copy (32 B sectors, ≤128 B transactions), **BaM** (software
//!   cache, line = alignment), and **XLFDD-direct** (one small-aligned
//!   request per edge sublist);
//! * [`traversal`] — BFS and SSSP (the paper's workloads) plus PageRank
//!   and connected components (Discussion-section extensions);
//! * [`engine`] — the event-driven execution core in which Equation 2's
//!   three throughput limits (`S·d`, `Nmax·d/L`, `W`) *emerge* from
//!   credits, service rates and link serialization;
//! * [`raf`] — the software-cache read-amplification simulation behind
//!   Figure 3;
//! * [`microbench`] — pointer-chase latency (Fig. 9) and CPU-side CXL
//!   device characterization (Fig. 10);
//! * [`runner`] — rayon-parallel parameter sweeps (each simulation point
//!   is deterministic and single-threaded; sweeps are embarrassingly
//!   parallel).

#![warn(missing_docs)]

pub mod access;
pub mod engine;
pub mod mem;
pub mod metrics;
pub mod microbench;
pub mod raf;
pub mod runner;
pub mod system;
pub mod traversal;
pub mod validate;

pub use access::{AccessMethod, DeviceRequest};
pub use metrics::{LevelStats, RunMetrics, RunReport};
pub use system::{BackendConfig, SystemConfig};
pub use traversal::{Traversal, Workload};
