//! Graph traversal workloads executed against the simulated system.
//!
//! BFS and SSSP are the paper's representative "fine-grained random
//! access" workloads (§2.1, §4): level-synchronous kernels in which each
//! frontier vertex's edge sublist is fetched on demand from external
//! memory. PageRank and connected components are implemented as
//! extensions (the Discussion section contrasts sequential-access
//! algorithms like PageRank with the random-access ones studied here).
//!
//! The algorithm logic is deliberately split from timing: a *trace*
//! generator produces per-level frontiers (pure graph computation), and
//! the timed run feeds those frontiers' sublists through the access
//! method and the DES engine. The RAF simulation (`raf.rs`) reuses the
//! same traces, so Figure 3 and the runtime figures see identical access
//! orders.
//!
//! # Execution paths
//!
//! A run has three stages: trace, request planning, and simulation.
//! Planning is sequential by construction — the access methods are
//! stateful across levels (the BaM cache, UVM fault tracking) — but it
//! is cheap; simulation dominates. On backends that quiesce at the
//! level barrier (DRAM, CXL), [`Traversal::run`] simulates each level's
//! batch as an independent **round shard** across the rayon pool and
//! merges outcomes in level order (see the `engine` module docs for why
//! this is exact); flash-backed backends carry media state across
//! batches and stay on the coupled one-engine chain.
//! [`Traversal::run_reference`] is the sequential oracle with the
//! identical decomposition and dispatch, and [`Traversal::run_coupled`]
//! keeps the legacy chained-batch semantics on every backend; the
//! differential tests pin all three against each other.
//!
//! Within the trace itself, BFS frontier expansion is parallelized
//! (candidate collection against the level-entry `visited` snapshot,
//! ordered concatenation, sort + dedup — provably the same vertex set
//! the sequential mark-as-you-go loop produces). SSSP and CC rounds are
//! Gauss–Seidel: a relaxation made early in a round feeds relaxations
//! later in the same round, so their expansion order is semantic and
//! stays sequential — their determinism across thread counts is the
//! trivial kind.

use crate::access::DeviceRequest;
use crate::engine::{self, ShardOutcome};
use crate::metrics::{LevelStats, RunMetrics, RunReport};
use crate::system::SystemConfig;
use cxlg_graph::layout::EdgeListLayout;
use cxlg_graph::{CsrView, VertexId};
use cxlg_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// Breadth-first search from a source vertex.
    Bfs {
        /// Source vertex.
        source: VertexId,
    },
    /// Single-source shortest path (frontier-based Bellman–Ford, as in
    /// EMOGI) with deterministic integer weights in `[1, max_weight]`.
    Sssp {
        /// Source vertex.
        source: VertexId,
        /// Largest edge weight.
        max_weight: u32,
    },
    /// PageRank-style full-edge-list sweeps (sequential access pattern).
    PageRank {
        /// Number of iterations.
        iterations: u32,
    },
    /// Connected components via label propagation.
    ConnectedComponents,
}

/// A configured traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traversal {
    /// The workload to execute.
    pub workload: Workload,
}

/// Everything the simulation stage needs, produced by the sequential
/// planning stage: one request batch per level plus the trace-derived
/// statistics the engine cannot know.
struct RunPlan {
    /// Per-level device request batches, in level order.
    batches: Vec<Vec<DeviceRequest>>,
    /// Per-level `(frontier size, useful bytes)`.
    level_info: Vec<(u64, u64)>,
    /// Sum of per-level useful bytes (`E` of §3.1).
    total_useful: u64,
    /// Access-method cache hits over the whole run.
    total_hits: u64,
    /// Vertices reached (BFS/SSSP/CC) or processed (PageRank).
    reached: u64,
}

impl Traversal {
    /// BFS from `source`.
    pub fn bfs(source: VertexId) -> Self {
        Traversal {
            workload: Workload::Bfs { source },
        }
    }

    /// SSSP from `source` with the paper-style weight range `[1, 64]`.
    pub fn sssp(source: VertexId) -> Self {
        Traversal {
            workload: Workload::Sssp {
                source,
                max_weight: 64,
            },
        }
    }

    /// PageRank with `iterations` full sweeps.
    pub fn pagerank(iterations: u32) -> Self {
        Traversal {
            workload: Workload::PageRank { iterations },
        }
    }

    /// Connected components.
    pub fn connected_components() -> Self {
        Traversal {
            workload: Workload::ConnectedComponents,
        }
    }

    /// Workload name for reports.
    pub fn name(&self) -> &'static str {
        match self.workload {
            Workload::Bfs { .. } => "bfs",
            Workload::Sssp { .. } => "sssp",
            Workload::PageRank { .. } => "pagerank",
            Workload::ConnectedComponents => "cc",
        }
    }

    /// Generate the per-level vertex frontiers without timing anything.
    /// Each level lists the vertices whose sublists are read, in the
    /// (sorted) order the GPU kernel would process them.
    pub fn trace<G: CsrView + ?Sized>(&self, g: &G) -> Vec<Vec<VertexId>> {
        self.trace_with_reached(g).0
    }

    /// The trace plus the reached/processed vertex count, computed in
    /// one pass (SSSP previously re-ran the whole Bellman–Ford to count
    /// reached vertices).
    fn trace_with_reached<G: CsrView + ?Sized>(&self, g: &G) -> (Vec<Vec<VertexId>>, u64) {
        match self.workload {
            Workload::Bfs { source } => {
                let t = bfs_trace(g, source);
                let reached = t.iter().map(|l| l.len() as u64).sum();
                (t, reached)
            }
            Workload::Sssp { source, max_weight } => sssp_trace_with_reached(g, source, max_weight),
            Workload::PageRank { iterations } => {
                (pagerank_trace(g, iterations), g.num_vertices() as u64)
            }
            Workload::ConnectedComponents => cc_trace(g),
        }
    }

    /// Sequential planning stage: trace the workload, then route every
    /// level's sublist spans through the (stateful) access method to get
    /// per-level request batches.
    fn plan<G: CsrView + ?Sized>(&self, g: &G, sys: &SystemConfig) -> RunPlan {
        let layout = EdgeListLayout::new(g);
        let mut access = sys.build_access(layout.edge_list_bytes());
        let (levels_vertices, reached) = self.trace_with_reached(g);

        let mut batches = Vec::with_capacity(levels_vertices.len());
        let mut level_info = Vec::with_capacity(levels_vertices.len());
        let mut total_useful = 0u64;
        let mut total_hits = 0u64;
        for frontier in &levels_vertices {
            let mut reqs: Vec<DeviceRequest> = Vec::new();
            access.begin_level();
            let mut useful = 0u64;
            for &v in frontier {
                let span = layout.sublist_span(v);
                useful += span.len;
                total_hits += access.requests_for_span(span, &mut reqs);
            }
            total_useful += useful;
            level_info.push((frontier.len() as u64, useful));
            batches.push(reqs);
        }
        RunPlan {
            batches,
            level_info,
            total_useful,
            total_hits,
            reached,
        }
    }

    /// Assemble the report from per-level shard outcomes (in level
    /// order) and the plan's trace statistics.
    fn assemble(&self, plan: RunPlan, outcomes: Vec<ShardOutcome>, sys: &SystemConfig) -> RunReport {
        let levels: Vec<LevelStats> = plan
            .level_info
            .iter()
            .zip(&outcomes)
            .enumerate()
            .map(|(depth, (&(frontier, useful), o))| LevelStats {
                depth: depth as u32,
                frontier,
                useful_bytes: useful,
                fetched_bytes: o.result.fetched_bytes,
                runtime: o.result.end.saturating_since(SimTime::ZERO),
            })
            .collect();
        let mut metrics: RunMetrics = engine::merge_shard_metrics(&outcomes);
        metrics.useful_bytes = plan.total_useful;
        metrics.cache_hits = plan.total_hits;
        RunReport {
            metrics,
            levels,
            reached: plan.reached,
            workload: self.name().to_string(),
            backend: sys.label(),
        }
    }

    /// Run the workload on a simulated system, producing full metrics.
    ///
    /// On backends whose device state quiesces at the level barrier
    /// (DRAM, CXL — see
    /// [`BackendConfig::quiesces_between_batches`][qb]), each level's
    /// batch is simulated as an independent round shard across the rayon
    /// pool and the outcomes are merged in level order — bit-identical
    /// at any `RAYON_NUM_THREADS` *and* bit-identical to the coupled
    /// path. Flash-backed backends (XLFDD, NVMe) carry real media state
    /// between batches (plane page registers, busy timestamps, the
    /// jitter RNG), so resetting it per shard would change the physics;
    /// they stay on the coupled single-engine chain, preserving the
    /// paper-fidelity results exactly. Either way the trace-side
    /// parallelism (BFS frontier expansion) and the identical result at
    /// every worker count hold.
    ///
    /// [qb]: crate::system::BackendConfig::quiesces_between_batches
    pub fn run<G: CsrView + ?Sized>(&self, g: &G, sys: &SystemConfig) -> RunReport {
        if !sys.backend.quiesces_between_batches() {
            return self.run_coupled(g, sys);
        }
        let plan = self.plan(g, sys);
        let outcomes = engine::simulate_shards(|| sys.build_engine(), &plan.batches);
        self.assemble(plan, outcomes, sys)
    }

    /// Sequential reference oracle: the identical decomposition and
    /// merge as [`Traversal::run`] — per-level shards simulated in level
    /// order on the calling thread for quiescent backends, the coupled
    /// chain for flash-backed ones — with no rayon involvement in the
    /// simulation stage. The differential harness pins `run` against
    /// this at several pool sizes.
    pub fn run_reference<G: CsrView + ?Sized>(&self, g: &G, sys: &SystemConfig) -> RunReport {
        if !sys.backend.quiesces_between_batches() {
            return self.run_coupled(g, sys);
        }
        let plan = self.plan(g, sys);
        let outcomes: Vec<ShardOutcome> = plan
            .batches
            .iter()
            .map(|reqs| sys.build_engine().run_shard(reqs))
            .collect();
        self.assemble(plan, outcomes, sys)
    }

    /// Legacy coupled execution: one engine for the whole run, each
    /// batch starting on the clock where the previous one ended. This is
    /// the physics oracle the shard decomposition is validated against —
    /// for backends whose device state quiesces between batches (all but
    /// the flash arrays with their page registers and jitter RNGs),
    /// [`Traversal::run`] must reproduce it bit-for-bit.
    pub fn run_coupled<G: CsrView + ?Sized>(&self, g: &G, sys: &SystemConfig) -> RunReport {
        let plan = self.plan(g, sys);
        let mut engine = sys.build_engine();
        let mut levels = Vec::with_capacity(plan.batches.len());
        let mut t = SimTime::ZERO;
        for (depth, (reqs, &(frontier, useful))) in
            plan.batches.iter().zip(&plan.level_info).enumerate()
        {
            let level_start = t;
            let batch = engine.run_batch(t, reqs);
            t = batch.end;
            levels.push(LevelStats {
                depth: depth as u32,
                frontier,
                useful_bytes: useful,
                fetched_bytes: batch.fetched_bytes,
                runtime: t.saturating_since(level_start),
            });
        }
        let mut metrics: RunMetrics = engine.finish();
        metrics.useful_bytes = plan.total_useful;
        metrics.cache_hits = plan.total_hits;
        metrics.runtime = t.saturating_since(SimTime::ZERO);
        RunReport {
            metrics,
            levels,
            reached: plan.reached,
            workload: self.name().to_string(),
            backend: sys.label(),
        }
    }
}

/// Frontier size above which BFS expansion fans out across the pool.
/// Purely a granularity knob: both paths produce the identical frontier,
/// so the threshold can never affect results, only wall-clock.
const PAR_FRONTIER_MIN: usize = 2048;

/// Level-synchronous BFS frontier trace. Frontiers are sorted by vertex
/// ID, matching GPU kernels that compact the frontier from status arrays.
pub fn bfs_trace<G: CsrView + ?Sized>(g: &G, source: VertexId) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut visited = vec![false; n];
    visited[source as usize] = true;
    let mut frontier = vec![source];
    let mut levels = Vec::new();
    while !frontier.is_empty() {
        let next = expand_bfs_frontier(g, &frontier, &mut visited);
        levels.push(std::mem::replace(&mut frontier, next));
    }
    levels
}

/// The next BFS frontier: every unvisited neighbor of `frontier`, sorted,
/// marked visited on return.
///
/// The parallel path collects candidates against the level-entry
/// `visited` snapshot (read-only), concatenates per-chunk results in
/// chunk order, then sorts and dedups. That set equals the sequential
/// mark-as-you-go set exactly: a vertex is in either iff it is an
/// unvisited neighbor of some frontier vertex, and both outputs are
/// sorted — so the trace is byte-identical at any `RAYON_NUM_THREADS`.
fn expand_bfs_frontier<G: CsrView + ?Sized>(
    g: &G,
    frontier: &[VertexId],
    visited: &mut [bool],
) -> Vec<VertexId> {
    if frontier.len() < PAR_FRONTIER_MIN {
        let mut next = Vec::new();
        for &v in frontier {
            g.for_neighbors(v, &mut |u| {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    next.push(u);
                }
            });
        }
        next.sort_unstable();
        next
    } else {
        use rayon::prelude::*;
        let snapshot: &[bool] = visited;
        // Per-vertex candidate collection through the streaming accessor;
        // chunk order is erased by the sort + dedup below, exactly as in
        // the slice-based path this replaces.
        let per_vertex: Vec<Vec<VertexId>> = frontier
            .par_iter()
            .map(|&v| {
                let mut c = Vec::new();
                g.with_neighbors(v, &mut |w| {
                    c.extend(w.iter().copied().filter(|&u| !snapshot[u as usize]));
                });
                c
            })
            .collect();
        let mut next: Vec<VertexId> = per_vertex.into_iter().flatten().collect();
        next.par_sort_unstable();
        next.dedup();
        for &u in &next {
            visited[u as usize] = true;
        }
        next
    }
}

/// Frontier-based Bellman–Ford rounds: each round reads the sublists of
/// vertices whose distance improved in the previous round.
pub fn sssp_trace<G: CsrView + ?Sized>(g: &G, source: VertexId, max_weight: u32) -> Vec<Vec<VertexId>> {
    sssp_trace_with_reached(g, source, max_weight).0
}

/// [`sssp_trace`] plus the reached-vertex count from the same pass (the
/// final distance array is already in hand when the rounds converge, so
/// counting costs one scan instead of a second full Bellman–Ford).
///
/// Rounds are Gauss–Seidel: a distance lowered early in a round feeds
/// relaxations later in the same round, so the in-round processing order
/// is part of the algorithm's semantics and the expansion stays
/// sequential (see the module docs).
pub fn sssp_trace_with_reached<G: CsrView + ?Sized>(
    g: &G,
    source: VertexId,
    max_weight: u32,
) -> (Vec<Vec<VertexId>>, u64) {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut rounds = Vec::new();
    while !frontier.is_empty() {
        rounds.push(frontier.clone());
        let mut improved = Vec::new();
        for &v in &frontier {
            let dv = dist[v as usize];
            g.for_neighbors(v, &mut |u| {
                let w = g.edge_weight(v, u, max_weight) as u64;
                if dv + w < dist[u as usize] {
                    dist[u as usize] = dv + w;
                    improved.push(u);
                }
            });
        }
        improved.sort_unstable();
        improved.dedup();
        frontier = improved;
    }
    let reached = dist.iter().filter(|&&d| d != u64::MAX).count() as u64;
    (rounds, reached)
}

/// PageRank access trace: every iteration reads every (non-isolated)
/// vertex's sublist in ID order — the sequential pattern the Discussion
/// section contrasts with BFS.
pub fn pagerank_trace<G: CsrView + ?Sized>(g: &G, iterations: u32) -> Vec<Vec<VertexId>> {
    let all: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| g.degree(v) > 0)
        .collect();
    (0..iterations).map(|_| all.clone()).collect()
}

/// Compute PageRank values (damping 0.85) for result validation; the
/// access trace is produced by [`pagerank_trace`].
pub fn pagerank_values<G: CsrView + ?Sized>(g: &G, iterations: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let d = 0.85;
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = (1.0 - d) / n as f64);
        let mut dangling = 0.0;
        for v in 0..n as VertexId {
            let deg = g.degree(v);
            if deg == 0 {
                // cxlg-lint: allow(D4) -- sequential fold in fixed vertex order (0..n); order is structural, pinned by pagerank determinism tests
                dangling += rank[v as usize];
                continue;
            }
            let share = d * rank[v as usize] / deg as f64;
            g.for_neighbors(v, &mut |u| {
                next[u as usize] += share;
            });
        }
        let spread = d * dangling / n as f64;
        next.iter_mut().for_each(|x| *x += spread);
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Label-propagation connected components: returns the per-round frontier
/// trace and the number of components found. Like SSSP, rounds are
/// Gauss–Seidel (labels lowered early in a round propagate within it),
/// so the expansion is sequential by design.
pub fn cc_trace<G: CsrView + ?Sized>(g: &G) -> (Vec<Vec<VertexId>>, u64) {
    let n = g.num_vertices();
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut frontier: Vec<VertexId> = (0..n as VertexId).filter(|&v| g.degree(v) > 0).collect();
    let mut rounds = Vec::new();
    while !frontier.is_empty() {
        rounds.push(frontier.clone());
        let mut changed = Vec::new();
        for &v in &frontier {
            let lv = label[v as usize];
            g.for_neighbors(v, &mut |u| {
                if lv < label[u as usize] {
                    label[u as usize] = lv;
                    changed.push(u);
                }
            });
        }
        changed.sort_unstable();
        changed.dedup();
        frontier = changed;
    }
    let mut roots: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| g.degree(v) > 0)
        .map(|v| label[v as usize])
        .collect();
    roots.sort_unstable();
    roots.dedup();
    // Isolated vertices each count as their own component.
    let components = roots.len() as u64 + g.num_isolated() as u64;
    (rounds, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_graph::spec::GraphSpec;
    use cxlg_graph::Csr;
    use cxlg_link::pcie::PcieGen;

    fn path_graph(n: usize) -> Csr {
        // 0 - 1 - 2 - ... - (n-1), undirected.
        let edges: Vec<(VertexId, VertexId)> =
            (0..n - 1).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        cxlg_graph::builder::csr_from_edges(n, &edges, true, false)
    }

    #[test]
    fn bfs_trace_on_path_has_one_vertex_per_level() {
        let g = path_graph(5);
        let t = bfs_trace(&g, 0);
        assert_eq!(t.len(), 5);
        for (d, level) in t.iter().enumerate() {
            assert_eq!(level, &vec![d as VertexId]);
        }
    }

    #[test]
    fn bfs_trace_counts_match_reachability() {
        let g = GraphSpec::urand(10).seed(3).build();
        let t = bfs_trace(&g, 0);
        let total: usize = t.iter().map(|l| l.len()).sum();
        // urand at degree 32 is connected with overwhelming probability.
        assert_eq!(total, g.num_vertices());
        // Frontiers are sorted and disjoint.
        let mut seen = std::collections::HashSet::new();
        for level in &t {
            assert!(level.windows(2).all(|w| w[0] < w[1]));
            for &v in level {
                assert!(seen.insert(v), "vertex {v} in two levels");
            }
        }
    }

    #[test]
    fn parallel_bfs_expansion_equals_sequential() {
        // Force both expansion paths over the same levels and compare
        // frontiers element-for-element. urand(12) has levels well above
        // and below PAR_FRONTIER_MIN, so both branches are exercised.
        let g = GraphSpec::urand(12).seed(7).build();
        let par = bfs_trace(&g, 0);
        let mut visited = vec![false; g.num_vertices()];
        visited[0] = true;
        let mut frontier = vec![0 as VertexId];
        let mut seq_levels = Vec::new();
        while !frontier.is_empty() {
            seq_levels.push(frontier.clone());
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in g.neighbors(v) {
                    if !visited[u as usize] {
                        visited[u as usize] = true;
                        next.push(u);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        assert!(
            par.iter().any(|l| l.len() >= PAR_FRONTIER_MIN),
            "test graph never hits the parallel expansion path"
        );
        assert_eq!(par, seq_levels);
    }

    #[test]
    fn bfs_frontier_profile_is_hump_shaped() {
        // Table 2's pattern: tiny, growing, huge, then collapsing.
        let g = GraphSpec::urand(12).seed(1).build();
        let t = bfs_trace(&g, 0);
        let sizes: Vec<usize> = t.iter().map(|l| l.len()).collect();
        let peak = *sizes.iter().max().unwrap();
        let peak_idx = sizes.iter().position(|&s| s == peak).unwrap();
        assert!(peak > g.num_vertices() / 4, "peak {peak}");
        assert!(peak_idx > 0 && peak_idx < sizes.len() - 1);
        assert!(sizes[0] == 1);
    }

    #[test]
    fn sssp_visits_at_least_bfs_vertices_and_more_reads() {
        let g = GraphSpec::urand(9).seed(2).build();
        let bfs: usize = bfs_trace(&g, 0).iter().map(|l| l.len()).sum();
        let sssp: usize = sssp_trace(&g, 0, 64).iter().map(|l| l.len()).sum();
        assert!(
            sssp >= bfs,
            "SSSP re-reads should exceed BFS: {sssp} vs {bfs}"
        );
    }

    #[test]
    fn sssp_distances_are_shortest() {
        // On the path graph, every vertex is reachable along the only
        // path, and the trace pass itself now reports the count.
        let g = path_graph(6);
        let (rounds, reached) = sssp_trace_with_reached(&g, 0, 64);
        assert_eq!(reached, 6);
        // The trace and the count come from the same pass.
        let visited: usize = rounds.iter().map(|r| r.len()).sum();
        assert!(visited >= 6);
    }

    #[test]
    fn pagerank_values_sum_to_one() {
        let g = GraphSpec::kron(8).seed(5).build();
        let pr = pagerank_values(&g, 10);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn cc_finds_components() {
        // Two disjoint paths => 2 components (plus no isolated vertices).
        let edges = vec![(0, 1), (1, 2), (3, 4)];
        let g = cxlg_graph::builder::csr_from_edges(5, &edges, true, false);
        let (_, components) = cc_trace(&g);
        assert_eq!(components, 2);
    }

    #[test]
    fn cc_counts_isolated_vertices() {
        let edges = vec![(0, 1)];
        let g = cxlg_graph::builder::csr_from_edges(4, &edges, true, false);
        let (_, components) = cc_trace(&g);
        assert_eq!(components, 3); // {0,1}, {2}, {3}
    }

    #[test]
    fn run_produces_consistent_report() {
        let g = GraphSpec::urand(9).seed(1).build();
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
        let report = Traversal::bfs(0).run(&g, &sys);
        assert_eq!(report.workload, "bfs");
        assert_eq!(report.backend, "host-dram:emogi");
        assert_eq!(report.reached, g.num_vertices() as u64);
        assert!(report.metrics.runtime.as_us_f64() > 0.0);
        // Zero-copy reads cover every useful byte at least once.
        assert!(report.metrics.fetched_bytes >= report.metrics.useful_bytes);
        // E equals the whole edge list for a full BFS.
        assert_eq!(
            report.metrics.useful_bytes,
            g.num_edges() * 8
        );
        // RAF for 32 B alignment on 8 B entries is modest (§3.1).
        let raf = report.metrics.raf();
        assert!((1.0..2.0).contains(&raf), "RAF {raf}");
    }

    #[test]
    fn deterministic_runs() {
        let g = GraphSpec::kron(8).seed(4).build();
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(1.0);
        let a = Traversal::bfs(g.max_degree_vertex().unwrap()).run(&g, &sys);
        let b = Traversal::bfs(g.max_degree_vertex().unwrap()).run(&g, &sys);
        assert_eq!(a.metrics.runtime, b.metrics.runtime);
        assert_eq!(a.metrics.fetched_bytes, b.metrics.fetched_bytes);
    }

    #[test]
    fn sharded_run_matches_coupled_run_exactly_on_memoryless_backends() {
        // The heart of the decomposition argument: on every backend
        // whose device state quiesces at the level barrier (DRAM, CXL,
        // UVM — everything but the flash arrays), the per-level shards
        // merged in level order must reproduce the coupled single-engine
        // run bit-for-bit — including the float fields.
        let g = GraphSpec::kron(9).seed(11).build();
        let src = g.max_degree_vertex().unwrap();
        let systems = [
            SystemConfig::emogi_on_dram(PcieGen::Gen4),
            SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(1.0),
            SystemConfig::uvm_on_dram(PcieGen::Gen4),
        ];
        for sys in &systems {
            for trav in [Traversal::bfs(src), Traversal::sssp(src)] {
                let sharded = trav.run(&g, sys);
                let coupled = trav.run_coupled(&g, sys);
                let label = format!("{} on {}", trav.name(), sys.label());
                assert_eq!(
                    serde_json::to_string(&sharded).unwrap(),
                    serde_json::to_string(&coupled).unwrap(),
                    "sharded vs coupled diverged for {label}"
                );
            }
        }
    }

    #[test]
    fn flash_backed_runs_take_the_coupled_path() {
        // Flash arrays carry real media state across batches (plane page
        // registers, busy timestamps, the jitter RNG), so the dispatch
        // in `run` must route XLFDD and NVMe through the coupled engine
        // — their results stay byte-identical to the pre-shard physics
        // the fidelity bands were validated against.
        let g = GraphSpec::kron(9).seed(11).build();
        let src = g.max_degree_vertex().unwrap();
        for sys in [
            SystemConfig::xlfdd(PcieGen::Gen4, 16),
            SystemConfig::bam_on_nvme(PcieGen::Gen4, 4),
        ] {
            for trav in [Traversal::bfs(src), Traversal::sssp(src)] {
                let run = trav.run(&g, &sys);
                let coupled = trav.run_coupled(&g, &sys);
                assert_eq!(
                    serde_json::to_string(&run).unwrap(),
                    serde_json::to_string(&coupled).unwrap(),
                    "{} on {} left the coupled path",
                    trav.name(),
                    sys.label()
                );
            }
        }
    }

    #[test]
    fn run_reference_is_the_same_decomposition() {
        let g = GraphSpec::urand(9).seed(6).build();
        let trav = Traversal::bfs(0);
        // The oracle mirrors the dispatch: sequential shards on a
        // quiescent backend, the coupled chain on a flash-backed one —
        // either way `run` must agree with it byte-for-byte.
        for sys in [
            SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5),
            SystemConfig::bam_on_nvme(PcieGen::Gen4, 4),
        ] {
            let a = serde_json::to_string(&trav.run(&g, &sys)).unwrap();
            let b = serde_json::to_string(&trav.run_reference(&g, &sys)).unwrap();
            assert_eq!(a, b, "{}", sys.label());
        }
    }

    #[test]
    fn trace_and_run_agree_on_levels() {
        let g = GraphSpec::urand(8).seed(9).build();
        let trav = Traversal::bfs(0);
        let trace = trav.trace(&g);
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
        let report = trav.run(&g, &sys);
        assert_eq!(report.levels.len(), trace.len());
        for (ls, tr) in report.levels.iter().zip(&trace) {
            assert_eq!(ls.frontier, tr.len() as u64);
        }
    }
}
