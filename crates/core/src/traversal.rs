//! Graph traversal workloads executed against the simulated system.
//!
//! BFS and SSSP are the paper's representative "fine-grained random
//! access" workloads (§2.1, §4): level-synchronous kernels in which each
//! frontier vertex's edge sublist is fetched on demand from external
//! memory. PageRank and connected components are implemented as
//! extensions (the Discussion section contrasts sequential-access
//! algorithms like PageRank with the random-access ones studied here).
//!
//! The algorithm logic is deliberately split from timing: a *trace*
//! generator produces per-level frontiers (pure graph computation), and
//! the timed run feeds those frontiers' sublists through the access
//! method and the DES engine. The RAF simulation (`raf.rs`) reuses the
//! same traces, so Figure 3 and the runtime figures see identical access
//! orders.

use crate::access::DeviceRequest;
use crate::metrics::{LevelStats, RunMetrics, RunReport};
use crate::system::SystemConfig;
use cxlg_graph::layout::EdgeListLayout;
use cxlg_graph::{Csr, VertexId};
use cxlg_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// Breadth-first search from a source vertex.
    Bfs {
        /// Source vertex.
        source: VertexId,
    },
    /// Single-source shortest path (frontier-based Bellman–Ford, as in
    /// EMOGI) with deterministic integer weights in `[1, max_weight]`.
    Sssp {
        /// Source vertex.
        source: VertexId,
        /// Largest edge weight.
        max_weight: u32,
    },
    /// PageRank-style full-edge-list sweeps (sequential access pattern).
    PageRank {
        /// Number of iterations.
        iterations: u32,
    },
    /// Connected components via label propagation.
    ConnectedComponents,
}

/// A configured traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traversal {
    /// The workload to execute.
    pub workload: Workload,
}

impl Traversal {
    /// BFS from `source`.
    pub fn bfs(source: VertexId) -> Self {
        Traversal {
            workload: Workload::Bfs { source },
        }
    }

    /// SSSP from `source` with the paper-style weight range `[1, 64]`.
    pub fn sssp(source: VertexId) -> Self {
        Traversal {
            workload: Workload::Sssp {
                source,
                max_weight: 64,
            },
        }
    }

    /// PageRank with `iterations` full sweeps.
    pub fn pagerank(iterations: u32) -> Self {
        Traversal {
            workload: Workload::PageRank { iterations },
        }
    }

    /// Connected components.
    pub fn connected_components() -> Self {
        Traversal {
            workload: Workload::ConnectedComponents,
        }
    }

    /// Workload name for reports.
    pub fn name(&self) -> &'static str {
        match self.workload {
            Workload::Bfs { .. } => "bfs",
            Workload::Sssp { .. } => "sssp",
            Workload::PageRank { .. } => "pagerank",
            Workload::ConnectedComponents => "cc",
        }
    }

    /// Generate the per-level vertex frontiers without timing anything.
    /// Each level lists the vertices whose sublists are read, in the
    /// (sorted) order the GPU kernel would process them.
    pub fn trace(&self, g: &Csr) -> Vec<Vec<VertexId>> {
        match self.workload {
            Workload::Bfs { source } => bfs_trace(g, source),
            Workload::Sssp { source, max_weight } => sssp_trace(g, source, max_weight),
            Workload::PageRank { iterations } => pagerank_trace(g, iterations),
            Workload::ConnectedComponents => cc_trace(g).0,
        }
    }

    /// Run the workload on a simulated system, producing full metrics.
    pub fn run(&self, g: &Csr, sys: &SystemConfig) -> RunReport {
        let layout = EdgeListLayout::new(g);
        let mut engine = sys.build_engine();
        let mut access = sys.build_access(layout.edge_list_bytes());

        let (levels_vertices, reached) = match self.workload {
            Workload::Bfs { source } => {
                let t = bfs_trace(g, source);
                let reached: u64 = t.iter().map(|l| l.len() as u64).sum();
                (t, reached)
            }
            Workload::Sssp { source, max_weight } => {
                let t = sssp_trace(g, source, max_weight);
                let reached = sssp_reached(g, source, max_weight);
                (t, reached)
            }
            Workload::PageRank { iterations } => {
                let t = pagerank_trace(g, iterations);
                (t, g.num_vertices() as u64)
            }
            Workload::ConnectedComponents => {
                let (t, components) = cc_trace(g);
                (t, components)
            }
        };

        let mut levels = Vec::with_capacity(levels_vertices.len());
        let mut t = SimTime::ZERO;
        let mut reqs: Vec<DeviceRequest> = Vec::new();
        let mut total_useful = 0u64;
        let mut total_hits = 0u64;
        for (depth, frontier) in levels_vertices.iter().enumerate() {
            reqs.clear();
            access.begin_level();
            let mut useful = 0u64;
            let mut hits = 0u64;
            for &v in frontier {
                let span = layout.sublist_span(v);
                useful += span.len;
                hits += access.requests_for_span(span, &mut reqs);
            }
            let level_start = t;
            let batch = engine.run_batch(t, &reqs);
            t = batch.end;
            levels.push(LevelStats {
                depth: depth as u32,
                frontier: frontier.len() as u64,
                useful_bytes: useful,
                fetched_bytes: batch.fetched_bytes,
                runtime: t.saturating_since(level_start),
            });
            total_useful += useful;
            total_hits += hits;
        }

        let mut metrics: RunMetrics = engine.finish();
        metrics.useful_bytes = total_useful;
        metrics.cache_hits = total_hits;
        metrics.runtime = t.saturating_since(SimTime::ZERO);

        RunReport {
            metrics,
            levels,
            reached,
            workload: self.name().to_string(),
            backend: sys.label(),
        }
    }
}

/// Level-synchronous BFS frontier trace. Frontiers are sorted by vertex
/// ID, matching GPU kernels that compact the frontier from status arrays.
pub fn bfs_trace(g: &Csr, source: VertexId) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut visited = vec![false; n];
    visited[source as usize] = true;
    let mut frontier = vec![source];
    let mut levels = Vec::new();
    while !frontier.is_empty() {
        levels.push(frontier.clone());
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    next.push(u);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
    }
    levels
}

/// Frontier-based Bellman–Ford rounds: each round reads the sublists of
/// vertices whose distance improved in the previous round.
pub fn sssp_trace(g: &Csr, source: VertexId, max_weight: u32) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut rounds = Vec::new();
    while !frontier.is_empty() {
        rounds.push(frontier.clone());
        let mut improved = Vec::new();
        for &v in &frontier {
            let dv = dist[v as usize];
            for &u in g.neighbors(v) {
                let w = g.edge_weight(v, u, max_weight) as u64;
                if dv + w < dist[u as usize] {
                    dist[u as usize] = dv + w;
                    improved.push(u);
                }
            }
        }
        improved.sort_unstable();
        improved.dedup();
        frontier = improved;
    }
    rounds
}

fn sssp_reached(g: &Csr, source: VertexId, max_weight: u32) -> u64 {
    // Re-derive final distances to count reached vertices.
    let n = g.num_vertices();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        let mut improved = Vec::new();
        for &v in &frontier {
            let dv = dist[v as usize];
            for &u in g.neighbors(v) {
                let w = g.edge_weight(v, u, max_weight) as u64;
                if dv + w < dist[u as usize] {
                    dist[u as usize] = dv + w;
                    improved.push(u);
                }
            }
        }
        improved.sort_unstable();
        improved.dedup();
        frontier = improved;
    }
    dist.iter().filter(|&&d| d != u64::MAX).count() as u64
}

/// PageRank access trace: every iteration reads every (non-isolated)
/// vertex's sublist in ID order — the sequential pattern the Discussion
/// section contrasts with BFS.
pub fn pagerank_trace(g: &Csr, iterations: u32) -> Vec<Vec<VertexId>> {
    let all: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| g.degree(v) > 0)
        .collect();
    (0..iterations).map(|_| all.clone()).collect()
}

/// Compute PageRank values (damping 0.85) for result validation; the
/// access trace is produced by [`pagerank_trace`].
pub fn pagerank_values(g: &Csr, iterations: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let d = 0.85;
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = (1.0 - d) / n as f64);
        let mut dangling = 0.0;
        for v in 0..n as VertexId {
            let deg = g.degree(v);
            if deg == 0 {
                dangling += rank[v as usize];
                continue;
            }
            let share = d * rank[v as usize] / deg as f64;
            for &u in g.neighbors(v) {
                next[u as usize] += share;
            }
        }
        let spread = d * dangling / n as f64;
        next.iter_mut().for_each(|x| *x += spread);
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Label-propagation connected components: returns the per-round frontier
/// trace and the number of components found.
pub fn cc_trace(g: &Csr) -> (Vec<Vec<VertexId>>, u64) {
    let n = g.num_vertices();
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut frontier: Vec<VertexId> = (0..n as VertexId).filter(|&v| g.degree(v) > 0).collect();
    let mut rounds = Vec::new();
    while !frontier.is_empty() {
        rounds.push(frontier.clone());
        let mut changed = Vec::new();
        for &v in &frontier {
            let lv = label[v as usize];
            for &u in g.neighbors(v) {
                if lv < label[u as usize] {
                    label[u as usize] = lv;
                    changed.push(u);
                }
            }
        }
        changed.sort_unstable();
        changed.dedup();
        frontier = changed;
    }
    let mut roots: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| g.degree(v) > 0)
        .map(|v| label[v as usize])
        .collect();
    roots.sort_unstable();
    roots.dedup();
    // Isolated vertices each count as their own component.
    let components = roots.len() as u64 + g.num_isolated() as u64;
    (rounds, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_graph::spec::GraphSpec;
    use cxlg_link::pcie::PcieGen;

    fn path_graph(n: usize) -> Csr {
        // 0 - 1 - 2 - ... - (n-1), undirected.
        let edges: Vec<(VertexId, VertexId)> =
            (0..n - 1).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        cxlg_graph::builder::csr_from_edges(n, &edges, true, false)
    }

    #[test]
    fn bfs_trace_on_path_has_one_vertex_per_level() {
        let g = path_graph(5);
        let t = bfs_trace(&g, 0);
        assert_eq!(t.len(), 5);
        for (d, level) in t.iter().enumerate() {
            assert_eq!(level, &vec![d as VertexId]);
        }
    }

    #[test]
    fn bfs_trace_counts_match_reachability() {
        let g = GraphSpec::urand(10).seed(3).build();
        let t = bfs_trace(&g, 0);
        let total: usize = t.iter().map(|l| l.len()).sum();
        // urand at degree 32 is connected with overwhelming probability.
        assert_eq!(total, g.num_vertices());
        // Frontiers are sorted and disjoint.
        let mut seen = std::collections::HashSet::new();
        for level in &t {
            assert!(level.windows(2).all(|w| w[0] < w[1]));
            for &v in level {
                assert!(seen.insert(v), "vertex {v} in two levels");
            }
        }
    }

    #[test]
    fn bfs_frontier_profile_is_hump_shaped() {
        // Table 2's pattern: tiny, growing, huge, then collapsing.
        let g = GraphSpec::urand(12).seed(1).build();
        let t = bfs_trace(&g, 0);
        let sizes: Vec<usize> = t.iter().map(|l| l.len()).collect();
        let peak = *sizes.iter().max().unwrap();
        let peak_idx = sizes.iter().position(|&s| s == peak).unwrap();
        assert!(peak > g.num_vertices() / 4, "peak {peak}");
        assert!(peak_idx > 0 && peak_idx < sizes.len() - 1);
        assert!(sizes[0] == 1);
    }

    #[test]
    fn sssp_visits_at_least_bfs_vertices_and_more_reads() {
        let g = GraphSpec::urand(9).seed(2).build();
        let bfs: usize = bfs_trace(&g, 0).iter().map(|l| l.len()).sum();
        let sssp: usize = sssp_trace(&g, 0, 64).iter().map(|l| l.len()).sum();
        assert!(
            sssp >= bfs,
            "SSSP re-reads should exceed BFS: {sssp} vs {bfs}"
        );
    }

    #[test]
    fn sssp_distances_are_shortest() {
        // On the path graph, distance to vertex k is the sum of the k
        // edge weights along the only path.
        let g = path_graph(6);
        let reached = sssp_reached(&g, 0, 64);
        assert_eq!(reached, 6);
    }

    #[test]
    fn pagerank_values_sum_to_one() {
        let g = GraphSpec::kron(8).seed(5).build();
        let pr = pagerank_values(&g, 10);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn cc_finds_components() {
        // Two disjoint paths => 2 components (plus no isolated vertices).
        let edges = vec![(0, 1), (1, 2), (3, 4)];
        let g = cxlg_graph::builder::csr_from_edges(5, &edges, true, false);
        let (_, components) = cc_trace(&g);
        assert_eq!(components, 2);
    }

    #[test]
    fn cc_counts_isolated_vertices() {
        let edges = vec![(0, 1)];
        let g = cxlg_graph::builder::csr_from_edges(4, &edges, true, false);
        let (_, components) = cc_trace(&g);
        assert_eq!(components, 3); // {0,1}, {2}, {3}
    }

    #[test]
    fn run_produces_consistent_report() {
        let g = GraphSpec::urand(9).seed(1).build();
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
        let report = Traversal::bfs(0).run(&g, &sys);
        assert_eq!(report.workload, "bfs");
        assert_eq!(report.backend, "host-dram:emogi");
        assert_eq!(report.reached, g.num_vertices() as u64);
        assert!(report.metrics.runtime.as_us_f64() > 0.0);
        // Zero-copy reads cover every useful byte at least once.
        assert!(report.metrics.fetched_bytes >= report.metrics.useful_bytes);
        // E equals the whole edge list for a full BFS.
        assert_eq!(
            report.metrics.useful_bytes,
            g.num_edges() * 8
        );
        // RAF for 32 B alignment on 8 B entries is modest (§3.1).
        let raf = report.metrics.raf();
        assert!((1.0..2.0).contains(&raf), "RAF {raf}");
    }

    #[test]
    fn deterministic_runs() {
        let g = GraphSpec::kron(8).seed(4).build();
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(1.0);
        let a = Traversal::bfs(g.max_degree_vertex().unwrap()).run(&g, &sys);
        let b = Traversal::bfs(g.max_degree_vertex().unwrap()).run(&g, &sys);
        assert_eq!(a.metrics.runtime, b.metrics.runtime);
        assert_eq!(a.metrics.fetched_bytes, b.metrics.fetched_bytes);
    }

    #[test]
    fn trace_and_run_agree_on_levels() {
        let g = GraphSpec::urand(8).seed(9).build();
        let trav = Traversal::bfs(0);
        let trace = trav.trace(&g);
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
        let report = trav.run(&g, &sys);
        assert_eq!(report.levels.len(), trace.len());
        for (ls, tr) in report.levels.iter().zip(&trace) {
            assert_eq!(ls.frontier, tr.len() as u64);
        }
    }
}
