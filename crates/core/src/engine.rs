//! The discrete-event execution core.
//!
//! One [`Engine`] models a GPU kernel's interaction with external memory:
//! a pool of warps issues device requests through a PCIe link with
//! bandwidth `W` and an outstanding-request credit pool `Nmax` (or the
//! storage queue depth for GPU-initiated storage access, §3.2), the
//! backend device computes service times, and responses serialize on the
//! shared return channel. The three throughput limits of Equation 2 —
//! `S·d` (device service), `Nmax·d/L` (Little's Law on credits), and `W`
//! (return-channel serialization) — all *emerge* from this mechanism; the
//! analytical model in `cxlg-model` is validated against it.
//!
//! A traversal runs as a sequence of **batches** (one per BFS level /
//! SSSP round, matching the level-synchronous kernels of EMOGI/BaM); each
//! batch is a list of [`DeviceRequest`]s executed to completion.
//!
//! # Parallel execution model: round shards
//!
//! A batch's requests are **globally coupled**: they contend for one
//! credit pool, serialize in issue order on the request channel, and
//! FIFO-share the return link, so a batch cannot be split across threads
//! without changing the very contention the model exists to measure.
//! What *is* independent is the sequence of batches themselves — each
//! level runs the link to idle before the next one starts (the
//! level-synchronous barrier), so the simulation decomposes exactly at
//! round boundaries. The parallel engine exploits that:
//!
//! * each round's batch becomes one **shard**, simulated on its own
//!   fresh [`Engine`] (its own event queue) starting at `t = 0`
//!   ([`Engine::run_shard`]);
//! * shards are fanned out over the rayon pool by [`simulate_shards`],
//!   whose ordered collect puts results back in round order no matter
//!   which worker ran them;
//! * [`merge_shard_metrics`] reduces the per-shard [`ShardOutcome`]s in
//!   **shard-index order**: simulated times are `u64` picoseconds (sums
//!   and maxes are exact), and the latency [`OnlineStats`] are merged —
//!   never re-streamed — with the fixed fold order making the float
//!   fields bit-identical at any `RAYON_NUM_THREADS`.
//!
//! Because the engine's timing is translation-invariant (every device
//! and link model advances through `max(now, busy_until)` and a drained
//! batch leaves all `busy_until` marks at or before its end), a shard
//! simulated at `t = 0` reproduces, shifted, exactly the timeline it
//! would have produced starting at the previous round's end — so on
//! DRAM- and CXL-backed systems the sharded run is **bit-identical** to
//! the coupled single-engine chain.
//!
//! The flash-backed backends (XLFDD, NVMe) are the exception: their
//! media carries real state across batches — plane page registers (a
//! re-read of the most recently sensed page skips the full `tR`), plane
//! busy timestamps, and the latency-jitter RNG stream — which a fresh
//! per-shard engine would reset, changing the physics. The traversal
//! layer therefore dispatches on
//! [`BackendConfig::quiesces_between_batches`][qb]: quiescent backends
//! take the shard path, flash-backed ones stay on the coupled chain
//! (`Traversal::run_coupled`), keeping their paper-fidelity results
//! byte-identical to the pre-shard engine. The differential suite in
//! `crates/core/tests/parallel_differential.rs` pins all of these
//! equivalences.
//!
//! [qb]: crate::system::BackendConfig::quiesces_between_batches

use crate::access::DeviceRequest;
use crate::metrics::RunMetrics;
use cxlg_device::target::{MemoryTarget, ReadSegment};
use cxlg_gpu::config::GpuConfig;
use cxlg_link::pcie::PcieLinkConfig;
use cxlg_sim::{CreditPool, EventQueue, OnlineStats, SimDuration, SimTime};
use std::collections::VecDeque;

/// How requests travel to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPath {
    /// Load/store memory access (host DRAM, CXL): read TLPs bounded by
    /// the PCIe `Nmax`.
    Memory,
    /// GPU-initiated storage access (BaM / XLFDD): submission-queue
    /// entries fetched by the drive; concurrency bounded by queue depth,
    /// and the SQ fetch adds one extra link round trip.
    Storage {
        /// Bytes per SQ entry crossing the request path.
        entry_bytes: u64,
        /// Completion-notification bytes on the return path (0 = no CQ).
        completion_bytes: u64,
    },
}

/// Engine configuration assembled by `SystemConfig::build_engine`.
pub struct EngineConfig {
    /// GPU warp model.
    pub gpu: GpuConfig,
    /// The GPU's PCIe link.
    pub link: PcieLinkConfig,
    /// Concurrency credits: `Nmax` for memory paths, total queue depth
    /// for storage paths.
    pub credits: u64,
    /// One-way socket penalty for reaching the backend (Fig. 8/9).
    pub socket_penalty: SimDuration,
    /// Request transport semantics.
    pub path: RequestPath,
}

/// Result of executing one batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Simulated completion time of the batch.
    pub end: SimTime,
    /// Bytes fetched from the device in this batch.
    pub fetched_bytes: u64,
    /// Requests executed.
    pub requests: u64,
    /// Per-request latency observations (issue → last byte at GPU).
    pub latency: OnlineStats,
}

enum Ev {
    /// A warp is free and pulls the next work item.
    Warp,
    /// A request arrives at the device.
    DevArrive(u32),
    /// A response segment is ready to enter the return link.
    SegReady {
        req: u32,
        bytes: u64,
    },
    /// A segment finished serializing on the return link.
    SegDone {
        req: u32,
    },
    /// The request's final data arrived at the GPU.
    Complete(u32),
}

impl PartialEq for Ev {
    fn eq(&self, _: &Self) -> bool {
        false // events are never compared for equality by the queue
    }
}
impl Eq for Ev {}

/// The execution core. Owns the backend device and all link state; one
/// engine is used for a whole run so channel/credit state carries across
/// batches.
pub struct Engine {
    cfg: EngineConfig,
    backend: Box<dyn MemoryTarget>,
    credits: CreditPool,
    /// Request-direction channel availability.
    req_next_free: SimTime,
    /// Is a transfer currently serializing on the return link?
    ///
    /// An explicit flag rather than a `next_free` timestamp comparison:
    /// when a segment becomes ready at the exact instant the in-flight
    /// transfer ends, the ready event can be processed before the
    /// completion event, and a timestamp check would wrongly see an idle
    /// link and start a second concurrent transfer.
    ret_inflight: bool,
    /// Segments waiting for the return link, FIFO by ready time.
    ret_queue: VecDeque<(u32, u64)>,
    /// Cumulative bytes pushed over the return link (payload only).
    ret_payload_bytes: u64,
    run_latency: OnlineStats,
    run_requests: u64,
    run_fetched: u64,
    end_of_time: SimTime,
}

impl Engine {
    /// Build an engine over a backend device.
    pub fn new(cfg: EngineConfig, backend: Box<dyn MemoryTarget>) -> Self {
        let credits = CreditPool::new(cfg.credits);
        Engine {
            cfg,
            backend,
            credits,
            req_next_free: SimTime::ZERO,
            ret_inflight: false,
            ret_queue: VecDeque::new(),
            ret_payload_bytes: 0,
            run_latency: OnlineStats::new(),
            run_requests: 0,
            run_fetched: 0,
            end_of_time: SimTime::ZERO,
        }
    }

    /// The backend device (for statistics).
    pub fn backend(&self) -> &dyn MemoryTarget {
        self.backend.as_ref()
    }

    /// Request overhead bytes on the request channel.
    fn request_overhead(&self) -> u64 {
        match self.cfg.path {
            RequestPath::Memory => PcieLinkConfig::REQUEST_TLP_BYTES,
            RequestPath::Storage { entry_bytes, .. } => entry_bytes,
        }
    }

    /// Extra request-path delay (storage pays an additional round trip
    /// for the drive to fetch the SQ entry from GPU BAR memory).
    fn request_extra_delay(&self) -> SimDuration {
        match self.cfg.path {
            RequestPath::Memory => SimDuration::ZERO,
            RequestPath::Storage { .. } => {
                self.cfg.link.propagation() + self.cfg.link.propagation()
            }
        }
    }

    /// Per-segment return-path overhead bytes.
    fn response_overhead(&self) -> u64 {
        match self.cfg.path {
            RequestPath::Memory => PcieLinkConfig::COMPLETION_HEADER_BYTES,
            // The payload DMA carries its own TLP headers; CQ entries (if
            // any) are charged per request on the final segment.
            RequestPath::Storage { .. } => PcieLinkConfig::COMPLETION_HEADER_BYTES,
        }
    }

    /// Execute `requests` starting at `start`; returns when all data has
    /// arrived at the GPU. Requests are handed to warps in order.
    pub fn run_batch(&mut self, start: SimTime, requests: &[DeviceRequest]) -> BatchResult {
        let r = requests.len();
        if r == 0 {
            return BatchResult {
                end: start,
                fetched_bytes: 0,
                requests: 0,
                latency: OnlineStats::new(),
            };
        }
        let mut q: EventQueue<Ev> = EventQueue::with_capacity(1024);
        // The queue clock starts at zero each batch; offset by `start`.
        // We instead schedule everything in absolute time by seeding the
        // first events at `start`.
        let warps = (self.cfg.gpu.active_warps as usize).min(r);
        for _ in 0..warps {
            q.schedule_at(start, Ev::Warp);
        }

        let mut issue_time = vec![SimTime::ZERO; r];
        let mut remaining = vec![0u32; r];
        let mut next_item = 0usize;
        let mut completed = 0usize;
        let mut segs: Vec<ReadSegment> = Vec::with_capacity(8);
        let mut latency = OnlineStats::new();
        let mut end = start;
        let prop = self.cfg.link.propagation();
        let penalty = self.cfg.socket_penalty;
        let req_bw = self.cfg.link.bandwidth();
        let compute = self.cfg.gpu.item_compute();

        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Warp => {
                    if next_item >= r {
                        continue; // no more work; warp retires
                    }
                    let idx = next_item as u32;
                    next_item += 1;
                    if self.credits.try_acquire(now) {
                        self.issue(&mut q, now, idx, requests, &mut issue_time);
                    } else {
                        self.credits.enqueue_waiter(idx as u64);
                    }
                }
                Ev::DevArrive(idx) => {
                    let reqst = requests[idx as usize];
                    segs.clear();
                    self.backend.read(now, reqst.addr, reqst.bytes, &mut segs);
                    remaining[idx as usize] = segs.len() as u32;
                    for s in &segs {
                        // Return-side socket hop happens before the link.
                        q.schedule_at(
                            s.ready + penalty,
                            Ev::SegReady {
                                req: idx,
                                bytes: s.bytes,
                            },
                        );
                    }
                }
                Ev::SegReady { req, bytes } => {
                    if !self.ret_inflight {
                        self.start_return_transfer(&mut q, now, req, bytes);
                    } else {
                        self.ret_queue.push_back((req, bytes));
                    }
                }
                Ev::SegDone { req } => {
                    // Data reaches the GPU after the link propagation.
                    remaining[req as usize] -= 1;
                    if remaining[req as usize] == 0 {
                        q.schedule_at(now + prop, Ev::Complete(req));
                    }
                    if let Some((nreq, nbytes)) = self.ret_queue.pop_front() {
                        self.start_return_transfer(&mut q, now, nreq, nbytes);
                    } else {
                        self.ret_inflight = false;
                    }
                }
                Ev::Complete(idx) => {
                    let lat = now.saturating_since(issue_time[idx as usize]);
                    latency.push(lat.as_us_f64());
                    completed += 1;
                    end = end.max(now);
                    if let Some(waiter) = self.credits.release(now) {
                        self.issue(&mut q, now, waiter as u32, requests, &mut issue_time);
                    }
                    // The freed warp pulls its next item after processing
                    // the fetched edges.
                    q.schedule_at(now + compute, Ev::Warp);
                }
            }
            let _ = req_bw; // silence unused in cfg paths where inlined below
        }
        debug_assert_eq!(completed, r, "batch did not drain");
        debug_assert!(self.ret_queue.is_empty());

        let fetched: u64 = requests.iter().map(|x| x.bytes).sum();
        self.run_fetched += fetched;
        self.run_requests += r as u64;
        self.run_latency.merge(&latency);
        self.end_of_time = end;
        BatchResult {
            end,
            fetched_bytes: fetched,
            requests: r as u64,
            latency,
        }
    }

    fn issue(
        &mut self,
        q: &mut EventQueue<Ev>,
        now: SimTime,
        idx: u32,
        requests: &[DeviceRequest],
        issue_time: &mut [SimTime],
    ) {
        issue_time[idx as usize] = now;
        // Host-side per-request overhead (zero except for UVM page
        // faults), then serialize the request (TLP header or SQ entry)
        // on the request channel and propagate to the device.
        let host = SimDuration::from_ps(requests[idx as usize].overhead_ps);
        let ser = self.cfg.link.bandwidth().transfer_time(self.request_overhead());
        let start = (now + host).max(self.req_next_free);
        let out = start + ser;
        self.req_next_free = out;
        let arrive =
            out + self.cfg.link.propagation() + self.cfg.socket_penalty + self.request_extra_delay();
        q.schedule_at(arrive, Ev::DevArrive(idx));
    }

    fn start_return_transfer(&mut self, q: &mut EventQueue<Ev>, now: SimTime, req: u32, bytes: u64) {
        let ser = self
            .cfg
            .link
            .bandwidth()
            .transfer_time(bytes + self.response_overhead());
        self.ret_inflight = true;
        self.ret_payload_bytes += bytes;
        q.schedule_at(now + ser, Ev::SegDone { req });
    }

    /// Finalize run-level metrics at the end of the last batch.
    pub fn finish(&mut self) -> RunMetrics {
        let end = self.end_of_time;
        RunMetrics {
            runtime: end.saturating_since(SimTime::ZERO),
            useful_bytes: 0, // filled by the traversal layer
            fetched_bytes: self.run_fetched,
            requests: self.run_requests,
            cache_hits: 0, // filled by the traversal layer
            latency: self.run_latency.clone(),
            mean_outstanding: self.credits.mean_in_use(end),
            peak_outstanding: self.credits.high_water(),
        }
    }

    /// The engine's configured credit limit.
    pub fn credit_limit(&self) -> u64 {
        self.cfg.credits
    }

    /// Execute one round shard on this engine: run `requests` as a batch
    /// from `t = 0` and capture everything the shard merge needs. The
    /// engine must be fresh (no prior batches) — each shard owns its
    /// engine, event queue, and backend outright, which is what makes
    /// shards independently simulable.
    pub fn run_shard(&mut self, requests: &[DeviceRequest]) -> ShardOutcome {
        debug_assert_eq!(
            self.run_requests, 0,
            "run_shard requires a fresh engine; reuse couples shards"
        );
        let result = self.run_batch(SimTime::ZERO, requests);
        ShardOutcome {
            outstanding_integral: self.credits.in_use_integral(result.end),
            peak_outstanding: self.credits.high_water(),
            result,
        }
    }
}

/// Everything [`merge_shard_metrics`] needs from one independently
/// simulated round shard. The outstanding-credit measure is carried as
/// the exact integer integral (credit·ps), not a per-shard float mean,
/// so the merged mean is a single division — bit-identical to the
/// coupled engine's, not merely close.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The round's batch result on the shard's own `t = 0` clock.
    pub result: BatchResult,
    /// Exact in-use credit integral over the shard (credit·picoseconds).
    pub outstanding_integral: u128,
    /// Peak outstanding requests within the shard.
    pub peak_outstanding: u64,
}

/// Simulate every round's batch as an independent shard across the rayon
/// pool, returning outcomes in round order. `factory` builds one fresh
/// [`Engine`] per shard (each shard gets its own event queue and backend
/// state). The vendored rayon's ordered collect guarantees the output
/// order — and therefore the downstream merge — is a pure function of
/// `batches`, independent of `RAYON_NUM_THREADS`.
pub fn simulate_shards<F>(factory: F, batches: &[Vec<DeviceRequest>]) -> Vec<ShardOutcome>
where
    F: Fn() -> Engine + Sync,
{
    use rayon::prelude::*;
    batches
        .par_iter()
        .map(|reqs| factory().run_shard(reqs))
        .collect()
}

/// Reduce per-round [`ShardOutcome`]s into run-level [`RunMetrics`],
/// folding in shard-index (= round) order:
///
/// * `runtime`, `fetched_bytes`, `requests` are integer sums — exact and
///   order-independent;
/// * `latency` is [`OnlineStats::merge_ordered`] over the per-shard
///   stats, the same left-to-right fold the coupled engine performs when
///   it merges each batch into `run_latency` — bit-identical to it;
/// * `mean_outstanding` divides the summed integer credit integrals by
///   the summed duration once, reproducing the coupled
///   `CreditPool::mean_in_use` expression exactly;
/// * `peak_outstanding` is the max.
///
/// `useful_bytes` and `cache_hits` are zero here; the traversal layer
/// fills them (they are trace properties, not engine properties).
pub fn merge_shard_metrics(outcomes: &[ShardOutcome]) -> RunMetrics {
    let mut runtime_ps = 0u64;
    let mut fetched = 0u64;
    let mut requests = 0u64;
    let mut peak = 0u64;
    let mut integral = 0u128;
    for o in outcomes {
        runtime_ps += o.result.end.saturating_since(SimTime::ZERO).as_ps();
        fetched += o.result.fetched_bytes;
        requests += o.result.requests;
        peak = peak.max(o.peak_outstanding);
        integral += o.outstanding_integral;
    }
    let latency = OnlineStats::merge_ordered(outcomes.iter().map(|o| &o.result.latency));
    RunMetrics {
        runtime: SimDuration::from_ps(runtime_ps),
        useful_bytes: 0,
        fetched_bytes: fetched,
        requests,
        cache_hits: 0,
        latency,
        mean_outstanding: if runtime_ps == 0 {
            0.0
        } else {
            integral as f64 / runtime_ps as f64
        },
        peak_outstanding: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_device::dram::{HostDram, HostDramConfig};
    use cxlg_link::pcie::PcieGen;

    fn dram_engine(gen: PcieGen, warps: u32) -> Engine {
        let link = PcieLinkConfig::x16(gen);
        let cfg = EngineConfig {
            gpu: GpuConfig::default().with_active_warps(warps),
            credits: link.nmax(),
            link,
            socket_penalty: SimDuration::ZERO,
            path: RequestPath::Memory,
        };
        Engine::new(cfg, Box::new(HostDram::new(HostDramConfig::default())))
    }

    fn uniform_requests(n: usize, bytes: u64) -> Vec<DeviceRequest> {
        (0..n)
            .map(|i| DeviceRequest {
                addr: (i as u64) * 4096,
                bytes, overhead_ps: 0 })
            .collect()
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut e = dram_engine(PcieGen::Gen4, 2048);
        let r = e.run_batch(SimTime(123), &[]);
        assert_eq!(r.end, SimTime(123));
        assert_eq!(r.requests, 0);
    }

    #[test]
    fn single_request_latency_matches_fig9_host_dram() {
        // One 128 B zero-copy read to host DRAM: ~0.8 us link round trip
        // + 0.3 us DRAM ≈ 1.1 us (Fig. 9 shows "1+ usec").
        let mut e = dram_engine(PcieGen::Gen4, 1);
        let r = e.run_batch(SimTime::ZERO, &uniform_requests(1, 128));
        let lat = r.latency.mean();
        assert!((1.05..1.25).contains(&lat), "latency {lat} us");
    }

    #[test]
    fn saturated_dram_run_hits_link_bandwidth() {
        // 2048 warps, 768 credits, tiny latency => the return channel is
        // the bottleneck; throughput must approach W = 24,000 MB/s.
        let mut e = dram_engine(PcieGen::Gen4, 2048);
        let reqs = uniform_requests(50_000, 128);
        let r = e.run_batch(SimTime::ZERO, &reqs);
        let mb_s = (50_000u64 * 128) as f64 / 1e6 / r.end.as_secs_f64();
        assert!(mb_s > 0.85 * 24_000.0, "throughput {mb_s} MB/s");
        assert!(mb_s <= 24_000.0 * 1.01, "throughput {mb_s} exceeds W");
    }

    #[test]
    fn gen3_halves_throughput() {
        let run = |gen| {
            let mut e = dram_engine(gen, 2048);
            let reqs = uniform_requests(30_000, 128);
            let r = e.run_batch(SimTime::ZERO, &reqs);
            (30_000u64 * 128) as f64 / 1e6 / r.end.as_secs_f64()
        };
        let g4 = run(PcieGen::Gen4);
        let g3 = run(PcieGen::Gen3);
        let ratio = g4 / g3;
        assert!((ratio - 2.0).abs() < 0.2, "Gen4/Gen3 ratio {ratio}");
    }

    #[test]
    fn littles_law_emerges() {
        // With ample warps and latency L, outstanding N ~= T * L / d
        // (Equation 3).
        let mut e = dram_engine(PcieGen::Gen4, 2048);
        let reqs = uniform_requests(40_000, 128);
        let r = e.run_batch(SimTime::ZERO, &reqs);
        let m = e.finish();
        let t_bytes_per_us = (40_000u64 * 128) as f64 / r.end.as_us_f64();
        let n_predicted = t_bytes_per_us * m.latency.mean() / 128.0;
        let n_measured = m.mean_outstanding;
        let err = (n_predicted - n_measured).abs() / n_measured;
        assert!(err < 0.15, "Little's law off by {err}: {n_predicted} vs {n_measured}");
    }

    #[test]
    fn credit_pool_bounds_outstanding() {
        let mut e = dram_engine(PcieGen::Gen3, 2048);
        let reqs = uniform_requests(20_000, 128);
        e.run_batch(SimTime::ZERO, &reqs);
        let m = e.finish();
        assert!(m.peak_outstanding <= 256, "peak {}", m.peak_outstanding);
        // And the workload is intense enough to actually hit the cap.
        assert_eq!(m.peak_outstanding, 256);
    }

    #[test]
    fn single_warp_serializes_requests() {
        // One warp = dependent loads: runtime ~= n * (latency + compute).
        let mut e = dram_engine(PcieGen::Gen4, 1);
        let n = 100;
        let r = e.run_batch(SimTime::ZERO, &uniform_requests(n, 128));
        let per_req = r.end.as_us_f64() / n as f64;
        assert!((1.0..1.4).contains(&per_req), "per-request {per_req} us");
    }

    #[test]
    fn batches_accumulate_into_run_metrics() {
        let mut e = dram_engine(PcieGen::Gen4, 256);
        let r1 = e.run_batch(SimTime::ZERO, &uniform_requests(100, 128));
        let r2 = e.run_batch(r1.end, &uniform_requests(200, 64));
        assert!(r2.end > r1.end);
        let m = e.finish();
        assert_eq!(m.requests, 300);
        assert_eq!(m.fetched_bytes, 100 * 128 + 200 * 64);
        assert_eq!(m.latency.count(), 300);
    }

    #[test]
    fn more_warps_do_not_help_beyond_credits() {
        // §3.5.2: GPU concurrency (>= 2048) is not the limit; credits are.
        let run = |warps| {
            let mut e = dram_engine(PcieGen::Gen4, warps);
            let r = e.run_batch(SimTime::ZERO, &uniform_requests(20_000, 128));
            r.end.as_us_f64()
        };
        let t2048 = run(2048);
        let t3072 = run(3072);
        assert!((t2048 - t3072).abs() / t2048 < 0.02);
    }

    /// A batch schedule with empty, tiny, and saturating rounds — the
    /// shapes a BFS level sequence actually produces.
    fn shard_batches() -> Vec<Vec<DeviceRequest>> {
        vec![
            uniform_requests(1, 128),
            uniform_requests(3_000, 64),
            Vec::new(),
            uniform_requests(500, 4096),
            uniform_requests(7, 128),
        ]
    }

    #[test]
    fn sharded_batches_match_coupled_engine_bit_for_bit() {
        let batches = shard_batches();
        let mut coupled = dram_engine(PcieGen::Gen4, 512);
        let mut t = SimTime::ZERO;
        for b in &batches {
            t = coupled.run_batch(t, b).end;
        }
        let cm = coupled.finish();

        let outcomes = simulate_shards(|| dram_engine(PcieGen::Gen4, 512), &batches);
        let sm = merge_shard_metrics(&outcomes);
        assert_eq!(sm.runtime, cm.runtime);
        assert_eq!(sm.fetched_bytes, cm.fetched_bytes);
        assert_eq!(sm.requests, cm.requests);
        assert_eq!(sm.peak_outstanding, cm.peak_outstanding);
        // Float fields must match to the bit, not within a tolerance:
        // the latency stats are the same fixed-order Welford fold, and
        // the outstanding mean is the same single division.
        assert_eq!(sm.latency.fingerprint(), cm.latency.fingerprint());
        assert_eq!(
            sm.mean_outstanding.to_bits(),
            cm.mean_outstanding.to_bits()
        );
    }

    #[test]
    fn flash_media_state_breaks_the_shard_decomposition() {
        // Two identical batches re-reading the same addresses: coupled,
        // the second batch hits the plane page registers (a register
        // read instead of a full `tR` sense) and continues the jitter
        // RNG stream; sharded, each fresh engine has forgotten both.
        // This divergence is exactly why the traversal layer keeps
        // flash-backed systems on the coupled chain.
        let sys = crate::system::SystemConfig::xlfdd(PcieGen::Gen4, 16);
        let batches = vec![uniform_requests(64, 128), uniform_requests(64, 128)];
        let mut coupled = sys.build_engine();
        let mut t = SimTime::ZERO;
        for b in &batches {
            t = coupled.run_batch(t, b).end;
        }
        let cm = coupled.finish();
        let sm = merge_shard_metrics(&simulate_shards(|| sys.build_engine(), &batches));
        assert_eq!(sm.requests, cm.requests);
        assert_eq!(sm.fetched_bytes, cm.fetched_bytes);
        assert_ne!(
            sm.runtime, cm.runtime,
            "flash no longer carries cross-batch state; the traversal \
             dispatch (and this test) can be retired"
        );
    }

    #[test]
    fn shard_merge_is_thread_count_invariant() {
        let batches = shard_batches();
        let run = |threads: usize| {
            rayon::with_num_threads(threads, || {
                merge_shard_metrics(&simulate_shards(
                    || dram_engine(PcieGen::Gen4, 512),
                    &batches,
                ))
            })
        };
        let reference = run(1);
        for threads in [2, 8] {
            let m = run(threads);
            assert_eq!(m.runtime, reference.runtime, "threads={threads}");
            assert_eq!(m.latency.fingerprint(), reference.latency.fingerprint());
            assert_eq!(
                m.mean_outstanding.to_bits(),
                reference.mean_outstanding.to_bits()
            );
        }
    }

    #[test]
    fn merge_of_no_shards_is_empty() {
        let m = merge_shard_metrics(&[]);
        assert_eq!(m.runtime, SimDuration::ZERO);
        assert_eq!(m.requests, 0);
        assert_eq!(m.mean_outstanding, 0.0);
    }

    #[test]
    fn fewer_warps_than_credits_limits_throughput() {
        let run = |warps| {
            let mut e = dram_engine(PcieGen::Gen4, warps);
            let r = e.run_batch(SimTime::ZERO, &uniform_requests(20_000, 128));
            r.end.as_us_f64()
        };
        let t_few = run(64);
        let t_many = run(2048);
        assert!(
            t_few > 2.0 * t_many,
            "64 warps should be much slower: {t_few} vs {t_many}"
        );
    }
}
