//! Whole-system configuration: one GPU + link + topology + external
//! memory backend + access method, with presets for every configuration
//! the paper evaluates.

use crate::access::AccessMethod;
use crate::engine::{Engine, EngineConfig, RequestPath};
use cxlg_device::cxl_mem::{CxlMemConfig, CxlMemDevice};
use cxlg_device::dram::{HostDram, HostDramConfig};
use cxlg_device::interleave::{DeviceArray, Interleave};
use cxlg_device::nvme::{NvmeConfig, NvmeSsd};
use cxlg_device::xlfdd::{XlfddConfig, XlfddDrive};
use cxlg_gpu::bar::SubmissionQueueModel;
use cxlg_gpu::config::GpuConfig;
use cxlg_link::pcie::{PcieGen, PcieLinkConfig};
use cxlg_link::topology::{DevicePlacement, Topology};
use serde::{Deserialize, Serialize};

/// Which external memory backs the edge list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackendConfig {
    /// Host DRAM (EMOGI's native target).
    HostDram {
        /// DRAM parameters.
        dram: HostDramConfig,
        /// Socket placement (DRAM 0 vs DRAM 1 in Fig. 8).
        placement: DevicePlacement,
    },
    /// CXL memory expanders (the §4.2 prototype), page-interleaved.
    CxlMem {
        /// Per-device parameters (including the added latency).
        dev: CxlMemConfig,
        /// Number of devices (the paper uses 5).
        devices: u32,
        /// Interleave granularity (4 kB NUMA pages).
        interleave_bytes: u64,
        /// Socket placement.
        placement: DevicePlacement,
    },
    /// XLFDD microsecond-flash drives (§4.1), striped.
    Xlfdd {
        /// Per-drive parameters.
        dev: XlfddConfig,
        /// Number of drives (the paper uses 16).
        drives: u32,
        /// Stripe granularity.
        interleave_bytes: u64,
    },
    /// Conventional NVMe SSDs (BaM's storage), striped.
    Nvme {
        /// Per-drive parameters.
        dev: NvmeConfig,
        /// Number of drives (BaM uses 4).
        drives: u32,
        /// Stripe granularity.
        interleave_bytes: u64,
    },
}

impl BackendConfig {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackendConfig::HostDram { .. } => "host-dram",
            BackendConfig::CxlMem { .. } => "cxl-mem",
            BackendConfig::Xlfdd { .. } => "xlfdd",
            BackendConfig::Nvme { .. } => "nvme",
        }
    }

    /// Whether the device carries no state across a drained batch — true
    /// for DRAM and CXL memory (busy-until timestamps only, all at or
    /// before the batch end), false for the flash-backed targets whose
    /// media keeps plane page registers, plane busy times, and a latency
    /// jitter RNG between batches. Quiescent backends are exactly the
    /// ones the round-shard decomposition reproduces bit-for-bit
    /// (`cxlg_core::engine` module docs); the traversal layer dispatches
    /// on this.
    pub fn quiesces_between_batches(&self) -> bool {
        match self {
            BackendConfig::HostDram { .. } | BackendConfig::CxlMem { .. } => true,
            BackendConfig::Xlfdd { .. } | BackendConfig::Nvme { .. } => false,
        }
    }
}

/// How the GPU turns sublist reads into device requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessConfig {
    /// EMOGI zero-copy (memory backends).
    ZeroCopy,
    /// BaM software cache with line size `line_bytes` and optional
    /// explicit capacity (default: a quarter of the edge list, modelling
    /// a GPU-memory cache smaller than the graph).
    SoftwareCache {
        /// Cache line size = device access alignment.
        line_bytes: u64,
        /// Capacity override in bytes.
        capacity_bytes: Option<u64>,
    },
    /// XLFDD-direct whole-sublist reads at the given alignment.
    Direct {
        /// Request address alignment.
        alignment: u64,
    },
    /// Unified-virtual-memory paging (the pre-EMOGI baseline, §6), with
    /// an optional residency budget (default: a quarter of the edge
    /// list, like the BaM cache default).
    Uvm {
        /// GPU memory devoted to migrated pages.
        resident_bytes: Option<u64>,
    },
}

/// A complete simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// GPU parameters.
    pub gpu: GpuConfig,
    /// The GPU's PCIe link.
    pub link: PcieLinkConfig,
    /// Socket topology.
    pub topology: Topology,
    /// External memory backend.
    pub backend: BackendConfig,
    /// Access method.
    pub access: AccessConfig,
}

impl SystemConfig {
    /// EMOGI on host DRAM attached to the GPU's socket — the baseline
    /// every figure normalizes against.
    pub fn emogi_on_dram(gen: PcieGen) -> Self {
        SystemConfig {
            gpu: GpuConfig::default(),
            link: PcieLinkConfig::x16(gen),
            topology: Topology::default(),
            backend: BackendConfig::HostDram {
                dram: HostDramConfig::default(),
                placement: DevicePlacement::near(),
            },
            access: AccessConfig::ZeroCopy,
        }
    }

    /// UVM paging on host DRAM — the Related-Work baseline that EMOGI's
    /// zero-copy access replaces.
    pub fn uvm_on_dram(gen: PcieGen) -> Self {
        SystemConfig {
            gpu: GpuConfig::default(),
            link: PcieLinkConfig::x16(gen),
            topology: Topology::default(),
            backend: BackendConfig::HostDram {
                dram: HostDramConfig::default(),
                placement: DevicePlacement::near(),
            },
            access: AccessConfig::Uvm {
                resident_bytes: None,
            },
        }
    }

    /// EMOGI on `devices` CXL memory expanders (§4.2.3 uses Gen3 + 5
    /// devices so the PCIe link, not the prototype, is the concurrency
    /// bottleneck).
    pub fn emogi_on_cxl(gen: PcieGen, devices: u32) -> Self {
        SystemConfig {
            gpu: GpuConfig::default(),
            link: PcieLinkConfig::x16(gen),
            topology: Topology::default(),
            backend: BackendConfig::CxlMem {
                dev: CxlMemConfig::default(),
                devices,
                interleave_bytes: 4096,
                placement: DevicePlacement::near(),
            },
            access: AccessConfig::ZeroCopy,
        }
    }

    /// BaM on NVMe SSDs with a 4 kB software cache line (§3.3.2).
    pub fn bam_on_nvme(gen: PcieGen, drives: u32) -> Self {
        SystemConfig {
            gpu: GpuConfig::default(),
            link: PcieLinkConfig::x16(gen),
            topology: Topology::default(),
            backend: BackendConfig::Nvme {
                dev: NvmeConfig::default(),
                drives,
                interleave_bytes: 4096,
            },
            access: AccessConfig::SoftwareCache {
                line_bytes: 4096,
                capacity_bytes: None,
            },
        }
    }

    /// The XLFDD system of §4.1: 16 drives, direct access at 16 B.
    pub fn xlfdd(gen: PcieGen, drives: u32) -> Self {
        SystemConfig {
            gpu: GpuConfig::default(),
            link: PcieLinkConfig::x16(gen),
            topology: Topology::default(),
            backend: BackendConfig::Xlfdd {
                dev: XlfddConfig::default(),
                drives,
                interleave_bytes: 4096,
            },
            access: AccessConfig::Direct { alignment: 16 },
        }
    }

    /// Adjust the CXL latency bridge (no-op for other backends).
    pub fn with_added_latency_us(mut self, us: f64) -> Self {
        if let BackendConfig::CxlMem { dev, .. } = &mut self.backend {
            *dev = dev.with_added_latency_us(us);
        }
        self
    }

    /// Override the access alignment: for `Direct` and `SoftwareCache`
    /// methods this is the Fig. 5 sweep variable.
    pub fn with_alignment(mut self, alignment: u64) -> Self {
        match &mut self.access {
            AccessConfig::ZeroCopy | AccessConfig::Uvm { .. } => {}
            AccessConfig::SoftwareCache { line_bytes, .. } => *line_bytes = alignment,
            AccessConfig::Direct { alignment: a } => *a = alignment,
        }
        self
    }

    /// Override the active warp count (ablation).
    pub fn with_active_warps(mut self, warps: u32) -> Self {
        self.gpu = self.gpu.with_active_warps(warps);
        self
    }

    /// Place the backend on the far socket (Fig. 9's DRAM 0 / CXL 0).
    pub fn on_far_socket(mut self) -> Self {
        match &mut self.backend {
            BackendConfig::HostDram { placement, .. }
            | BackendConfig::CxlMem { placement, .. } => *placement = DevicePlacement::far(),
            _ => {}
        }
        self
    }

    /// Human-readable label.
    pub fn label(&self) -> String {
        format!("{}:{}", self.backend.name(), self.access_name())
    }

    fn access_name(&self) -> &'static str {
        match self.access {
            AccessConfig::ZeroCopy => "emogi",
            AccessConfig::SoftwareCache { .. } => "bam",
            AccessConfig::Direct { .. } => "direct",
            AccessConfig::Uvm { .. } => "uvm",
        }
    }

    /// Concurrency credits for the engine: PCIe `Nmax` for memory
    /// backends, aggregate queue depth for storage (§3.2).
    pub fn credits(&self) -> u64 {
        match &self.backend {
            BackendConfig::HostDram { .. } | BackendConfig::CxlMem { .. } => self.link.nmax(),
            BackendConfig::Xlfdd { drives, .. } => {
                SubmissionQueueModel::xlfdd().total_depth(*drives)
            }
            BackendConfig::Nvme { drives, .. } => {
                SubmissionQueueModel::nvme().total_depth(*drives)
            }
        }
    }

    /// Build the execution engine (device instances + link state).
    pub fn build_engine(&self) -> Engine {
        let (backend, path, placement): (Box<dyn cxlg_device::target::MemoryTarget>, _, _) =
            match &self.backend {
                BackendConfig::HostDram { dram, placement } => (
                    Box::new(HostDram::new(*dram)),
                    RequestPath::Memory,
                    Some(*placement),
                ),
                BackendConfig::CxlMem {
                    dev,
                    devices,
                    interleave_bytes,
                    placement,
                } => {
                    let devs: Vec<CxlMemDevice> =
                        (0..*devices).map(|_| CxlMemDevice::new(*dev)).collect();
                    (
                        Box::new(DeviceArray::new(
                            devs,
                            Interleave::new(*interleave_bytes, *devices),
                        )),
                        RequestPath::Memory,
                        Some(*placement),
                    )
                }
                BackendConfig::Xlfdd {
                    dev,
                    drives,
                    interleave_bytes,
                } => {
                    let sq = SubmissionQueueModel::xlfdd();
                    let devs: Vec<XlfddDrive> = (0..*drives)
                        .map(|i| XlfddDrive::new(*dev, i as u64 + 1))
                        .collect();
                    (
                        Box::new(DeviceArray::new(
                            devs,
                            Interleave::new(*interleave_bytes, *drives),
                        )),
                        RequestPath::Storage {
                            entry_bytes: sq.entry_bytes,
                            completion_bytes: sq.completion_bytes,
                        },
                        None,
                    )
                }
                BackendConfig::Nvme {
                    dev,
                    drives,
                    interleave_bytes,
                } => {
                    let sq = SubmissionQueueModel::nvme();
                    let devs: Vec<NvmeSsd> = (0..*drives)
                        .map(|i| NvmeSsd::new(*dev, i as u64 + 1))
                        .collect();
                    (
                        Box::new(DeviceArray::new(
                            devs,
                            Interleave::new(*interleave_bytes, *drives),
                        )),
                        RequestPath::Storage {
                            entry_bytes: sq.entry_bytes,
                            completion_bytes: sq.completion_bytes,
                        },
                        None,
                    )
                }
            };
        let socket_penalty = placement
            .map(|p| self.topology.socket_penalty(p))
            .unwrap_or(cxlg_sim::SimDuration::ZERO);
        Engine::new(
            EngineConfig {
                gpu: self.gpu,
                link: self.link,
                credits: self.credits(),
                socket_penalty,
                path,
            },
            backend,
        )
    }

    /// Build the access method. `edge_list_bytes` sizes the default BaM
    /// cache (a quarter of the edge list).
    pub fn build_access(&self, edge_list_bytes: u64) -> AccessMethod {
        match self.access {
            AccessConfig::ZeroCopy => AccessMethod::emogi(),
            AccessConfig::SoftwareCache {
                line_bytes,
                capacity_bytes,
            } => {
                let capacity =
                    capacity_bytes.unwrap_or((edge_list_bytes / 4).max(line_bytes * 64));
                AccessMethod::bam(capacity, line_bytes)
            }
            AccessConfig::Direct { alignment } => AccessMethod::xlfdd_direct(alignment),
            AccessConfig::Uvm { resident_bytes } => {
                let resident = resident_bytes.unwrap_or((edge_list_bytes / 4).max(4096 * 256));
                AccessMethod::uvm(resident)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_credit_limits() {
        assert_eq!(SystemConfig::emogi_on_dram(PcieGen::Gen4).credits(), 768);
        assert_eq!(SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).credits(), 256);
        // Storage concurrency comes from queue depth, not Nmax.
        assert!(SystemConfig::xlfdd(PcieGen::Gen4, 16).credits() > 768);
        assert!(SystemConfig::bam_on_nvme(PcieGen::Gen4, 4).credits() > 768);
    }

    #[test]
    fn added_latency_applies_to_cxl_only() {
        let cxl = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(2.0);
        match cxl.backend {
            BackendConfig::CxlMem { dev, .. } => {
                assert!((dev.added_latency().as_us_f64() - 2.0).abs() < 1e-9)
            }
            _ => panic!("wrong backend"),
        }
        // No-op on DRAM.
        let dram = SystemConfig::emogi_on_dram(PcieGen::Gen4).with_added_latency_us(2.0);
        assert!(matches!(dram.backend, BackendConfig::HostDram { .. }));
    }

    #[test]
    fn alignment_override_applies_to_direct_and_bam() {
        let x = SystemConfig::xlfdd(PcieGen::Gen4, 16).with_alignment(256);
        assert!(matches!(x.access, AccessConfig::Direct { alignment: 256 }));
        let b = SystemConfig::bam_on_nvme(PcieGen::Gen4, 4).with_alignment(512);
        assert!(matches!(
            b.access,
            AccessConfig::SoftwareCache {
                line_bytes: 512,
                ..
            }
        ));
        // Zero-copy alignment is fixed by the GPU architecture.
        let e = SystemConfig::emogi_on_dram(PcieGen::Gen4).with_alignment(64);
        assert!(matches!(e.access, AccessConfig::ZeroCopy));
    }

    #[test]
    fn engines_build_for_all_backends() {
        for sys in [
            SystemConfig::emogi_on_dram(PcieGen::Gen4),
            SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5),
            SystemConfig::bam_on_nvme(PcieGen::Gen4, 4),
            SystemConfig::xlfdd(PcieGen::Gen4, 16),
        ] {
            let e = sys.build_engine();
            assert_eq!(e.credit_limit(), sys.credits());
        }
    }

    #[test]
    fn bam_cache_defaults_to_quarter_of_edge_list() {
        let sys = SystemConfig::bam_on_nvme(PcieGen::Gen4, 4);
        let access = sys.build_access(400 << 20);
        match access {
            crate::access::AccessMethod::SoftwareCache { cache } => {
                assert_eq!(cache.config().capacity_bytes, 100 << 20);
                assert_eq!(cache.config().line_bytes, 4096);
            }
            _ => panic!("expected software cache"),
        }
    }

    #[test]
    fn far_socket_placement() {
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4).on_far_socket();
        match sys.backend {
            BackendConfig::HostDram { placement, .. } => {
                assert_eq!(placement, DevicePlacement::far())
            }
            _ => panic!(),
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            SystemConfig::emogi_on_dram(PcieGen::Gen4).label(),
            "host-dram:emogi"
        );
        assert_eq!(SystemConfig::xlfdd(PcieGen::Gen4, 16).label(), "xlfdd:direct");
        assert_eq!(
            SystemConfig::bam_on_nvme(PcieGen::Gen4, 4).label(),
            "nvme:bam"
        );
    }
}
