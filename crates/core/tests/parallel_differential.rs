//! Differential harness for the round-shard parallel engine.
//!
//! Three equivalences pin the decomposition (see the `engine` module
//! docs for why they hold):
//!
//! 1. **Parallel vs oracle** — [`Traversal::run`] must match the
//!    sequential reference [`Traversal::run_reference`] byte-for-byte at
//!    every worker count, on *every* backend (the oracle mirrors `run`'s
//!    dispatch: sequential round shards on quiescent backends, the
//!    coupled chain on flash-backed ones).
//! 2. **Sharded vs coupled** — on backends whose device state quiesces
//!    at the level barrier (DRAM, CXL, UVM), `run` must also match the
//!    legacy one-engine [`Traversal::run_coupled`] physics oracle
//!    bit-for-bit.
//! 3. **Tamper detection** — corrupting one shard's `OnlineStats`
//!    before the merge must change the merged latency fingerprint, so a
//!    buggy (e.g. reordered or lossy) merge cannot silently pass the
//!    differential suite.

use cxlg_core::access::DeviceRequest;
use cxlg_core::engine;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_graph::spec::GraphSpec;
use cxlg_link::pcie::PcieGen;
use cxlg_sim::OnlineStats;
use proptest::prelude::*;

/// Worker counts the parallel path is exercised at: undersubscribed,
/// matched, and oversubscribed for any CI machine.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The graph family axis of the property sweep.
fn family(pick: u8, scale: u32, seed: u64) -> GraphSpec {
    match pick % 3 {
        0 => GraphSpec::urand(scale).seed(seed),
        1 => GraphSpec::kron(scale).seed(seed),
        _ => GraphSpec::friendster_like(scale).seed(seed),
    }
}

/// The system axis: every access method and backend class, including
/// the stochastic flash-backed ones.
fn any_system(pick: u8) -> SystemConfig {
    match pick % 5 {
        0 => SystemConfig::emogi_on_dram(PcieGen::Gen4),
        1 => SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(1.0),
        2 => SystemConfig::uvm_on_dram(PcieGen::Gen4),
        3 => SystemConfig::bam_on_nvme(PcieGen::Gen4, 4),
        _ => SystemConfig::xlfdd(PcieGen::Gen4, 16),
    }
}

/// Systems whose backend carries no cross-batch device state — the ones
/// the coupled physics oracle must match exactly.
fn quiescent_system(pick: u8) -> SystemConfig {
    match pick % 3 {
        0 => SystemConfig::emogi_on_dram(PcieGen::Gen4),
        1 => SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(0.5),
        _ => SystemConfig::uvm_on_dram(PcieGen::Gen4),
    }
}

fn workload(pick: u8, g: &cxlg_graph::Csr) -> Traversal {
    let src = g.max_degree_vertex().unwrap();
    match pick % 3 {
        0 => Traversal::bfs(src),
        1 => Traversal::sssp(src),
        _ => Traversal::connected_components(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_run_equals_sequential_oracle_at_any_worker_count(
        fam in 0u8..3,
        scale in 7u32..10,
        seed in 0u64..1_000_000,
        sys_pick in 0u8..5,
        work_pick in 0u8..3,
    ) {
        let g = family(fam, scale, seed).build();
        let trav = workload(work_pick, &g);
        let sys = any_system(sys_pick);
        let oracle = rayon::with_num_threads(1, || trav.run_reference(&g, &sys));
        let oracle_bytes = serde_json::to_string(&oracle).unwrap();
        for workers in WORKER_COUNTS {
            let got = rayon::with_num_threads(workers, || trav.run(&g, &sys));
            assert_eq!(
                serde_json::to_string(&got).unwrap(),
                oracle_bytes,
                "{} on {} diverged from the oracle at {workers} workers",
                trav.name(),
                sys.label(),
            );
        }
    }

    #[test]
    fn sharded_run_equals_coupled_oracle_on_quiescent_backends(
        fam in 0u8..3,
        scale in 7u32..10,
        seed in 0u64..1_000_000,
        sys_pick in 0u8..3,
        work_pick in 0u8..2,
    ) {
        let g = family(fam, scale, seed).build();
        let trav = workload(work_pick, &g);
        let sys = quiescent_system(sys_pick);
        let coupled = trav.run_coupled(&g, &sys);
        let sharded = trav.run(&g, &sys);
        assert_eq!(
            serde_json::to_string(&sharded).unwrap(),
            serde_json::to_string(&coupled).unwrap(),
            "{} on {}: shard merge is not bit-exact against the coupled engine",
            trav.name(),
            sys.label(),
        );
    }
}

/// Synthetic per-level batches with uneven sizes (including an empty
/// level) — the shapes the traversal planner actually emits.
fn synthetic_batches() -> Vec<Vec<DeviceRequest>> {
    let req = |addr: u64, bytes: u64| DeviceRequest {
        addr,
        bytes,
        overhead_ps: 0,
    };
    vec![
        vec![req(0, 128)],
        (0..2000).map(|i| req(i * 64, 64)).collect(),
        Vec::new(),
        (0..300).map(|i| req(i * 4096, 4096)).collect(),
    ]
}

#[test]
fn tampered_shard_merge_is_caught_by_the_latency_fingerprint() {
    let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
    let batches = synthetic_batches();
    let outcomes = engine::simulate_shards(|| sys.build_engine(), &batches);
    let honest = engine::merge_shard_metrics(&outcomes);

    // Value-level tamper: replace one shard's latency stats with a fake
    // distribution of the *same sample count*. Every integer field of
    // the merged metrics still agrees — only the fingerprint of the
    // merged Welford state exposes the corruption.
    let mut tampered = outcomes.clone();
    let n = tampered[1].result.latency.count();
    let mut fake = OnlineStats::new();
    for _ in 0..n {
        fake.push(1.0);
    }
    tampered[1].result.latency = fake;
    let merged = engine::merge_shard_metrics(&tampered);
    assert_eq!(merged.requests, honest.requests);
    assert_eq!(merged.runtime, honest.runtime);
    assert_ne!(
        merged.latency.fingerprint(),
        honest.latency.fingerprint(),
        "same-count tamper slipped past the merged fingerprint"
    );

    // Lossy-merge tamper: drop one shard's samples entirely. The
    // requests/latency-count cross-check catches that class without
    // even looking at the float state.
    let mut dropped = outcomes.clone();
    dropped[0].result.latency = OnlineStats::new();
    let lossy = engine::merge_shard_metrics(&dropped);
    assert_eq!(honest.latency.count(), honest.requests);
    assert_ne!(
        lossy.latency.count(),
        lossy.requests,
        "dropped shard left the sample count consistent"
    );
}

#[test]
fn shard_merge_order_is_load_bearing() {
    // merge_ordered is a *fixed-order* fold: permuting shards changes
    // the float state (Welford merges do not commute bit-wise), which is
    // exactly why the merge must consume outcomes in level order. If
    // this ever starts passing, the fingerprint has lost its teeth.
    let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 2).with_added_latency_us(0.7);
    let outcomes = engine::simulate_shards(|| sys.build_engine(), &synthetic_batches());
    let forward = engine::merge_shard_metrics(&outcomes);
    let mut reversed = outcomes;
    reversed.reverse();
    let backward = engine::merge_shard_metrics(&reversed);
    // Integer fields are order-independent...
    assert_eq!(forward.requests, backward.requests);
    assert_eq!(forward.fetched_bytes, backward.fetched_bytes);
    // ...and the samples are identical as a multiset, so the means agree
    // to rounding; only the fold order differs.
    assert!((forward.latency.mean() - backward.latency.mean()).abs() < 1e-6);
}
