//! Conventional NVMe SSD model — the storage behind the BaM baseline.
//!
//! §3.3.2 of the paper: BaM uses four SSDs totalling `S = 6` MIOPS and
//! reads at its software-cache line size, typically 4 kB, because
//! `d_BaM = W / S ≈ 4 kB` is the smallest transfer that still saturates
//! the link at that IOPS. §3.2 also notes typical SSDs are "optimized for
//! 4 kB access, and reading smaller bytes does not significantly increase
//! the random read performance" — we model that by charging the same
//! IOPS slot regardless of transfer size below the optimal size.
//! The evaluation system (Table 3) uses 4× KIOXIA FL6 drives.

use crate::target::{MemoryTarget, ReadSegment};
use cxlg_sim::{Bandwidth, BandwidthChannel, RateServer, SimDuration, SimTime, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// NVMe SSD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmeConfig {
    /// Logical block size — the smallest addressable unit (512 B, §1).
    pub block_bytes: u64,
    /// Access size the drive is optimized for (4 kB, §3.2).
    pub optimal_bytes: u64,
    /// Random-read ceiling in MIOPS (1.5 per drive so four drives give
    /// the paper's 6 MIOPS aggregate).
    pub miops: f64,
    /// Media + controller latency per random read, ps (~25 µs for a
    /// low-latency enterprise drive).
    pub latency_ps: u64,
    /// Exponential latency jitter mean, ps (0 disables).
    pub jitter_mean_ps: u64,
    /// The drive's own PCIe link bandwidth in MB/s (Table 3: each FL6 is
    /// PCIe 4.0 x4, ~6,000 MB/s effective).
    pub drive_link_mb_per_sec: u64,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for NvmeConfig {
    fn default() -> Self {
        NvmeConfig {
            block_bytes: 512,
            optimal_bytes: 4096,
            miops: 1.5,
            latency_ps: 25_000_000, // 25 us
            jitter_mean_ps: 2_000_000,
            drive_link_mb_per_sec: 6_000,
            seed: 0x55D,
        }
    }
}

/// One NVMe SSD.
#[derive(Debug, Clone)]
pub struct NvmeSsd {
    cfg: NvmeConfig,
    controller: RateServer,
    link: BandwidthChannel,
    rng: Xoshiro256StarStar,
    reads: u64,
    bytes: u64,
}

impl NvmeSsd {
    /// Build from a configuration; `drive_seed` decorrelates drives.
    pub fn new(mut cfg: NvmeConfig, drive_seed: u64) -> Self {
        cfg.seed ^= drive_seed.wrapping_mul(0x9E3779B97F4A7C15);
        NvmeSsd {
            controller: RateServer::from_miops(cfg.miops),
            link: BandwidthChannel::new(Bandwidth::from_mb_per_sec(cfg.drive_link_mb_per_sec)),
            rng: Xoshiro256StarStar::seed_from_u64(cfg.seed),
            cfg,
            reads: 0,
            bytes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NvmeConfig {
        &self.cfg
    }
}

impl Default for NvmeSsd {
    fn default() -> Self {
        Self::new(NvmeConfig::default(), 0)
    }
}

impl MemoryTarget for NvmeSsd {
    fn read(
        &mut self,
        t_arrive: SimTime,
        addr: u64,
        bytes: u64,
        out: &mut Vec<ReadSegment>,
    ) -> SimTime {
        debug_assert!(bytes > 0, "zero-byte read");
        debug_assert_eq!(addr % self.cfg.block_bytes, 0, "unaligned NVMe read");
        debug_assert_eq!(bytes % self.cfg.block_bytes, 0, "partial-block NVMe read");
        // One IOPS slot per `optimal_bytes` chunk: a 4 kB-optimized drive
        // serves an 8 kB read as two internal operations, while anything
        // up to 4 kB costs one (reading fewer bytes does not raise IOPS).
        let chunks = bytes.div_ceil(self.cfg.optimal_bytes).max(1);
        let mut admitted = SimTime::ZERO;
        for _ in 0..chunks {
            admitted = admitted.max(self.controller.admit(t_arrive));
        }
        let jitter = if self.cfg.jitter_mean_ps == 0 {
            0
        } else {
            self.rng.next_exp(self.cfg.jitter_mean_ps as f64) as u64
        };
        let ready = admitted + SimDuration::from_ps(self.cfg.latency_ps + jitter);
        let ready = self.link.transmit(ready, bytes);
        out.push(ReadSegment { ready, bytes });
        self.reads += 1;
        self.bytes += bytes;
        ready
    }

    fn alignment(&self) -> u64 {
        self.cfg.block_bytes
    }

    fn kind(&self) -> &'static str {
        "nvme"
    }

    fn reads_served(&self) -> u64 {
        self.reads
    }

    fn bytes_served(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> NvmeSsd {
        NvmeSsd::new(
            NvmeConfig {
                jitter_mean_ps: 0,
                ..NvmeConfig::default()
            },
            0,
        )
    }

    #[test]
    fn single_read_latency() {
        let mut d = quiet();
        let mut out = Vec::new();
        let ready = d.read(SimTime::ZERO, 0, 4096, &mut out);
        // 25 us media + ~0.68 us of x4-link serialization for 4 kB.
        assert!((ready.as_us_f64() - 25.68).abs() < 0.05, "{ready:?}");
    }

    #[test]
    fn iops_ceiling_is_respected() {
        let mut d = quiet();
        let n = 15_000u64;
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        for i in 0..n {
            out.clear();
            last = last.max(d.read(SimTime::ZERO, i * 4096, 4096, &mut out));
        }
        let miops = n as f64 / last.as_secs_f64() / 1e6;
        assert!((miops - 1.5).abs() < 0.1, "achieved {miops} MIOPS");
    }

    #[test]
    fn small_reads_cost_a_full_iops_slot() {
        // §3.2: reading 512 B instead of 4 kB does not raise IOPS.
        let mut small = quiet();
        let mut large = quiet();
        let mut out = Vec::new();
        let n = 10_000u64;
        let (mut last_s, mut last_l) = (SimTime::ZERO, SimTime::ZERO);
        for i in 0..n {
            out.clear();
            last_s = last_s.max(small.read(SimTime::ZERO, i * 4096, 512, &mut out));
            out.clear();
            last_l = last_l.max(large.read(SimTime::ZERO, i * 4096, 4096, &mut out));
        }
        let ratio = last_s.as_secs_f64() / last_l.as_secs_f64();
        // 512 B runs are controller-bound at 1.5 MIOPS; 4 kB runs are
        // additionally brushing the 6 GB/s drive link (1.46 M x 4 kB),
        // so the small-read run is NOT faster despite moving 8x less.
        assert!((0.93..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn oversized_reads_cost_multiple_slots() {
        let mut d = quiet();
        let mut out = Vec::new();
        let n = 5_000u64;
        let mut last = SimTime::ZERO;
        for i in 0..n {
            out.clear();
            last = last.max(d.read(SimTime::ZERO, i * 8192, 8192, &mut out));
        }
        let effective_miops = n as f64 / last.as_secs_f64() / 1e6;
        assert!(
            (effective_miops - 0.75).abs() < 0.05,
            "8 kB reads should halve IOPS, got {effective_miops}"
        );
    }

    #[test]
    fn jitter_is_deterministic() {
        let mut a = NvmeSsd::default();
        let mut b = NvmeSsd::default();
        let mut out = Vec::new();
        for i in 0..50 {
            out.clear();
            let ra = a.read(SimTime::ZERO, i * 4096, 4096, &mut out);
            out.clear();
            let rb = b.read(SimTime::ZERO, i * 4096, 4096, &mut out);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn interface_properties() {
        let d = NvmeSsd::default();
        assert_eq!(d.alignment(), 512);
        assert_eq!(d.kind(), "nvme");
        assert_eq!(d.max_transfer(), None);
    }
}
