//! Host DRAM model — the external memory EMOGI was designed for.
//!
//! §3.3.1 of the paper: *"the IOPS of the host DRAM-based external memory
//! is excessively high"*, so the slope of the throughput profile is set by
//! latency, not by a device service rate. We model the DIMM population as
//! an aggregate bandwidth channel (8 channels of DDR4-3200 in Table 3 ≈
//! 200 GB/s, never the bottleneck behind a 24 GB/s link) plus a fixed
//! access latency. The GPU-observed ~1.1–1.2 µs of Fig. 9 decomposes into
//! this device latency plus the PCIe round trip.

use crate::target::{MemoryTarget, ReadSegment};
use cxlg_sim::{Bandwidth, BandwidthChannel, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Host DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostDramConfig {
    /// Aggregate channel bandwidth in MB/s (Table 3: 8 × DDR4-3200 ≈
    /// 200 GB/s; Table 4's DRAM 1 is a single DDR5 channel ≈ 38 GB/s).
    pub bandwidth_mb_per_sec: u64,
    /// Device-side access latency (row activate + CAS + controller), ps.
    pub access_latency_ps: u64,
}

impl Default for HostDramConfig {
    fn default() -> Self {
        HostDramConfig {
            bandwidth_mb_per_sec: 200_000,
            access_latency_ps: 300_000, // 0.3 us
        }
    }
}

impl HostDramConfig {
    /// Access latency as a duration.
    pub fn access_latency(&self) -> SimDuration {
        SimDuration::from_ps(self.access_latency_ps)
    }
}

/// Host DRAM as an external-memory target.
#[derive(Debug, Clone)]
pub struct HostDram {
    cfg: HostDramConfig,
    channel: BandwidthChannel,
    reads: u64,
    bytes: u64,
}

impl HostDram {
    /// Build from a configuration.
    pub fn new(cfg: HostDramConfig) -> Self {
        HostDram {
            channel: BandwidthChannel::new(Bandwidth::from_mb_per_sec(
                cfg.bandwidth_mb_per_sec,
            )),
            cfg,
            reads: 0,
            bytes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HostDramConfig {
        &self.cfg
    }
}

impl Default for HostDram {
    fn default() -> Self {
        Self::new(HostDramConfig::default())
    }
}

impl MemoryTarget for HostDram {
    fn read(
        &mut self,
        t_arrive: SimTime,
        _addr: u64,
        bytes: u64,
        out: &mut Vec<ReadSegment>,
    ) -> SimTime {
        // Fixed access latency, then the data crosses the (never-binding)
        // internal channel. DRAM is heavily banked, so requests do not
        // serialize on access latency — only on channel bandwidth.
        let data_at = self.channel.transmit(t_arrive, bytes) + self.cfg.access_latency();
        out.push(ReadSegment {
            ready: data_at,
            bytes,
        });
        self.reads += 1;
        self.bytes += bytes;
        data_at
    }

    fn alignment(&self) -> u64 {
        // Zero-copy GPU access is sector-granular (32 B) — the GPU, not
        // the DRAM, imposes that; the DIMM interface itself is 64 B burst
        // but the paper attributes the 32 B alignment to the GPU
        // architecture (§3.3.1). We report the DRAM burst size.
        64
    }

    fn kind(&self) -> &'static str {
        "host-dram"
    }

    fn reads_served(&self) -> u64 {
        self.reads
    }

    fn bytes_served(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_reads() {
        let mut d = HostDram::default();
        let mut out = Vec::new();
        let ready = d.read(SimTime::ZERO, 0, 128, &mut out);
        // 128 B at 200 GB/s is 0.64 ns; latency is 300 ns.
        assert!((ready.as_ns_f64() - 300.0).abs() < 2.0, "{ready:?}");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn back_to_back_reads_do_not_serialize_on_latency() {
        // Banked DRAM: two reads issued together differ only by the
        // channel serialization of the first payload, not by 2x latency.
        let mut d = HostDram::default();
        let mut out = Vec::new();
        let r1 = d.read(SimTime::ZERO, 0, 128, &mut out);
        let r2 = d.read(SimTime::ZERO, 4096, 128, &mut out);
        let delta = r2.saturating_since(r1);
        assert!(delta.as_ns_f64() < 2.0, "{delta:?}");
    }

    #[test]
    fn sustained_throughput_hits_channel_bandwidth() {
        let mut d = HostDram::new(HostDramConfig {
            bandwidth_mb_per_sec: 10_000,
            access_latency_ps: 300_000,
        });
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        let n = 10_000u64;
        for i in 0..n {
            last = d.read(SimTime::ZERO, i * 128, 128, &mut out);
        }
        let mb_s = (n * 128) as f64 / 1e6 / last.as_secs_f64();
        assert!((mb_s - 10_000.0).abs() / 10_000.0 < 0.01, "{mb_s}");
        assert_eq!(d.reads_served(), n);
        assert_eq!(d.bytes_served(), n * 128);
    }

    #[test]
    fn kind_and_alignment() {
        let d = HostDram::default();
        assert_eq!(d.kind(), "host-dram");
        assert_eq!(d.alignment(), 64);
        assert_eq!(d.max_transfer(), None);
    }
}
