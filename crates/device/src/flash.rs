//! Multi-die, multi-plane microsecond-latency flash array.
//!
//! The XLFDD prototype \[38\] is built from "low-latency flash chips with a
//! latency of under 5 usec" (§4.1.1). A *plane* serves one page read at a
//! time (`tR`); low-latency flash supports independent multi-plane reads,
//! and the array interleaves addresses across all planes, so aggregate
//! random-read IOPS scales with plane count until the drive's controller
//! becomes the limit. §2.3 notes this media-level parallelism is what
//! lets microsecond flash "support sufficient random read performance
//! required for in-memory-class graph processing".

use cxlg_sim::{SimDuration, SimTime, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Flash array configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashConfig {
    /// Number of dies.
    pub dies: u32,
    /// Independent planes per die. Low-latency flash (XL-FLASH class)
    /// supports independent multi-plane reads, so a plane — not a die —
    /// is the unit that serializes page reads.
    pub planes_per_die: u32,
    /// Media read time `tR` per page access, in ps (~4 µs for the
    /// low-latency flash in the paper).
    pub read_latency_ps: u64,
    /// Exponential jitter added to `tR`, mean in ps (0 disables). Real
    /// flash read times vary with cell state and ECC effort.
    pub jitter_mean_ps: u64,
    /// Die page size in bytes; one read occupies the die once per page
    /// touched.
    pub page_bytes: u64,
    /// Service time for a read that hits the plane's page register (the
    /// page most recently sensed on that plane), in ps. Graph workloads
    /// cluster many sublist reads onto one page; real flash streams
    /// those from the register instead of re-sensing the array.
    pub register_read_ps: u64,
    /// Seed for the jitter stream (deterministic per drive).
    pub seed: u64,
}

impl Default for FlashConfig {
    fn default() -> Self {
        FlashConfig {
            dies: 64,
            planes_per_die: 8,
            read_latency_ps: 4_000_000, // 4 us
            jitter_mean_ps: 200_000,    // 0.2 us
            page_bytes: 4096,
            register_read_ps: 300_000, // 0.3 us
            seed: 0xF1A5,
        }
    }
}

/// The die array.
#[derive(Debug, Clone)]
pub struct FlashArray {
    cfg: FlashConfig,
    /// One availability register per plane (the serializing unit).
    plane_free: Vec<SimTime>,
    /// Page currently held in each plane's page register.
    plane_page: Vec<u64>,
    rng: Xoshiro256StarStar,
    reads: u64,
    register_hits: u64,
    busy_conflicts: u64,
}

impl FlashArray {
    /// Build from a configuration.
    pub fn new(cfg: FlashConfig) -> Self {
        assert!(cfg.dies > 0, "need at least one die");
        assert!(cfg.planes_per_die > 0, "need at least one plane");
        assert!(cfg.page_bytes.is_power_of_two(), "page size must be 2^k");
        FlashArray {
            plane_free: vec![SimTime::ZERO; (cfg.dies * cfg.planes_per_die) as usize],
            plane_page: vec![u64::MAX; (cfg.dies * cfg.planes_per_die) as usize],
            rng: Xoshiro256StarStar::seed_from_u64(cfg.seed),
            cfg,
            reads: 0,
            register_hits: 0,
            busy_conflicts: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// Which plane an address maps to (page-granular striping with a mix
    /// to decorrelate from application stride patterns).
    #[inline]
    pub fn plane_of(&self, addr: u64) -> usize {
        let page = addr / self.cfg.page_bytes;
        // SplitMix-style avalanche so sequential pages spread over planes.
        let mut z = page.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        (z % self.plane_free.len() as u64) as usize
    }

    /// Total independent planes.
    pub fn planes(&self) -> usize {
        self.plane_free.len()
    }

    /// Read the page containing `addr`, arriving at its plane at `t`.
    /// Returns when the data is out of the media. Reads spanning a page
    /// boundary should be split by the caller (the drive's transfer-size
    /// rules guarantee this for XLFDD).
    pub fn read_page(&mut self, t: SimTime, addr: u64) -> SimTime {
        let plane = self.plane_of(addr);
        let page = addr / self.cfg.page_bytes;
        let free = self.plane_free[plane];
        if free > t {
            self.busy_conflicts += 1;
        }
        let start = t.max(free);
        let service = if self.plane_page[plane] == page {
            // Register hit: the page was just sensed; stream it out.
            self.register_hits += 1;
            self.cfg.register_read_ps
        } else {
            let jitter = if self.cfg.jitter_mean_ps == 0 {
                0
            } else {
                self.rng.next_exp(self.cfg.jitter_mean_ps as f64) as u64
            };
            self.cfg.read_latency_ps + jitter
        };
        let ready = start + SimDuration::from_ps(service);
        self.plane_free[plane] = ready;
        self.plane_page[plane] = page;
        self.reads += 1;
        ready
    }

    /// Page reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Program (write) the page containing `addr`: occupies the plane for
    /// `tPROG` (see [`crate::write::FLASH_PROGRAM_PS`]) and invalidates
    /// its page register.
    pub fn program_page(&mut self, t: SimTime, addr: u64) -> SimTime {
        let plane = self.plane_of(addr);
        let free = self.plane_free[plane];
        if free > t {
            self.busy_conflicts += 1;
        }
        let start = t.max(free);
        let ready = start + SimDuration::from_ps(crate::write::FLASH_PROGRAM_PS);
        self.plane_free[plane] = ready;
        self.plane_page[plane] = u64::MAX;
        ready
    }

    /// Reads served from a plane's page register.
    pub fn register_hits(&self) -> u64 {
        self.register_hits
    }

    /// How many reads found their plane busy (a contention metric).
    pub fn busy_conflicts(&self) -> u64 {
        self.busy_conflicts
    }

    /// Peak theoretical IOPS of the array: `planes / tR`.
    pub fn peak_iops(&self) -> f64 {
        self.plane_free.len() as f64
            / SimDuration::from_ps(self.cfg.read_latency_ps).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(dies: u32, planes: u32) -> FlashArray {
        FlashArray::new(FlashConfig {
            dies,
            planes_per_die: planes,
            jitter_mean_ps: 0,
            ..FlashConfig::default()
        })
    }

    #[test]
    fn single_read_takes_tr() {
        let mut f = no_jitter(4, 1);
        let ready = f.read_page(SimTime::ZERO, 0);
        assert_eq!(ready.as_us_f64(), 4.0);
    }

    #[test]
    fn same_plane_serializes_different_planes_overlap() {
        let mut f = no_jitter(8, 1);
        let a0 = 0u64;
        let p0 = f.plane_of(a0);
        let same = (1..200)
            .map(|i| i * 4096)
            .find(|&a| f.plane_of(a) == p0)
            .expect("some page shares plane 0");
        let diff = (1..200)
            .map(|i| i * 4096)
            .find(|&a| f.plane_of(a) != p0)
            .expect("some page on another plane");
        let r0 = f.read_page(SimTime::ZERO, a0);
        let r_same = f.read_page(SimTime::ZERO, same);
        let r_diff = f.read_page(SimTime::ZERO, diff);
        assert_eq!(r_same.as_us_f64(), 8.0, "same plane must serialize");
        assert_eq!(r_diff.as_us_f64(), 4.0, "other plane is independent");
        assert_eq!(r0.as_us_f64(), 4.0);
        assert_eq!(f.busy_conflicts(), 1);
    }

    #[test]
    fn aggregate_iops_approaches_planes_over_tr() {
        // 64 dies x 8 planes at 4 us => 128 MIOPS peak.
        let mut f = no_jitter(64, 8);
        assert!((f.peak_iops() / 1e6 - 128.0).abs() < 0.01);
        assert_eq!(f.planes(), 512);
        let n = 256_000u64;
        let mut last = SimTime::ZERO;
        let mut rng = cxlg_sim::Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..n {
            let addr = rng.next_below(1 << 32) & !4095;
            last = last.max(f.read_page(SimTime::ZERO, addr));
        }
        let iops = n as f64 / last.as_secs_f64() / 1e6;
        // Random routing loses some balance; expect within 25% of peak.
        assert!(iops > 96.0, "achieved {iops} MIOPS");
        assert!(iops <= 128.5, "achieved {iops} MIOPS exceeds peak");
    }

    #[test]
    fn plane_mapping_is_stable_and_in_range() {
        let f = no_jitter(16, 2);
        for addr in (0..100u64).map(|i| i * 8192 + 7) {
            let d = f.plane_of(addr);
            assert!(d < 32);
            assert_eq!(d, f.plane_of(addr), "mapping must be pure");
            // Whole page maps to one plane.
            assert_eq!(f.plane_of(addr & !4095), d);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = FlashConfig::default();
        let mut a = FlashArray::new(cfg);
        let mut b = FlashArray::new(cfg);
        for i in 0..100 {
            assert_eq!(
                a.read_page(SimTime::ZERO, i * 4096),
                b.read_page(SimTime::ZERO, i * 4096)
            );
        }
    }

    #[test]
    fn repeated_page_reads_hit_the_register() {
        let mut f = no_jitter(8, 1);
        let r1 = f.read_page(SimTime::ZERO, 0);
        assert_eq!(r1.as_us_f64(), 4.0);
        // Same page again: register read (0.3 us), serialized after r1.
        let r2 = f.read_page(SimTime::ZERO, 64);
        assert!((r2.as_us_f64() - 4.3).abs() < 1e-9, "{r2:?}");
        assert_eq!(f.register_hits(), 1);
        // A different page on the same plane evicts the register.
        let p0 = f.plane_of(0);
        let other = (1..200)
            .map(|i| i * 4096)
            .find(|&a| f.plane_of(a) == p0)
            .unwrap();
        f.read_page(SimTime::ZERO, other);
        let r4 = f.read_page(SimTime::ZERO, 0);
        assert_eq!(f.register_hits(), 1, "register was evicted");
        assert!(r4.as_us_f64() > 12.0);
    }

    #[test]
    fn sequential_pages_spread_across_planes() {
        let f = no_jitter(16, 1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(f.plane_of(i * 4096));
        }
        assert!(seen.len() > 8, "striping too weak: {} planes", seen.len());
    }
}
