//! The latency-adjustable CXL.mem memory expander prototype (§4.2.1,
//! Figure 7).
//!
//! Structure mirrors the paper's block diagram: a CXL interface (port
//! latency, 64 B access granularity), latency bridges (Appendix A), a bus
//! matrix funnelling into a **single-channel** onboard DRAM (the paper
//! notes this FPGA-board limitation caps per-device throughput at about
//! 5,700 MB/s), and a finite device tag pool — §4.2.2 infers the Agilex-7
//! handles **128** outstanding accesses, which is why throughput decays
//! with added latency in Figure 10.
//!
//! Requests larger than 64 B split into flits; each flit occupies one
//! device tag from admission until its response leaves the bridge, so a
//! stream of 128 B GPU reads sees only 64 request-level slots (§4.2.2).

use crate::latency_bridge::{BridgeOrdering, LatencyBridge};
use crate::target::{MemoryTarget, ReadSegment};
use cxlg_link::cxl::{CxlPortConfig, CXL_FLIT_BYTES};
use cxlg_sim::{Bandwidth, BandwidthChannel, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of one CXL memory device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CxlMemConfig {
    /// Onboard DRAM channel bandwidth in MB/s (Fig. 10 cap ≈ 5,700).
    pub dram_bandwidth_mb_per_sec: u64,
    /// Onboard DRAM access latency in ps.
    pub dram_access_latency_ps: u64,
    /// Device tag pool (outstanding 64 B accesses); §4.2.2 infers 128.
    pub device_tags: u64,
    /// Additional latency injected by the bridge, in ps (the Figure 10/11
    /// sweep variable, 0–3 µs in the paper).
    pub added_latency_ps: u64,
    /// Response ordering (the FPGA prototype is in-order).
    pub ordering: BridgeOrdering,
    /// CXL port parameters.
    pub port: CxlPortConfig,
}

impl Default for CxlMemConfig {
    fn default() -> Self {
        CxlMemConfig {
            dram_bandwidth_mb_per_sec: 5_700,
            // Same DRAM technology class as the host (the prototype's
            // onboard DDR4-1333 is, if anything, slower than the host's
            // DDR5): 0.3 us, so the CXL(+0) delta over host DRAM is the
            // 0.5 us port round trip, matching Fig. 9.
            dram_access_latency_ps: 300_000,
            device_tags: 128,
            added_latency_ps: 0,
            ordering: BridgeOrdering::InOrder,
            port: CxlPortConfig::default(),
        }
    }
}

impl CxlMemConfig {
    /// Set the bridge's additional latency in microseconds (the paper's
    /// "+0", "+0.5", … "+3" settings).
    pub fn with_added_latency_us(mut self, us: f64) -> Self {
        self.added_latency_ps = SimDuration::from_us(us).as_ps();
        self
    }

    /// Use the out-of-order bridge variant.
    pub fn out_of_order(mut self) -> Self {
        self.ordering = BridgeOrdering::OutOfOrder;
        self
    }

    /// The added latency as a duration.
    pub fn added_latency(&self) -> SimDuration {
        SimDuration::from_ps(self.added_latency_ps)
    }
}

/// One CXL memory expander.
#[derive(Debug, Clone)]
pub struct CxlMemDevice {
    cfg: CxlMemConfig,
    dram: BandwidthChannel,
    bridge: LatencyBridge,
    /// Release times of in-flight tags (min-heap); admission waits on the
    /// earliest release when the pool is exhausted.
    tag_release: BinaryHeap<Reverse<SimTime>>,
    reads: u64,
    flits: u64,
    bytes: u64,
    /// Sum of device-resident times (admission to egress) for mean-latency
    /// reporting, in ps.
    resident_ps: u128,
}

impl CxlMemDevice {
    /// Build from a configuration.
    pub fn new(cfg: CxlMemConfig) -> Self {
        CxlMemDevice {
            dram: BandwidthChannel::new(Bandwidth::from_mb_per_sec(
                cfg.dram_bandwidth_mb_per_sec,
            )),
            bridge: LatencyBridge::new(cfg.added_latency(), cfg.ordering),
            tag_release: BinaryHeap::new(),
            cfg,
            reads: 0,
            flits: 0,
            bytes: 0,
            resident_ps: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CxlMemConfig {
        &self.cfg
    }

    /// Flit-level accesses served.
    pub fn flits_served(&self) -> u64 {
        self.flits
    }

    /// Mean device-resident time per flit (admission to response egress).
    pub fn mean_resident(&self) -> SimDuration {
        if self.flits == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps((self.resident_ps / self.flits as u128) as u64)
        }
    }

    /// Process one 64 B flit entering the device at `t_ingress`; returns
    /// when its response leaves the bridge (before the egress port hop).
    fn serve_flit(&mut self, t_ingress: SimTime) -> SimTime {
        // Tag admission: wait for the earliest in-flight release if the
        // pool is full.
        let t_admit = if self.tag_release.len() as u64 >= self.cfg.device_tags {
            let Reverse(earliest) = self.tag_release.pop().expect("non-empty at capacity");
            t_ingress.max(earliest)
        } else {
            t_ingress
        };
        // Bus matrix -> single DRAM channel -> access latency.
        let data_ready = self.dram.transmit(t_admit, CXL_FLIT_BYTES)
            + SimDuration::from_ps(self.cfg.dram_access_latency_ps);
        // Appendix A bridge.
        let release = self.bridge.release(t_admit, data_ready);
        self.tag_release.push(Reverse(release));
        self.flits += 1;
        self.resident_ps += release.saturating_since(t_admit).as_ps() as u128;
        release
    }
}

impl Default for CxlMemDevice {
    fn default() -> Self {
        Self::new(CxlMemConfig::default())
    }
}

impl MemoryTarget for CxlMemDevice {
    fn read(
        &mut self,
        t_arrive: SimTime,
        _addr: u64,
        bytes: u64,
        out: &mut Vec<ReadSegment>,
    ) -> SimTime {
        debug_assert!(bytes > 0, "zero-byte read");
        let ingress = t_arrive + self.cfg.port.port_latency();
        let port_out = self.cfg.port.port_latency();
        let mut remaining = bytes;
        let mut last = SimTime::ZERO;
        while remaining > 0 {
            let seg = remaining.min(CXL_FLIT_BYTES);
            let release = self.serve_flit(ingress);
            let ready = release + port_out;
            out.push(ReadSegment { ready, bytes: seg });
            last = last.max(ready);
            remaining -= seg;
        }
        self.reads += 1;
        self.bytes += bytes;
        last
    }

    fn alignment(&self) -> u64 {
        CXL_FLIT_BYTES
    }

    fn kind(&self) -> &'static str {
        "cxl-mem"
    }

    fn reads_served(&self) -> u64 {
        self.reads
    }

    fn bytes_served(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(dev: &mut CxlMemDevice, t: SimTime, bytes: u64) -> SimTime {
        let mut out = Vec::new();
        dev.read(t, 0, bytes, &mut out)
    }

    #[test]
    fn base_latency_near_microsecond_scale() {
        // Port 0.25 us x2 + DRAM 0.3 us + serialization ~= 0.81 us.
        let mut d = CxlMemDevice::default();
        let ready = read_one(&mut d, SimTime::ZERO, 64);
        let us = ready.as_us_f64();
        assert!((0.75..0.90).contains(&us), "base latency {us} us");
    }

    #[test]
    fn added_latency_shifts_completion() {
        let mut base = CxlMemDevice::default();
        let mut plus2 = CxlMemDevice::new(CxlMemConfig::default().with_added_latency_us(2.0));
        let t0 = read_one(&mut base, SimTime::ZERO, 64);
        let t2 = read_one(&mut plus2, SimTime::ZERO, 64);
        let delta = t2.saturating_since(t0).as_us_f64();
        // Appendix A pops at max(data_ready, stamp + added): the ~0.31 us
        // of DRAM service is absorbed into the 2 us target, so the
        // observed shift is 2.0 minus the base DRAM time. (Fig. 11's axis
        // shows the same effect: +0 -> 1.6 us but +0.5 -> 2.0 us.)
        assert!((1.6..1.8).contains(&delta), "delta {delta} us");
    }

    #[test]
    fn large_reads_split_into_flits() {
        let mut d = CxlMemDevice::default();
        let mut out = Vec::new();
        d.read(SimTime::ZERO, 0, 128, &mut out);
        assert_eq!(out.len(), 2, "128 B = two 64 B flits (§4.2.2)");
        assert_eq!(out.iter().map(|s| s.bytes).sum::<u64>(), 128);
        out.clear();
        d.read(SimTime::ZERO, 0, 96, &mut out);
        assert_eq!(out.len(), 2, "96 B also splits into two accesses");
        assert_eq!(out[1].bytes, 32);
    }

    #[test]
    fn throughput_capped_by_dram_channel_at_zero_added_latency() {
        // Fig. 10 at +0: ~5,700 MB/s.
        let mut d = CxlMemDevice::default();
        let n = 50_000u64;
        let mut last = SimTime::ZERO;
        let mut out = Vec::new();
        for i in 0..n {
            out.clear();
            last = d.read(SimTime::ZERO, i * 64, 64, &mut out);
        }
        let mb_s = (n * 64) as f64 / 1e6 / last.as_secs_f64();
        assert!(
            (mb_s - 5_700.0).abs() / 5_700.0 < 0.02,
            "throughput {mb_s} MB/s"
        );
    }

    #[test]
    fn throughput_decays_with_added_latency_via_tag_starvation() {
        // Fig. 10: with 128 tags and latency L, T ~ 128 * 64 B / L once
        // L exceeds ~1.4 us.
        let mut d = CxlMemDevice::new(CxlMemConfig::default().with_added_latency_us(4.0));
        let n = 50_000u64;
        let mut last = SimTime::ZERO;
        let mut out = Vec::new();
        for i in 0..n {
            out.clear();
            last = d.read(SimTime::ZERO, i * 64, 64, &mut out);
        }
        let mb_s = (n * 64) as f64 / 1e6 / last.as_secs_f64();
        // L ~= 0.1 (dram) + 4.0 (bridge) ~ 4.1 us inside the tag window;
        // T ~= 128 * 64 / 4.1us ~= 2,000 MB/s.
        assert!(mb_s < 2_300.0, "expected tag-starved throughput, got {mb_s}");
        assert!(mb_s > 1_600.0, "unreasonably low throughput {mb_s}");
    }

    #[test]
    fn tag_pool_bounds_concurrency() {
        // Issue 256 zero-time flits; the 129th cannot start before the
        // 1st releases.
        let cfg = CxlMemConfig::default().with_added_latency_us(1.0);
        let mut d = CxlMemDevice::new(cfg);
        let mut completions = Vec::new();
        let mut out = Vec::new();
        for i in 0..256u64 {
            out.clear();
            completions.push(d.read(SimTime::ZERO, i * 64, 64, &mut out));
        }
        // First 128 release together (bridge-dominated); the next 128
        // start only after those releases.
        let first = completions[0];
        let tail = completions[200];
        assert!(tail.saturating_since(first).as_us_f64() > 0.9);
    }

    #[test]
    fn in_order_bridge_produces_monotone_completions() {
        let mut d = CxlMemDevice::new(CxlMemConfig::default().with_added_latency_us(0.5));
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        for i in 0..1000u64 {
            out.clear();
            let r = d.read(SimTime(i * 1000), i * 64, 64, &mut out);
            assert!(r >= last, "completion order violated at {i}");
            last = r;
        }
    }

    #[test]
    fn out_of_order_mode_reported_in_config() {
        let d = CxlMemDevice::new(CxlMemConfig::default().out_of_order());
        assert_eq!(d.config().ordering, BridgeOrdering::OutOfOrder);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = CxlMemDevice::default();
        let mut out = Vec::new();
        d.read(SimTime::ZERO, 0, 128, &mut out);
        d.read(SimTime::ZERO, 128, 64, &mut out);
        assert_eq!(d.reads_served(), 2);
        assert_eq!(d.flits_served(), 3);
        assert_eq!(d.bytes_served(), 192);
        assert!(d.mean_resident().as_ns_f64() > 0.0);
    }
}
