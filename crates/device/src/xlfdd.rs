//! XLFDD — the FPGA storage prototype with microsecond-latency flash
//! (§4.1.1, reference \[38\] of the paper).
//!
//! Key properties the evaluation depends on:
//!
//! * **16 B address alignment** — far below NVMe's 512 B minimum, the
//!   property behind Observation 1;
//! * **transfer size: any multiple of 16 B up to 2 kB** — so a whole edge
//!   sublist is fetched in one request instead of being split into GPU
//!   cache lines;
//! * **11 MIOPS per drive** via a lightweight storage interface, with
//!   submission queues in GPU BAR memory and *no completion queues*;
//! * microsecond-latency flash media (under 5 µs).

use crate::flash::{FlashArray, FlashConfig};
use crate::target::{MemoryTarget, ReadSegment};
use cxlg_sim::{Bandwidth, BandwidthChannel, RateServer, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// XLFDD drive configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XlfddConfig {
    /// Smallest address alignment (16 B, §4.1.1).
    pub alignment: u64,
    /// Largest single transfer (2 kB, §4.1.1).
    pub max_transfer: u64,
    /// Controller random-read ceiling in MIOPS (11 per drive, §4.1.1).
    pub controller_miops: f64,
    /// Fixed controller processing overhead per request, ps.
    pub controller_overhead_ps: u64,
    /// The drive's own PCIe link bandwidth in MB/s (Table 3: each XLFDD
    /// sits on a PCIe 3.0 x4 link, ~3,000 MB/s effective); response DMA
    /// serializes here before reaching the shared GPU link.
    pub drive_link_mb_per_sec: u64,
    /// Flash media parameters.
    pub flash: FlashConfig,
}

impl Default for XlfddConfig {
    fn default() -> Self {
        XlfddConfig {
            alignment: 16,
            max_transfer: 2048,
            controller_miops: 11.0,
            controller_overhead_ps: 300_000, // 0.3 us FPGA pipeline
            drive_link_mb_per_sec: 3_000,
            flash: FlashConfig::default(),
        }
    }
}

/// One XLFDD drive.
#[derive(Debug, Clone)]
pub struct XlfddDrive {
    cfg: XlfddConfig,
    controller: RateServer,
    flash: FlashArray,
    link: BandwidthChannel,
    reads: u64,
    bytes: u64,
}

impl XlfddDrive {
    /// Build from a configuration; `drive_seed` decorrelates the flash
    /// jitter streams of drives in an array.
    pub fn new(mut cfg: XlfddConfig, drive_seed: u64) -> Self {
        cfg.flash.seed ^= drive_seed.wrapping_mul(0x9E3779B97F4A7C15);
        XlfddDrive {
            controller: RateServer::from_miops(cfg.controller_miops),
            flash: FlashArray::new(cfg.flash),
            link: BandwidthChannel::new(Bandwidth::from_mb_per_sec(cfg.drive_link_mb_per_sec)),
            cfg,
            reads: 0,
            bytes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &XlfddConfig {
        &self.cfg
    }

    /// Flash-level statistics.
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Mutable flash access (used by the write path).
    pub fn flash_mut(&mut self) -> &mut FlashArray {
        &mut self.flash
    }
}

impl Default for XlfddDrive {
    fn default() -> Self {
        Self::new(XlfddConfig::default(), 0)
    }
}

impl MemoryTarget for XlfddDrive {
    fn read(
        &mut self,
        t_arrive: SimTime,
        addr: u64,
        bytes: u64,
        out: &mut Vec<ReadSegment>,
    ) -> SimTime {
        debug_assert!(bytes > 0, "zero-byte read");
        debug_assert!(
            bytes <= self.cfg.max_transfer,
            "transfer {bytes} exceeds XLFDD max {}; split at the access layer",
            self.cfg.max_transfer
        );
        debug_assert_eq!(addr % self.cfg.alignment, 0, "misaligned XLFDD read");
        // Lightweight controller: one IOPS slot, fixed pipeline overhead.
        let admitted = self.controller.admit(t_arrive)
            + SimDuration::from_ps(self.cfg.controller_overhead_ps);
        // One media access per flash page touched (a <=2 kB transfer spans
        // at most two 4 kB pages when it straddles a boundary).
        let first_page = addr / self.cfg.flash.page_bytes;
        let last_page = (addr + bytes - 1) / self.cfg.flash.page_bytes;
        let mut ready = SimTime::ZERO;
        for page in first_page..=last_page {
            let r = self.flash.read_page(admitted, page * self.cfg.flash.page_bytes);
            ready = ready.max(r);
        }
        // The drive DMAs the payload out over its own x4 link before the
        // switch fabric merges it onto the shared GPU link.
        let ready = self.link.transmit(ready, bytes);
        out.push(ReadSegment { ready, bytes });
        self.reads += 1;
        self.bytes += bytes;
        ready
    }

    fn alignment(&self) -> u64 {
        self.cfg.alignment
    }

    fn max_transfer(&self) -> Option<u64> {
        Some(self.cfg.max_transfer)
    }

    fn kind(&self) -> &'static str {
        "xlfdd"
    }

    fn reads_served(&self) -> u64 {
        self.reads
    }

    fn bytes_served(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> XlfddDrive {
        XlfddDrive::new(
            XlfddConfig {
                flash: FlashConfig {
                    jitter_mean_ps: 0,
                    ..FlashConfig::default()
                },
                ..XlfddConfig::default()
            },
            0,
        )
    }

    #[test]
    fn single_read_is_microsecond_scale() {
        let mut d = quiet();
        let mut out = Vec::new();
        let ready = d.read(SimTime::ZERO, 0, 256, &mut out);
        // 0.3 us controller + 4 us flash + ~0.09 us x4-link DMA = 4.39 us.
        assert!((ready.as_us_f64() - 4.39).abs() < 0.05, "{ready:?}");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bytes, 256);
    }

    #[test]
    fn controller_limits_iops_to_11m() {
        let mut d = quiet();
        let n = 110_000u64;
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        for i in 0..n {
            out.clear();
            last = last.max(d.read(SimTime::ZERO, (i * 256) % (1 << 30), 16, &mut out));
        }
        let miops = n as f64 / last.as_secs_f64() / 1e6;
        assert!((miops - 11.0).abs() < 0.8, "achieved {miops} MIOPS");
    }

    #[test]
    fn page_straddling_read_touches_two_dies_or_serializes() {
        let mut d = quiet();
        let mut out = Vec::new();
        // 2 kB read starting 1 kB before a page boundary.
        let ready = d.read(SimTime::ZERO, 4096 - 1024, 2048, &mut out);
        // Two page reads: if they land on different dies they overlap
        // (4.3 us); same die serializes (8.3 us). Either way >= one tR.
        let us = ready.as_us_f64();
        assert!(us >= 4.29, "{us}");
        assert!(us <= 8.5, "{us}");
        assert_eq!(d.flash().reads(), 2);
    }

    #[test]
    fn distinct_drive_seeds_decorrelate_jitter() {
        let mut a = XlfddDrive::new(XlfddConfig::default(), 1);
        let mut b = XlfddDrive::new(XlfddConfig::default(), 2);
        let mut out = Vec::new();
        let ra = a.read(SimTime::ZERO, 0, 64, &mut out);
        out.clear();
        let rb = b.read(SimTime::ZERO, 0, 64, &mut out);
        assert_ne!(ra, rb, "jitter streams should differ across drives");
    }

    #[test]
    fn interface_properties_match_paper() {
        let d = XlfddDrive::default();
        assert_eq!(d.alignment(), 16);
        assert_eq!(d.max_transfer(), Some(2048));
        assert_eq!(d.kind(), "xlfdd");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "misaligned")]
    fn rejects_misaligned_reads_in_debug() {
        let mut d = quiet();
        let mut out = Vec::new();
        d.read(SimTime::ZERO, 7, 64, &mut out);
    }
}
