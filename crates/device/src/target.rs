//! The device-facing read interface shared by all external-memory models.
//!
//! A device consumes a read `(addr, bytes)` arriving at some instant and
//! reports **when response data leaves the device**, broken into segments
//! (CXL returns per-64 B flit; storage devices DMA the payload as one
//! burst). The DES driver in `cxlg-core` then serializes those segments
//! onto the shared PCIe return channel, which is where the paper's
//! bandwidth bottleneck `W` lives.

use cxlg_sim::SimTime;

/// One chunk of response data leaving a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadSegment {
    /// When this segment's data is ready at the device output.
    pub ready: SimTime,
    /// Segment payload size in bytes.
    pub bytes: u64,
}

/// A passive timing model of an external memory or storage device.
pub trait MemoryTarget {
    /// Process a read of `bytes` at device-local address `addr` arriving
    /// at `t_arrive`. Pushes one or more [`ReadSegment`]s (in
    /// ready-time order) onto `out` and returns the instant the *last*
    /// segment is ready (the request's device-side completion).
    ///
    /// `out` is an out-parameter so the hot path can reuse its allocation.
    fn read(&mut self, t_arrive: SimTime, addr: u64, bytes: u64, out: &mut Vec<ReadSegment>)
        -> SimTime;

    /// Smallest address alignment the device supports for reads.
    fn alignment(&self) -> u64;

    /// Largest single-request transfer, if bounded (XLFDD: 2 kB).
    fn max_transfer(&self) -> Option<u64> {
        None
    }

    /// Short human-readable device kind for reports.
    fn kind(&self) -> &'static str;

    /// Reads served so far.
    fn reads_served(&self) -> u64;

    /// Bytes of response data produced so far.
    fn bytes_served(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial fixed-latency device used to validate the trait contract
    /// and as a reference point for the real models.
    struct FixedLatency {
        latency_ps: u64,
        reads: u64,
        bytes: u64,
    }

    impl MemoryTarget for FixedLatency {
        fn read(
            &mut self,
            t: SimTime,
            _addr: u64,
            bytes: u64,
            out: &mut Vec<ReadSegment>,
        ) -> SimTime {
            let ready = t + cxlg_sim::SimDuration::from_ps(self.latency_ps);
            out.push(ReadSegment { ready, bytes });
            self.reads += 1;
            self.bytes += bytes;
            ready
        }
        fn alignment(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "fixed"
        }
        fn reads_served(&self) -> u64 {
            self.reads
        }
        fn bytes_served(&self) -> u64 {
            self.bytes
        }
    }

    #[test]
    fn trait_contract() {
        let mut d = FixedLatency {
            latency_ps: 1000,
            reads: 0,
            bytes: 0,
        };
        let mut out = Vec::new();
        let ready = d.read(SimTime(5), 0, 64, &mut out);
        assert_eq!(ready, SimTime(1005));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bytes, 64);
        assert_eq!(d.reads_served(), 1);
        assert_eq!(d.bytes_served(), 64);
        assert_eq!(d.max_transfer(), None);
    }
}
