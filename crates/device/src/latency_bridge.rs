//! The latency bridge of Appendix A (Figure 12).
//!
//! The paper's CXL prototype inserts a configurable delay between the
//! DRAM and the CXL interface: *"We add a time stamp to an incoming read
//! request, read data from the DRAM, and push it to a FIFO along with the
//! time stamp. When the current time becomes greater than the time stamp
//! of the FIFO head by a specified additional latency, the data is popped
//! and sent to the CPU."* Because the Agilex-7 CXL interface processes
//! requests **in order**, a plain FIFO suffices; the paper notes an
//! out-of-order CXL interface would need "a slightly more involved
//! design" — we implement that variant too ([`BridgeOrdering::OutOfOrder`])
//! for the ablation benches.

use cxlg_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Response ordering discipline of the bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BridgeOrdering {
    /// Responses leave in request order (the FPGA prototype's behaviour).
    InOrder,
    /// Responses leave as soon as their own delay expires (the
    /// "slightly more involved design" of Appendix A).
    OutOfOrder,
}

/// The timestamped-FIFO delay element.
#[derive(Debug, Clone)]
pub struct LatencyBridge {
    added: SimDuration,
    ordering: BridgeOrdering,
    /// In-order mode: release time of the previous response.
    prev_release: SimTime,
    releases: u64,
}

impl LatencyBridge {
    /// Bridge adding `added` latency with the given ordering.
    pub fn new(added: SimDuration, ordering: BridgeOrdering) -> Self {
        LatencyBridge {
            added,
            ordering,
            prev_release: SimTime::ZERO,
            releases: 0,
        }
    }

    /// The configured additional latency.
    pub fn added_latency(&self) -> SimDuration {
        self.added
    }

    /// The ordering discipline.
    pub fn ordering(&self) -> BridgeOrdering {
        self.ordering
    }

    /// Change the additional latency between runs (the prototype exposes
    /// this via CXL.io register writes, §4.2.1).
    pub fn set_added_latency(&mut self, added: SimDuration) {
        self.added = added;
    }

    /// Compute when a response is released to the CXL interface.
    ///
    /// * `stamped` — when the request entered the bridge (its timestamp);
    /// * `data_ready` — when the DRAM produced the data.
    ///
    /// The pop rule is `max(data_ready, stamped + added)`, and in in-order
    /// mode additionally `>= previous release`.
    #[inline]
    pub fn release(&mut self, stamped: SimTime, data_ready: SimTime) -> SimTime {
        debug_assert!(data_ready >= stamped, "data ready before request arrived");
        let own = data_ready.max(stamped + self.added);
        let out = match self.ordering {
            BridgeOrdering::InOrder => own.max(self.prev_release),
            BridgeOrdering::OutOfOrder => own,
        };
        self.prev_release = match self.ordering {
            BridgeOrdering::InOrder => out,
            // OoO mode does not constrain successors.
            BridgeOrdering::OutOfOrder => self.prev_release.max(out),
        };
        self.releases += 1;
        out
    }

    /// Responses released so far.
    pub fn releases(&self) -> u64 {
        self.releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: f64) -> SimDuration {
        SimDuration::from_us(x)
    }

    fn at(x: f64) -> SimTime {
        SimTime::ZERO + us(x)
    }

    #[test]
    fn adds_configured_latency() {
        let mut b = LatencyBridge::new(us(2.0), BridgeOrdering::InOrder);
        // Request stamped at 1.0, DRAM answers at 1.1 -> released at 3.0.
        let rel = b.release(at(1.0), at(1.1));
        assert_eq!(rel, at(3.0));
    }

    #[test]
    fn zero_added_latency_passes_through() {
        let mut b = LatencyBridge::new(SimDuration::ZERO, BridgeOrdering::InOrder);
        assert_eq!(b.release(at(1.0), at(1.2)), at(1.2));
    }

    #[test]
    fn slow_dram_dominates_short_delay() {
        let mut b = LatencyBridge::new(us(0.5), BridgeOrdering::InOrder);
        // DRAM takes 2 us (> 0.5 us bridge delay): release at data_ready.
        assert_eq!(b.release(at(0.0), at(2.0)), at(2.0));
    }

    #[test]
    fn in_order_head_of_line_blocking() {
        let mut b = LatencyBridge::new(us(1.0), BridgeOrdering::InOrder);
        // First request is late (stamped 0, data at 5 -> release 5).
        let r1 = b.release(at(0.0), at(5.0));
        assert_eq!(r1, at(5.0));
        // Second request would be ready at 2.0 on its own, but FIFO order
        // holds it behind the first.
        let r2 = b.release(at(1.0), at(1.1));
        assert_eq!(r2, at(5.0));
    }

    #[test]
    fn out_of_order_releases_independently() {
        let mut b = LatencyBridge::new(us(1.0), BridgeOrdering::OutOfOrder);
        let r1 = b.release(at(0.0), at(5.0));
        assert_eq!(r1, at(5.0));
        let r2 = b.release(at(1.0), at(1.1));
        assert_eq!(r2, at(2.0), "OoO must not block behind the slow head");
        assert_eq!(b.releases(), 2);
    }

    #[test]
    fn latency_is_adjustable_between_runs() {
        let mut b = LatencyBridge::new(us(0.0), BridgeOrdering::InOrder);
        assert_eq!(b.release(at(0.0), at(0.1)), at(0.1));
        b.set_added_latency(us(3.0));
        assert_eq!(b.added_latency(), us(3.0));
        let rel = b.release(at(1.0), at(1.1));
        assert_eq!(rel, at(4.0));
    }
}
