//! # cxlg-device — external memory device models
//!
//! Timing models for every external-memory backend the paper evaluates:
//!
//! * [`dram::HostDram`] — the EMOGI baseline target: effectively unlimited
//!   random-read rate, ~0.3 µs device-side latency (the GPU observes
//!   ~1.1–1.2 µs through the PCIe link, Fig. 9);
//! * [`cxl_mem::CxlMemDevice`] — the Agilex-7 FPGA CXL.mem prototype of
//!   §4.2.1/Fig. 7: 64 B access granularity, 128 device tags, a
//!   single-channel DRAM capped near 5,700 MB/s, and the Appendix-A
//!   **latency bridge** ([`latency_bridge`]) that delays responses through
//!   a timestamped FIFO to emulate slower media;
//! * [`xlfdd::XlfddDrive`] — the microsecond-latency flash prototype of
//!   §4.1 \[38\]: 16 B alignment, transfers up to 2 kB, 11 MIOPS per drive,
//!   built on a multi-die flash array ([`flash`]);
//! * [`nvme::NvmeSsd`] — a conventional NVMe SSD as used by BaM: 512 B
//!   blocks, 4 kB-optimal access, ~1.5 MIOPS per drive.
//!
//! Devices are *passive timing calculators*: the discrete-event driver in
//! `cxlg-core` hands them a read arriving at time `t` and they return when
//! the response data leaves the device, having internally accounted for
//! tag limits, service rates, internal bandwidth, and response ordering.
//! Multi-device configurations (5 CXL expanders, 16 XLFDD drives, 4 SSDs)
//! are assembled with [`interleave::Interleave`] address routing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cxl_mem;
pub mod dram;
pub mod flash;
pub mod interleave;
pub mod latency_bridge;
pub mod nvme;
pub mod target;
pub mod write;
pub mod xlfdd;

pub use cxl_mem::{CxlMemConfig, CxlMemDevice};
pub use dram::{HostDram, HostDramConfig};
pub use flash::{FlashArray, FlashConfig};
pub use interleave::Interleave;
pub use latency_bridge::{BridgeOrdering, LatencyBridge};
pub use nvme::{NvmeConfig, NvmeSsd};
pub use target::{MemoryTarget, ReadSegment};
pub use write::WritableTarget;
pub use xlfdd::{XlfddConfig, XlfddDrive};
