//! Write paths — the Discussion section's "read-only workloads" future
//! direction.
//!
//! The paper's workloads never write to external memory, and it flags the
//! open questions: coherency overhead on CXL, and "write characteristics
//! of flash memory", both with possible dependence on alignment and
//! transfer size. These models make those effects measurable:
//!
//! * host DRAM / CXL DRAM: writes are posted — they consume channel
//!   bandwidth but complete at the device without a data response;
//! * flash: a page **program** is an order of magnitude slower than a
//!   read (`tPROG` ≈ 100 µs vs `tR` ≈ 4 µs) and occupies the plane, so
//!   even a small write fraction collapses read IOPS — exactly the
//!   asymmetry the Discussion warns about.

use crate::cxl_mem::CxlMemDevice;
use crate::dram::HostDram;
use crate::flash::FlashArray;
use crate::xlfdd::XlfddDrive;
use cxlg_link::cxl::CXL_FLIT_BYTES;
use cxlg_sim::SimTime;

/// Default flash page-program time (`tPROG`), ps. Low-latency flash
/// programs faster than conventional TLC but still ~25x its read time.
pub const FLASH_PROGRAM_PS: u64 = 100_000_000; // 100 us

/// Write acceptance: when the device has absorbed the data (posted
/// semantics — no data returns).
pub trait WritableTarget {
    /// Accept a write of `bytes` at `addr` arriving at `t`; returns when
    /// the device has durably accepted it.
    fn write(&mut self, t_arrive: SimTime, addr: u64, bytes: u64) -> SimTime;
}

impl WritableTarget for HostDram {
    fn write(&mut self, t_arrive: SimTime, addr: u64, bytes: u64) -> SimTime {
        // Same channel as reads; posted, so acceptance = serialization +
        // access latency (no return trip).
        let mut sink = Vec::with_capacity(1);
        use crate::target::MemoryTarget;
        self.read(t_arrive, addr, bytes, &mut sink)
    }
}

impl WritableTarget for CxlMemDevice {
    fn write(&mut self, t_arrive: SimTime, addr: u64, bytes: u64) -> SimTime {
        // CXL.mem writes (M2S RwD) move 64 B flits through the same
        // port, bridge and DRAM channel as reads; the NDR completion is
        // subject to the same added latency (the bridge delays all
        // responses). Reuse the read path timing: data-in instead of
        // data-out is symmetric for the single shared channel.
        let mut sink = Vec::with_capacity((bytes / CXL_FLIT_BYTES + 1) as usize);
        use crate::target::MemoryTarget;
        self.read(t_arrive, addr, bytes, &mut sink)
    }
}

impl XlfddDrive {
    /// Program the pages covering `[addr, addr + bytes)`; returns when
    /// the last plane finishes. Occupies planes for `tPROG` each.
    pub fn write(&mut self, t_arrive: SimTime, addr: u64, bytes: u64) -> SimTime {
        write_flash(self.flash_mut(), t_arrive, addr, bytes)
    }
}

/// Program pages on a flash array (helper shared with tests).
pub fn write_flash(flash: &mut FlashArray, t_arrive: SimTime, addr: u64, bytes: u64) -> SimTime {
    let page_bytes = flash.config().page_bytes;
    let first = addr / page_bytes;
    let last = (addr + bytes.max(1) - 1) / page_bytes;
    let mut done = SimTime::ZERO;
    for page in first..=last {
        let d = flash.program_page(t_arrive, page * page_bytes);
        done = done.max(d);
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxl_mem::CxlMemConfig;
    use crate::flash::FlashConfig;

    #[test]
    fn dram_write_is_cheap_and_posted() {
        let mut d = HostDram::default();
        let done = d.write(SimTime::ZERO, 0, 128);
        assert!(done.as_us_f64() < 0.5, "{done:?}");
    }

    #[test]
    fn cxl_write_pays_bridge_latency() {
        let mut base = CxlMemDevice::new(CxlMemConfig::default());
        let mut slow = CxlMemDevice::new(CxlMemConfig::default().with_added_latency_us(2.0));
        let t0 = base.write(SimTime::ZERO, 0, 64);
        let t2 = slow.write(SimTime::ZERO, 0, 64);
        assert!(t2 > t0, "bridge latency must apply to writes too");
        assert!(t2.saturating_since(t0).as_us_f64() > 1.0);
    }

    #[test]
    fn flash_program_is_much_slower_than_read() {
        let mut f = FlashArray::new(FlashConfig {
            jitter_mean_ps: 0,
            ..FlashConfig::default()
        });
        let read = f.read_page(SimTime::ZERO, 1 << 20);
        let mut f2 = FlashArray::new(FlashConfig {
            jitter_mean_ps: 0,
            ..FlashConfig::default()
        });
        let prog = f2.program_page(SimTime::ZERO, 1 << 20);
        assert!(
            prog.as_us_f64() > 20.0 * read.as_us_f64(),
            "program {prog:?} vs read {read:?}"
        );
    }

    #[test]
    fn writes_stall_subsequent_reads_on_the_same_plane() {
        // The Discussion's warning, reproduced: one program blocks the
        // plane for ~100 us, so a following read to the same plane waits.
        let mut f = FlashArray::new(FlashConfig {
            jitter_mean_ps: 0,
            ..FlashConfig::default()
        });
        let addr = 0u64;
        f.program_page(SimTime::ZERO, addr);
        let read_after = f.read_page(SimTime::ZERO, addr);
        assert!(
            read_after.as_us_f64() > 100.0,
            "read should queue behind the program: {read_after:?}"
        );
    }

    #[test]
    fn drive_write_spans_pages() {
        let mut d = XlfddDrive::default();
        let done = d.write(SimTime::ZERO, 4096 - 512, 1024);
        // Two pages programmed (parallel if planes differ, serial if not).
        assert!(done.as_us_f64() >= 100.0);
        assert!(done.as_us_f64() <= 210.0, "{done:?}");
    }
}
