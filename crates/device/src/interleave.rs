//! Address interleaving across a homogeneous device array.
//!
//! The paper's configurations all gang multiple devices: 16 XLFDD drives
//! (§4.1.1), 4 NVMe SSDs, and 5 CXL memory expanders interleaved by the
//! NUMA policy (§4.2.2). `Interleave` maps a flat external address to a
//! `(device, local address)` pair at a configurable power-of-two
//! granularity (a 4 kB page for `set_mempolicy` interleaving; a stripe
//! block for storage arrays), and [`DeviceArray`] wraps `Vec<T>` with that
//! routing.

use crate::target::{MemoryTarget, ReadSegment};
use cxlg_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Power-of-two block interleaving over `n` devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interleave {
    /// Stripe block size in bytes (power of two).
    pub granularity: u64,
    /// Number of devices.
    pub n: u32,
}

impl Interleave {
    /// New interleaving; panics unless `granularity` is a power of two and
    /// `n >= 1`.
    pub fn new(granularity: u64, n: u32) -> Self {
        assert!(granularity.is_power_of_two(), "granularity must be 2^k");
        assert!(n >= 1, "need at least one device");
        Interleave { granularity, n }
    }

    /// Route a flat address: which device, and the device-local address.
    #[inline]
    pub fn route(&self, addr: u64) -> (u32, u64) {
        let block = addr / self.granularity;
        let dev = (block % self.n as u64) as u32;
        let local_block = block / self.n as u64;
        (dev, local_block * self.granularity + addr % self.granularity)
    }

    /// Split a read `(addr, bytes)` into per-device pieces along stripe
    /// boundaries, invoking `f(device, local_addr, len)` for each piece in
    /// address order.
    pub fn split_read(&self, addr: u64, bytes: u64, mut f: impl FnMut(u32, u64, u64)) {
        let mut cur = addr;
        let end = addr + bytes;
        while cur < end {
            let stripe_end = (cur / self.granularity + 1) * self.granularity;
            let len = stripe_end.min(end) - cur;
            let (dev, local) = self.route(cur);
            f(dev, local, len);
            cur += len;
        }
    }
}

/// A homogeneous array of devices behind one interleaved address space.
#[derive(Debug, Clone)]
pub struct DeviceArray<T> {
    devices: Vec<T>,
    interleave: Interleave,
}

impl<T: MemoryTarget> DeviceArray<T> {
    /// Build from devices and an interleaving whose `n` matches.
    pub fn new(devices: Vec<T>, interleave: Interleave) -> Self {
        assert_eq!(
            devices.len() as u32,
            interleave.n,
            "interleave width must match device count"
        );
        DeviceArray {
            devices,
            interleave,
        }
    }

    /// Device count.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the array has no devices (cannot happen post-`new`).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The interleaving in use.
    pub fn interleave(&self) -> Interleave {
        self.interleave
    }

    /// Access a device for statistics.
    pub fn device(&self, i: usize) -> &T {
        &self.devices[i]
    }

    /// Mutable device access (for reconfiguring between runs).
    pub fn device_mut(&mut self, i: usize) -> &mut T {
        &mut self.devices[i]
    }

    /// Total reads served across devices.
    pub fn reads_served(&self) -> u64 {
        self.devices.iter().map(|d| d.reads_served()).sum()
    }

    /// Total bytes served across devices.
    pub fn bytes_served(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_served()).sum()
    }
}

impl<T: MemoryTarget> MemoryTarget for DeviceArray<T> {
    fn read(
        &mut self,
        t_arrive: SimTime,
        addr: u64,
        bytes: u64,
        out: &mut Vec<ReadSegment>,
    ) -> SimTime {
        let mut last = SimTime::ZERO;
        let interleave = self.interleave;
        let devices = &mut self.devices;
        interleave.split_read(addr, bytes, |dev, local, len| {
            let r = devices[dev as usize].read(t_arrive, local, len, out);
            last = last.max(r);
        });
        last
    }

    fn alignment(&self) -> u64 {
        self.devices[0].alignment()
    }

    fn max_transfer(&self) -> Option<u64> {
        self.devices[0].max_transfer()
    }

    fn kind(&self) -> &'static str {
        self.devices[0].kind()
    }

    fn reads_served(&self) -> u64 {
        DeviceArray::reads_served(self)
    }

    fn bytes_served(&self) -> u64 {
        DeviceArray::bytes_served(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{HostDram, HostDramConfig};

    #[test]
    fn route_round_robins_blocks() {
        let il = Interleave::new(4096, 4);
        assert_eq!(il.route(0), (0, 0));
        assert_eq!(il.route(4096), (1, 0));
        assert_eq!(il.route(8192), (2, 0));
        assert_eq!(il.route(12288), (3, 0));
        assert_eq!(il.route(16384), (0, 4096));
        assert_eq!(il.route(16384 + 100), (0, 4196));
    }

    #[test]
    fn route_preserves_offset_within_block() {
        let il = Interleave::new(4096, 5);
        let (dev, local) = il.route(4096 * 7 + 123);
        assert_eq!(dev, 2);
        assert_eq!(local % 4096, 123);
    }

    #[test]
    fn split_read_within_one_stripe() {
        let il = Interleave::new(4096, 4);
        let mut pieces = Vec::new();
        il.split_read(100, 200, |d, a, l| pieces.push((d, a, l)));
        assert_eq!(pieces, vec![(0, 100, 200)]);
    }

    #[test]
    fn split_read_across_stripes() {
        let il = Interleave::new(4096, 2);
        let mut pieces = Vec::new();
        il.split_read(4000, 200, |d, a, l| pieces.push((d, a, l)));
        // 96 bytes in stripe 0 (device 0), 104 in stripe 1 (device 1).
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0], (0, 4000, 96));
        assert_eq!(pieces[1], (1, 0, 104));
        assert_eq!(pieces.iter().map(|p| p.2).sum::<u64>(), 200);
    }

    #[test]
    fn split_read_covers_exactly_the_request() {
        let il = Interleave::new(128, 3);
        let mut total = 0;
        il.split_read(1000, 1000, |_, _, l| total += l);
        assert_eq!(total, 1000);
    }

    #[test]
    fn array_routes_reads_to_devices() {
        let dram = |_| HostDram::new(HostDramConfig::default());
        let devices: Vec<HostDram> = (0..4).map(dram).collect();
        let mut arr = DeviceArray::new(devices, Interleave::new(4096, 4));
        let mut out = Vec::new();
        arr.read(SimTime::ZERO, 0, 128, &mut out);
        arr.read(SimTime::ZERO, 4096, 128, &mut out);
        assert_eq!(arr.device(0).reads_served(), 1);
        assert_eq!(arr.device(1).reads_served(), 1);
        assert_eq!(arr.device(2).reads_served(), 0);
        assert_eq!(arr.reads_served(), 2);
        assert_eq!(arr.bytes_served(), 256);
        assert_eq!(arr.len(), 4);
    }

    #[test]
    #[should_panic(expected = "match device count")]
    fn array_rejects_width_mismatch() {
        let devices = vec![HostDram::default()];
        DeviceArray::new(devices, Interleave::new(4096, 2));
    }
}
