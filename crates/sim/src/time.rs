//! Simulated time: picosecond-resolution instants, durations, and bandwidths.
//!
//! All hardware latencies in the paper are quoted in nanoseconds or
//! microseconds and all bandwidths in MB/s; the constructors below mirror
//! those units so model code reads like the paper (`SimDuration::from_us(1.2)`,
//! `Bandwidth::from_mb_per_sec(24_000)`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant in simulated time, measured in picoseconds from simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw picosecond count.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from integer picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> SimDuration {
        SimDuration(ps)
    }

    /// Construct from (possibly fractional) nanoseconds. Panics in debug
    /// builds on negative input.
    #[inline]
    pub fn from_ns(ns: f64) -> SimDuration {
        debug_assert!(ns >= 0.0, "negative duration: {ns} ns");
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Construct from (possibly fractional) microseconds.
    #[inline]
    pub fn from_us(us: f64) -> SimDuration {
        debug_assert!(us >= 0.0, "negative duration: {us} us");
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// Construct from (possibly fractional) milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> SimDuration {
        debug_assert!(ms >= 0.0, "negative duration: {ms} ms");
        SimDuration((ms * PS_PER_MS as f64).round() as u64)
    }

    /// Construct from (possibly fractional) seconds.
    #[inline]
    pub fn from_secs(s: f64) -> SimDuration {
        debug_assert!(s >= 0.0, "negative duration: {s} s");
        SimDuration((s * PS_PER_S as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This duration in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Integer multiple of this duration.
    #[inline]
    pub fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

/// A data rate in bytes per second, with exact integer conversion to
/// per-byte serialization delays.
///
/// Stored as bytes/sec; transfer times are computed in `u128` to avoid
/// overflow (`bytes * PS_PER_S` exceeds `u64` for transfers over ~18 MB).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Construct from MB/s (decimal megabytes, as used throughout the paper).
    #[inline]
    pub const fn from_mb_per_sec(mb: u64) -> Bandwidth {
        Bandwidth(mb * 1_000_000)
    }

    /// Construct from GB/s (decimal gigabytes).
    #[inline]
    pub const fn from_gb_per_sec(gb: u64) -> Bandwidth {
        Bandwidth(gb * 1_000_000_000)
    }

    /// Construct from raw bytes/sec.
    #[inline]
    pub const fn from_bytes_per_sec(b: u64) -> Bandwidth {
        Bandwidth(b)
    }

    /// The rate in bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> u64 {
        self.0
    }

    /// The rate in MB/s (decimal).
    #[inline]
    pub fn mb_per_sec(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` at this rate (rounded up to the next
    /// picosecond so back-to-back transfers can never exceed the rate).
    #[inline]
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        if self.0 == 0 {
            return SimDuration(u64::MAX);
        }
        let ps = (bytes as u128 * PS_PER_S as u128).div_ceil(self.0 as u128);
        SimDuration(ps.min(u64::MAX as u128) as u64)
    }

    /// Bytes that can be moved in `d` at this rate (rounded down).
    #[inline]
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        ((d.0 as u128 * self.0 as u128) / PS_PER_S as u128).min(u64::MAX as u128) as u64
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MB/s", self.mb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_convert() {
        assert_eq!(SimDuration::from_ns(1.0).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1.0).as_ps(), 1_000_000);
        assert_eq!(SimDuration::from_ms(1.0).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs(1.0).as_ps(), PS_PER_S);
        assert!((SimDuration::from_us(1.2).as_us_f64() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn fractional_nanoseconds_round() {
        // 0.5 ns = 500 ps exactly
        assert_eq!(SimDuration::from_ns(0.5).as_ps(), 500);
        // 89.6 B at 24 GB/s is ~3.73 ns; check no truncation-to-zero.
        let bw = Bandwidth::from_mb_per_sec(24_000);
        assert!(bw.transfer_time(90).as_ps() > 0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_ns(10.0);
        assert_eq!(t.as_ps(), 10_000);
        let t2 = t + SimDuration::from_ns(5.0);
        assert_eq!(t2.saturating_since(t).as_ps(), 5_000);
        assert_eq!(t.saturating_since(t2).as_ps(), 0);
        assert_eq!(t.max(t2), t2);
        assert_eq!(t.min(t2), t);
    }

    #[test]
    fn time_add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_us(2.0);
        assert_eq!(t.as_us_f64(), 2.0);
    }

    #[test]
    fn saturating_behaviour() {
        let big = SimTime(u64::MAX - 10);
        let t = big + SimDuration::from_secs(1.0);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(
            SimDuration(5).saturating_sub(SimDuration(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn bandwidth_serialization_delay() {
        // PCIe Gen4 x16 effective: 24,000 MB/s. 128 B should take
        // 128 / 24e9 s = 5.333... ns.
        let bw = Bandwidth::from_mb_per_sec(24_000);
        let d = bw.transfer_time(128);
        assert!((d.as_ns_f64() - 5.333).abs() < 0.01, "{d:?}");
    }

    #[test]
    fn bandwidth_round_trip() {
        let bw = Bandwidth::from_gb_per_sec(12);
        let d = bw.transfer_time(4096);
        // Rounding up means bytes_in(d) >= 4096 is not guaranteed in
        // general, but must be within one byte-time.
        let got = bw.bytes_in(d);
        assert!(got >= 4096, "{got}");
        assert!(got <= 4097, "{got}");
    }

    #[test]
    fn zero_bandwidth_is_infinite_delay() {
        let bw = Bandwidth::from_bytes_per_sec(0);
        assert_eq!(bw.transfer_time(1).as_ps(), u64::MAX);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 3 bytes at 1 GB/s = 3 ns exactly = 3000 ps.
        let bw = Bandwidth::from_gb_per_sec(1);
        assert_eq!(bw.transfer_time(3).as_ps(), 3_000);
        // 1 byte at 3 bytes/sec: 1/3 s, must round UP.
        let slow = Bandwidth::from_bytes_per_sec(3);
        assert_eq!(slow.transfer_time(1).as_ps(), PS_PER_S / 3 + 1);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_ns(10.0);
        assert_eq!(d.mul(3).as_ns_f64(), 30.0);
        assert_eq!(d.max(SimDuration::from_ns(20.0)).as_ns_f64(), 20.0);
        assert_eq!(d.min(SimDuration::from_ns(20.0)).as_ns_f64(), 10.0);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::ZERO + SimDuration::from_us(1.5);
        assert_eq!(format!("{t}"), "1.500us");
        assert_eq!(format!("{}", SimDuration::from_us(0.25)), "0.250us");
    }
}
