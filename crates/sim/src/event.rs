//! The event queue: a monotonic priority queue of `(SimTime, E)` pairs.
//!
//! Ties at the same instant are broken by insertion order (a strictly
//! increasing sequence number), which makes simulations deterministic
//! regardless of `BinaryHeap` internals.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list with a monotonically advancing clock.
///
/// `pop` advances the clock to the time of the event it returns; scheduling
/// into the past is a logic error and panics in debug builds (clamped to
/// `now` in release builds so long simulations degrade gracefully rather
/// than corrupting causality).
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Empty queue with the clock at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Empty queue with pre-reserved capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `t` (clamped to `now` if in the
    /// past; debug-asserts against that).
    #[inline]
    pub fn schedule_at(&mut self, t: SimTime, event: E) {
        debug_assert!(t >= self.now, "scheduling into the past: {t:?} < {:?}", self.now);
        let t = t.max(self.now);
        self.heap.push(Reverse(Entry {
            time: t,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
        self.scheduled_total += 1;
    }

    /// Schedule `event` after a relative delay.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at the current instant (runs after all events
    /// already scheduled for `now`).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Remove and return the next event, advancing the clock to its time.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Time of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime (a cheap progress /
    /// cost metric for simulation benchmarks).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drain every pending event without running it, leaving the clock
    /// unchanged. Used to abort a simulation early.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule_at(SimTime(5), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
        // Relative scheduling now uses the new clock.
        q.schedule_in(SimDuration(50), ());
        assert_eq!(q.peek_time(), Some(SimTime(150)));
    }

    #[test]
    fn schedule_now_runs_after_existing_same_time_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        q.schedule_now(2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime(i), i);
        }
        assert_eq!(q.len(), 10);
        assert!(!q.is_empty());
        assert_eq!(q.scheduled_total(), 10);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 10);
    }

    #[test]
    fn interleaved_schedule_and_pop_is_causal() {
        // A small cascade: each event schedules a successor; times must be
        // non-decreasing throughout.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), 0u32);
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, depth)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
            if depth < 50 {
                q.schedule_in(SimDuration(depth as u64 % 7), depth + 1);
            }
        }
        assert_eq!(count, 51);
    }
}
