//! Rate-limited server: models a device's IOPS ceiling.
//!
//! A server with rate `S` ops/sec accepts at most one operation start per
//! `1/S` interval; operations arriving faster queue up. This produces the
//! `T <= S * d` term of the paper's throughput model (Equation 2's first
//! term) in the full-system simulation. For multi-unit devices (16 XLFDD
//! drives, multiple flash dies) use one `RateServer` per unit and route by
//! address, or a single server with the aggregate rate when unit-level
//! detail is not needed.

use crate::time::{SimDuration, SimTime, PS_PER_S};

/// A FIFO server admitting one operation start per `1/rate` interval.
#[derive(Debug, Clone)]
pub struct RateServer {
    /// Minimum spacing between operation starts, in ps.
    interval: SimDuration,
    next_slot: SimTime,
    ops: u64,
    /// Cumulative queueing delay experienced by operations.
    queued: SimDuration,
}

impl RateServer {
    /// Server with the given operation rate (ops per second). A rate of 0
    /// means "never admits" (slot times saturate to the far future).
    pub fn from_ops_per_sec(rate: f64) -> Self {
        assert!(rate >= 0.0, "negative rate");
        let interval = if rate == 0.0 {
            SimDuration(u64::MAX)
        } else {
            SimDuration((PS_PER_S as f64 / rate).round().max(1.0) as u64)
        };
        RateServer {
            interval,
            next_slot: SimTime::ZERO,
            ops: 0,
            queued: SimDuration::ZERO,
        }
    }

    /// Server admitting operations at `mega_ops` million operations/sec
    /// (the paper quotes device random-read performance in MIOPS).
    pub fn from_miops(mega_ops: f64) -> Self {
        Self::from_ops_per_sec(mega_ops * 1e6)
    }

    /// An unconstrained server (infinite IOPS) — used for host DRAM, whose
    /// random-read rate is "excessively high" per §3.3.1.
    pub fn unlimited() -> Self {
        RateServer {
            interval: SimDuration::ZERO,
            next_slot: SimTime::ZERO,
            ops: 0,
            queued: SimDuration::ZERO,
        }
    }

    /// Admit an operation arriving at `now`; returns the time its service
    /// *starts* (>= now).
    #[inline]
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.next_slot);
        self.next_slot = start + self.interval;
        self.ops += 1;
        self.queued += start.saturating_since(now);
        start
    }

    /// Minimum spacing between starts.
    #[inline]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Operations admitted so far.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mean queueing delay per admitted operation.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.ops == 0 {
            SimDuration::ZERO
        } else {
            SimDuration(self.queued.as_ps() / self.ops)
        }
    }

    /// Achieved operation rate over `[0, horizon]`, in ops/sec.
    pub fn achieved_ops_per_sec(&self, horizon: SimTime) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Reset counters and availability.
    pub fn reset(&mut self) {
        self.next_slot = SimTime::ZERO;
        self.ops = 0;
        self.queued = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_is_one_over_rate() {
        // 1 MIOPS => 1 us between starts.
        let mut s = RateServer::from_miops(1.0);
        let t0 = s.admit(SimTime::ZERO);
        let t1 = s.admit(SimTime::ZERO);
        let t2 = s.admit(SimTime::ZERO);
        assert_eq!(t0, SimTime::ZERO);
        assert_eq!(t1.as_us_f64(), 1.0);
        assert_eq!(t2.as_us_f64(), 2.0);
    }

    #[test]
    fn slack_arrivals_are_not_delayed() {
        let mut s = RateServer::from_miops(1.0);
        s.admit(SimTime::ZERO);
        // Arrives 10 us later, long after the next slot opened.
        let t = s.admit(SimTime(10_000_000));
        assert_eq!(t.as_us_f64(), 10.0);
        assert_eq!(s.mean_queue_delay(), SimDuration::ZERO);
    }

    #[test]
    fn unlimited_never_delays() {
        let mut s = RateServer::unlimited();
        for _ in 0..1000 {
            assert_eq!(s.admit(SimTime(7)), SimTime(7));
        }
    }

    #[test]
    fn achieved_rate_matches_configured_when_saturated() {
        let mut s = RateServer::from_miops(11.0); // one XLFDD drive
        let mut last = SimTime::ZERO;
        for _ in 0..100_000 {
            last = s.admit(SimTime::ZERO);
        }
        let achieved = s.achieved_ops_per_sec(last) / 1e6;
        assert!((achieved - 11.0).abs() / 11.0 < 0.01, "{achieved} MIOPS");
    }

    #[test]
    fn queue_delay_accumulates() {
        let mut s = RateServer::from_miops(1.0);
        s.admit(SimTime::ZERO); // starts 0
        s.admit(SimTime::ZERO); // starts 1us, queued 1us
        s.admit(SimTime::ZERO); // starts 2us, queued 2us
        assert_eq!(s.mean_queue_delay().as_us_f64(), 1.0);
        assert_eq!(s.ops(), 3);
    }

    #[test]
    fn zero_rate_saturates() {
        let mut s = RateServer::from_ops_per_sec(0.0);
        let t0 = s.admit(SimTime::ZERO);
        assert_eq!(t0, SimTime::ZERO);
        // The second op never gets a slot (saturated far future).
        let t1 = s.admit(SimTime::ZERO);
        assert_eq!(t1, SimTime::MAX);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = RateServer::from_miops(1.0);
        s.admit(SimTime::ZERO);
        s.admit(SimTime::ZERO);
        s.reset();
        assert_eq!(s.ops(), 0);
        assert_eq!(s.admit(SimTime::ZERO), SimTime::ZERO);
    }
}
