//! Deterministic pseudo-random number generation for the simulator.
//!
//! The hardware models need cheap, seedable randomness (flash die
//! selection, service-time jitter, random-read microbenchmark addresses)
//! that is stable across platforms and releases. We implement SplitMix64
//! (for seeding) and xoshiro256** (for streams) directly — ~40 lines —
//! rather than pulling `rand` into the foundational crate; the graph
//! generators in `cxlg-graph` use `rand` where distribution machinery is
//! genuinely useful.

/// SplitMix64: used to expand a single `u64` seed into xoshiro state.
/// (Sebastiano Vigna's public-domain reference algorithm.)
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator. Fast, 256-bit state, passes
/// BigCrush; plenty for simulation jitter and address streams.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 so that any `u64` (including 0) yields a good
    /// state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (unbiased enough for simulation purposes; exact rejection would cost
    /// a branch we do not need here). Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed sample with the given mean. Used for
    /// service-time jitter in device models.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0).
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Xoshiro256StarStar::seed_from_u64(0);
        // Must not collapse to all-zero outputs.
        assert!((0..10).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
        // bound = 1 always yields 0.
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn next_range_within_bounds() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.next_range(100, 200);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Xoshiro256StarStar::seed_from_u64(13);
        let n = 200_000;
        let mean_target = 4.0;
        let sum: f64 = (0..n).map(|_| r.next_exp(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() / mean_target < 0.02, "{mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.next_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "{rate}");
    }
}
