//! Measurement primitives: online moments, time-weighted levels, and
//! power-of-two histograms.
//!
//! These feed the per-run metrics reported by the figure harnesses
//! (observed latency distributions for Fig. 9, outstanding-request counts
//! for Fig. 10, throughput timelines for Fig. 4/11).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Welford online mean/variance with min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    ///
    /// The merge is *exact* in the sense the shard runner needs: it is a
    /// pure function of the two accumulators' field values (Chan et al.'s
    /// pairwise update), so folding the same shards in the same order
    /// always produces bit-identical results. It is **not** exactly
    /// associative in floating point — merging in a different order can
    /// change low-order bits — which is why every parallel consumer must
    /// fold shards in a fixed, input-defined order (see
    /// [`OnlineStats::merge_ordered`]).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fold `shards` left-to-right into one accumulator. The reduction
    /// order is the iteration order — callers hand shards over in a
    /// deterministic, input-defined order (shard index), which is what
    /// makes the merged statistics byte-identical at any thread count.
    pub fn merge_ordered<'a>(shards: impl IntoIterator<Item = &'a OnlineStats>) -> OnlineStats {
        let mut acc = OnlineStats::new();
        for s in shards {
            acc.merge(s);
        }
        acc
    }

    /// Bit-exact digest of the accumulator state (count, mean, m2,
    /// min, max, by their raw bit patterns). Two accumulators fingerprint
    /// equal iff they would serialize identically — the differential
    /// test harness uses this to catch *any* divergence in a parallel
    /// reduction, including low-order float bits that approximate
    /// comparisons would wave through.
    pub fn fingerprint(&self) -> u64 {
        // SplitMix64 over the five field words; order-sensitive.
        let mut h: u64 = 0x9E3779B97F4A7C15;
        for w in [
            self.n,
            self.mean.to_bits(),
            self.m2.to_bits(),
            self.min.to_bits(),
            self.max.to_bits(),
        ] {
            h ^= w;
            h = h.wrapping_mul(0xBF58476D1CE4E5B9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94D049BB133111EB);
            h ^= h >> 31;
        }
        h
    }
}

/// Time-weighted average of a piecewise-constant level (queue depth,
/// outstanding requests, cache occupancy).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeWeighted {
    level: f64,
    weighted: f64,
    last: SimTime,
    max_level: f64,
}

impl TimeWeighted {
    /// Accumulator starting at level 0 at t = 0.
    pub fn new() -> Self {
        TimeWeighted {
            level: 0.0,
            weighted: 0.0,
            last: SimTime::ZERO,
            max_level: 0.0,
        }
    }

    /// Record that the level changed to `level` at `now`.
    #[inline]
    pub fn set(&mut self, now: SimTime, level: f64) {
        let dt = now.saturating_since(self.last).as_ps() as f64;
        self.weighted += self.level * dt;
        self.level = level;
        self.last = self.last.max(now);
        self.max_level = self.max_level.max(level);
    }

    /// Add `delta` to the current level at `now`.
    #[inline]
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let level = self.level + delta;
        self.set(now, level);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Maximum level ever set.
    pub fn max_level(&self) -> f64 {
        self.max_level
    }

    /// Time-weighted mean level over `[0, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last).as_ps() as f64;
        let total = self.weighted + self.level * dt;
        let span = now.as_ps() as f64;
        if span == 0.0 {
            0.0
        } else {
            total / span
        }
    }
}

/// Power-of-two bucketed histogram for u64 values (latencies in ps,
/// transfer sizes in bytes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets[i]` counts values with `floor(log2(v)) == i` (v = 0 goes to
    /// bucket 0).
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram covering the full u64 range (64 buckets + zero).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
    }

    /// Record a [`SimDuration`] (in ps).
    #[inline]
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_ps());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: returns the upper bound of the bucket
    /// containing quantile `q` in [0, 1].
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i >= 64 { u64::MAX } else { (1u64 << i).saturating_sub(0) };
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(bucket_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i >= 64 { u64::MAX } else { 1u64 << i }, c))
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..400].iter().for_each(|&x| left.push(x));
        xs[400..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_ordered_equals_manual_fold_bit_for_bit() {
        // Three shards with deliberately awkward values; the helper must
        // reproduce the exact left-to-right fold, bitwise.
        let mut shards = vec![OnlineStats::new(), OnlineStats::new(), OnlineStats::new()];
        for (i, s) in shards.iter_mut().enumerate() {
            for k in 0..50 + i {
                s.push(((i * 37 + k) as f64).sin() * 1e3);
            }
        }
        let merged = OnlineStats::merge_ordered(shards.iter());
        let mut manual = OnlineStats::new();
        for s in &shards {
            manual.merge(s);
        }
        assert_eq!(merged.fingerprint(), manual.fingerprint());
        assert_eq!(merged.mean().to_bits(), manual.mean().to_bits());
        assert_eq!(merged.variance().to_bits(), manual.variance().to_bits());
    }

    #[test]
    fn fingerprint_detects_any_field_tamper() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for x in [1.0, 2.5, -3.0, 7.25] {
            a.push(x);
            b.push(x);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        // One extra observation — or a re-streamed (rather than merged)
        // reduction — must change the digest.
        b.push(1e-9);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Even a tamper that keeps the mean identical is caught.
        let mut c = a.clone();
        c.push(a.mean());
        assert!((c.mean() - a.mean()).abs() < 1e-12);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn time_weighted_level() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime(0), 2.0); // level 2 over [0, 10)
        tw.set(SimTime(10), 4.0); // level 4 over [10, 20)
        let mean = tw.mean(SimTime(20));
        assert!((mean - 3.0).abs() < 1e-12, "{mean}");
        assert_eq!(tw.max_level(), 4.0);
        assert_eq!(tw.level(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new();
        tw.add(SimTime(0), 1.0);
        tw.add(SimTime(5), 1.0);
        tw.add(SimTime(10), -2.0);
        // level: 1 over [0,5), 2 over [5,10), 0 after.
        let mean = tw.mean(SimTime(10));
        assert!((mean - 1.5).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - (0 + 1 + 2 + 3 + 1024) as f64 / 5.0).abs() < 1e-12);
        let nz = h.nonzero_buckets();
        // 0 and 1 share bucket 0? No: 0 -> bucket 0, 1 -> bucket 1 (64-63).
        assert!(nz.iter().map(|&(_, c)| c).sum::<u64>() == 5);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let q50 = h.quantile_upper_bound(0.5);
        let q99 = h.quantile_upper_bound(0.99);
        assert!(q50 <= q99);
        assert!(q99 >= 512);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 20.0).abs() < 1e-12);
    }
}
