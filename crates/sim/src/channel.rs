//! Bandwidth-serialized FIFO channel.
//!
//! Models a transmission resource (one direction of a PCIe link, a DRAM
//! channel, a flash-die data bus): transfers are serialized back-to-back at
//! the channel rate, so a transfer submitted while the channel is busy
//! starts when the previous one finishes. This single `next_free` register
//! is exactly the behaviour that makes aggregate throughput obey
//! `T <= W` (Equation 2's third term) in the full-system simulation.

use crate::time::{Bandwidth, SimDuration, SimTime};

/// One direction of a shared link, serializing transfers at a fixed rate.
#[derive(Debug, Clone)]
pub struct BandwidthChannel {
    rate: Bandwidth,
    next_free: SimTime,
    /// Total bytes accepted, for utilization accounting.
    bytes_total: u64,
    /// Total time the channel has spent transmitting.
    busy: SimDuration,
    transfers: u64,
}

impl BandwidthChannel {
    /// A channel with the given line rate.
    pub fn new(rate: Bandwidth) -> Self {
        BandwidthChannel {
            rate,
            next_free: SimTime::ZERO,
            bytes_total: 0,
            busy: SimDuration::ZERO,
            transfers: 0,
        }
    }

    /// The configured line rate.
    #[inline]
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Submit a transfer of `bytes` at time `now`; returns the completion
    /// time (when the last byte has left the channel).
    ///
    /// FIFO ordering is inherent: each call pushes `next_free` forward, so
    /// later submissions finish later.
    #[inline]
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let ser = self.rate.transfer_time(bytes);
        let start = now.max(self.next_free);
        let done = start + ser;
        self.next_free = done;
        self.bytes_total += bytes;
        self.busy += ser;
        self.transfers += 1;
        done
    }

    /// Earliest time a new transfer could start.
    #[inline]
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Would a transfer submitted at `now` start immediately?
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.next_free <= now
    }

    /// Total bytes pushed through the channel.
    #[inline]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Number of transfers served.
    #[inline]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Cumulative transmitting time.
    #[inline]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Fraction of `[0, horizon]` spent transmitting.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.as_ps() == 0 {
            return 0.0;
        }
        self.busy.as_ps() as f64 / horizon.as_ps() as f64
    }

    /// Achieved throughput over `[0, horizon]` in MB/s.
    pub fn achieved_mb_per_sec(&self, horizon: SimTime) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes_total as f64 / 1e6 / secs
    }

    /// Reset counters and availability (e.g. between measurement phases).
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.bytes_total = 0;
        self.busy = SimDuration::ZERO;
        self.transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps(g: u64) -> Bandwidth {
        Bandwidth::from_gb_per_sec(g)
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut ch = BandwidthChannel::new(gbps(1));
        // 1000 bytes at 1 GB/s = 1 us.
        let done = ch.transmit(SimTime::ZERO, 1000);
        assert_eq!(done.as_us_f64(), 1.0);
    }

    #[test]
    fn busy_channel_serializes() {
        let mut ch = BandwidthChannel::new(gbps(1));
        let d1 = ch.transmit(SimTime::ZERO, 1000);
        let d2 = ch.transmit(SimTime::ZERO, 1000);
        assert_eq!(d2.as_us_f64(), 2.0);
        assert!(d2 > d1);
        // A transfer arriving after the channel drained starts at its own time.
        let d3 = ch.transmit(SimTime(10 * 1_000_000), 1000);
        assert_eq!(d3.as_us_f64(), 11.0);
    }

    #[test]
    fn throughput_never_exceeds_rate() {
        let mut ch = BandwidthChannel::new(Bandwidth::from_mb_per_sec(24_000));
        let mut last = SimTime::ZERO;
        for _ in 0..10_000 {
            last = ch.transmit(SimTime::ZERO, 128);
        }
        let achieved = ch.achieved_mb_per_sec(last);
        assert!(
            achieved <= 24_000.0 + 1.0,
            "achieved {achieved} MB/s exceeds line rate"
        );
        // And it should be *at* the line rate when saturated.
        assert!(achieved > 23_900.0, "achieved {achieved} MB/s");
    }

    #[test]
    fn utilization_accounting() {
        let mut ch = BandwidthChannel::new(gbps(1));
        ch.transmit(SimTime::ZERO, 500); // 0.5 us busy
        let horizon = SimTime(1_000_000); // 1 us
        assert!((ch.utilization(horizon) - 0.5).abs() < 1e-9);
        assert_eq!(ch.bytes_total(), 500);
        assert_eq!(ch.transfers(), 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ch = BandwidthChannel::new(gbps(1));
        ch.transmit(SimTime::ZERO, 1000);
        ch.reset();
        assert!(ch.is_idle_at(SimTime::ZERO));
        assert_eq!(ch.bytes_total(), 0);
        assert_eq!(ch.busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn zero_horizon_stats_are_zero() {
        let ch = BandwidthChannel::new(gbps(1));
        assert_eq!(ch.utilization(SimTime::ZERO), 0.0);
        assert_eq!(ch.achieved_mb_per_sec(SimTime::ZERO), 0.0);
    }
}
