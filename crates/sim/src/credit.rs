//! Credit pool: a counting semaphore for outstanding-request limits.
//!
//! The PCIe specification bounds the number of outstanding non-posted reads
//! (`Nmax` = 256 for Gen3, 768 for Gen4/5 — §3.2 of the paper), and the CXL
//! prototype's FPGA bounds its own tags at 128 (§4.2.2). Both are modeled
//! as a `CreditPool`: issuing a read acquires a credit, the completion
//! releases it, and would-be issuers register as waiters served FIFO.
//! Little's Law (`N d = T L`, Equation 3) then emerges from the simulation
//! rather than being asserted.

use crate::time::SimTime;
use std::collections::VecDeque;

/// A counting semaphore with FIFO waiters identified by opaque `u64` tokens.
#[derive(Debug, Clone)]
pub struct CreditPool {
    capacity: u64,
    available: u64,
    waiters: VecDeque<u64>,
    /// Time-weighted accumulator of in-use credits, for measuring the mean
    /// number of outstanding requests (the `N` in Little's Law).
    in_use_weighted: u128,
    last_update: SimTime,
    high_water: u64,
    acquisitions: u64,
}

impl CreditPool {
    /// Pool with `capacity` credits, all initially available.
    pub fn new(capacity: u64) -> Self {
        CreditPool {
            capacity,
            available: capacity,
            waiters: VecDeque::new(),
            in_use_weighted: 0,
            last_update: SimTime::ZERO,
            high_water: 0,
            acquisitions: 0,
        }
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update).as_ps() as u128;
        self.in_use_weighted += dt * (self.capacity - self.available) as u128;
        self.last_update = self.last_update.max(now);
    }

    /// Try to take one credit at `now`. On success returns `true`; on
    /// failure the caller should register via [`CreditPool::enqueue_waiter`].
    #[inline]
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.advance(now);
        if self.available > 0 {
            self.available -= 1;
            self.acquisitions += 1;
            self.high_water = self.high_water.max(self.capacity - self.available);
            true
        } else {
            false
        }
    }

    /// Register `token` to be woken (returned by `release`) when a credit
    /// frees up.
    #[inline]
    pub fn enqueue_waiter(&mut self, token: u64) {
        self.waiters.push_back(token);
    }

    /// Return one credit at `now`. If a waiter is queued, the credit is
    /// handed directly to it and its token is returned (the pool count does
    /// not change); otherwise the credit goes back to the pool.
    #[inline]
    pub fn release(&mut self, now: SimTime) -> Option<u64> {
        self.advance(now);
        if let Some(w) = self.waiters.pop_front() {
            // Credit transferred to the waiter: still in use.
            self.acquisitions += 1;
            Some(w)
        } else {
            debug_assert!(self.available < self.capacity, "release without acquire");
            self.available = (self.available + 1).min(self.capacity);
            None
        }
    }

    /// Total credits.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Credits currently free.
    #[inline]
    pub fn available(&self) -> u64 {
        self.available
    }

    /// Credits currently held.
    #[inline]
    pub fn in_use(&self) -> u64 {
        self.capacity - self.available
    }

    /// Waiters currently queued.
    #[inline]
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Maximum simultaneous credits ever held.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Total successful acquisitions (including hand-offs to waiters).
    #[inline]
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Time-averaged number of credits in use over `[0, now]` — the mean
    /// outstanding-request count `N` of Little's Law.
    pub fn mean_in_use(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        if now.as_ps() == 0 {
            return 0.0;
        }
        self.in_use_weighted as f64 / now.as_ps() as f64
    }

    /// Exact credit·picosecond integral of in-use credits over `[0, now]`
    /// — the numerator of [`CreditPool::mean_in_use`], exposed as an
    /// integer so independently simulated round shards can sum their
    /// integrals and take a *single* division, reproducing the coupled
    /// run's mean bit-for-bit instead of averaging per-shard floats.
    pub fn in_use_integral(&mut self, now: SimTime) -> u128 {
        self.advance(now);
        self.in_use_weighted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_exhausted() {
        let mut p = CreditPool::new(3);
        assert!(p.try_acquire(SimTime::ZERO));
        assert!(p.try_acquire(SimTime::ZERO));
        assert!(p.try_acquire(SimTime::ZERO));
        assert!(!p.try_acquire(SimTime::ZERO));
        assert_eq!(p.in_use(), 3);
        assert_eq!(p.available(), 0);
        assert_eq!(p.high_water(), 3);
    }

    #[test]
    fn release_returns_credit_when_no_waiters() {
        let mut p = CreditPool::new(1);
        assert!(p.try_acquire(SimTime::ZERO));
        assert_eq!(p.release(SimTime(10)), None);
        assert_eq!(p.available(), 1);
        assert!(p.try_acquire(SimTime(10)));
    }

    #[test]
    fn release_hands_off_to_fifo_waiter() {
        let mut p = CreditPool::new(1);
        assert!(p.try_acquire(SimTime::ZERO));
        assert!(!p.try_acquire(SimTime::ZERO));
        p.enqueue_waiter(7);
        p.enqueue_waiter(8);
        assert_eq!(p.release(SimTime(5)), Some(7));
        // Credit went straight to waiter 7: pool still exhausted.
        assert_eq!(p.available(), 0);
        assert_eq!(p.release(SimTime(6)), Some(8));
        assert_eq!(p.release(SimTime(7)), None);
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn acquisition_count_includes_handoffs() {
        let mut p = CreditPool::new(1);
        assert!(p.try_acquire(SimTime::ZERO));
        p.enqueue_waiter(1);
        p.release(SimTime(1));
        assert_eq!(p.acquisitions(), 2);
    }

    #[test]
    fn mean_in_use_is_time_weighted() {
        let mut p = CreditPool::new(4);
        // 2 credits held for the whole first microsecond...
        assert!(p.try_acquire(SimTime::ZERO));
        assert!(p.try_acquire(SimTime::ZERO));
        p.release(SimTime(1_000_000));
        p.release(SimTime(1_000_000));
        // ...then zero held for the second microsecond.
        let mean = p.mean_in_use(SimTime(2_000_000));
        assert!((mean - 1.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn in_use_integral_is_the_exact_mean_numerator() {
        let mut p = CreditPool::new(4);
        assert!(p.try_acquire(SimTime::ZERO));
        assert!(p.try_acquire(SimTime::ZERO));
        p.release(SimTime(1_000_000));
        p.release(SimTime(1_500_000));
        // 2 credits for 1 ms + 1 credit for 0.5 ms = 2.5e6 credit·ps.
        let end = SimTime(2_000_000);
        assert_eq!(p.in_use_integral(end), 2_500_000);
        let mean = p.mean_in_use(end);
        assert_eq!(mean.to_bits(), (2_500_000f64 / 2_000_000f64).to_bits());
    }

    #[test]
    fn littles_law_shape() {
        // Hold exactly c credits continuously; mean in-use == c.
        let mut p = CreditPool::new(8);
        for _ in 0..8 {
            assert!(p.try_acquire(SimTime::ZERO));
        }
        let mean = p.mean_in_use(SimTime(1_000));
        assert!((mean - 8.0).abs() < 1e-9);
    }
}
