//! # cxlg-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the timing substrate used by every hardware model in
//! the `cxl-gpu-graph` workspace: simulated time, an event queue, and a small
//! set of queueing-theory building blocks (bandwidth-serialized channels,
//! rate-limited servers, credit pools) from which the PCIe link, the CXL
//! memory prototype, the flash drives and the GPU warp scheduler are
//! assembled.
//!
//! ## Design notes
//!
//! * **Time** is an integer number of **picoseconds** ([`SimTime`],
//!   [`SimDuration`]). Picosecond resolution keeps byte-level serialization
//!   delays on a 24 GB/s link (≈41.7 ps/byte) exact without floating-point
//!   drift, while a `u64` still spans ~213 days of simulated time.
//! * **Determinism**: the engine has no wall-clock or OS dependencies, and
//!   ties between events scheduled for the same instant are broken by
//!   insertion order. Every stochastic model draws from the seeded
//!   [`rng::Xoshiro256StarStar`] generator. Two runs with identical
//!   configurations produce bit-identical results, which the test-suite and
//!   the paper-figure harnesses rely on.
//! * **No inversion of control**: rather than a trait-object component
//!   framework, [`EventQueue`] is a plain priority queue and the *driver*
//!   (in `cxlg-core`) owns the event loop plus all component state. This
//!   keeps borrows simple and the hot loop monomorphic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod credit;
pub mod event;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use channel::BandwidthChannel;
pub use credit::CreditPool;
pub use event::EventQueue;
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use server::RateServer;
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use time::{Bandwidth, SimDuration, SimTime};
