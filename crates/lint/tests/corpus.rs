//! Rule-by-rule corpus: every rule is proven by a must-flag fixture and
//! a must-pass fixture under `tests/corpus/` (which the workspace
//! walker deliberately skips — fixtures are *inputs* to the lint, not
//! workspace source).
//!
//! Fixtures are analyzed under a synthetic `crates/demo/src/lib.rs`
//! path so the source-context rules apply (the real path of a fixture,
//! `…/tests/corpus/…`, would classify as test context and mute
//! `D1`–`D4`/`D6`).

use cxlg_lint::rules::{analyze_source, Finding};

/// Analyze a corpus fixture as if it were ordinary crate source.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    analyze_source("crates/demo/src/lib.rs", &source)
}

fn active<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    fs.iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .collect()
}

#[test]
fn d1_flag_fixture_is_caught() {
    let fs = lint_fixture("d1_flag.rs");
    let d1 = active(&fs, "D1");
    assert_eq!(d1.len(), 2, "chained .keys() and for-loop: {fs:?}");
    assert!(d1[0].message.contains("keys"), "{}", d1[0].message);
    assert!(d1[1].message.contains("for"), "{}", d1[1].message);
}

#[test]
fn d1_pass_fixture_is_clean() {
    let fs = lint_fixture("d1_pass.rs");
    assert!(fs.is_empty(), "keyed lookup / BTreeMap / test module: {fs:?}");
}

#[test]
fn d2_flag_fixture_is_caught() {
    let fs = lint_fixture("d2_flag.rs");
    // Instant::now once; the SystemTime *type* is banned wherever it
    // appears (import, return type, ::now), because any SystemTime
    // value is a wall-clock read.
    assert_eq!(active(&fs, "D2").len(), 4, "{fs:?}");
}

#[test]
fn d2_pass_fixture_is_clean_with_one_justified_escape() {
    let fs = lint_fixture("d2_pass.rs");
    assert!(active(&fs, "D2").is_empty(), "{fs:?}");
    let suppressed: Vec<_> = fs.iter().filter(|f| f.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 1);
    assert!(
        suppressed[0]
            .suppressed
            .as_deref()
            .unwrap()
            .contains("progress display"),
        "reason must travel with the suppression"
    );
}

#[test]
fn d3_flag_fixture_is_caught() {
    let fs = lint_fixture("d3_flag.rs");
    assert_eq!(active(&fs, "D3").len(), 2, "thread_rng + from_entropy: {fs:?}");
}

#[test]
fn d3_pass_fixture_is_clean() {
    let fs = lint_fixture("d3_pass.rs");
    assert!(fs.is_empty(), "seeded construction only: {fs:?}");
}

#[test]
fn d4_flag_fixture_is_caught() {
    let fs = lint_fixture("d4_flag.rs");
    assert_eq!(
        active(&fs, "D4").len(),
        3,
        "`+=` fold, turbofish sum, annotated sum: {fs:?}"
    );
}

#[test]
fn d4_pass_fixture_is_clean_with_one_justified_escape() {
    let fs = lint_fixture("d4_pass.rs");
    assert!(active(&fs, "D4").is_empty(), "{fs:?}");
    assert_eq!(fs.iter().filter(|f| f.suppressed.is_some()).count(), 1);
}

#[test]
fn d5_flag_fixture_is_caught() {
    let fs = lint_fixture("d5_flag.rs");
    assert_eq!(
        active(&fs, "D5").len(),
        2,
        "bare unsafe impl + bare unsafe block: {fs:?}"
    );
}

#[test]
fn d5_pass_fixture_is_clean() {
    let fs = lint_fixture("d5_pass.rs");
    assert!(fs.is_empty(), "SAFETY-commented unsafe: {fs:?}");
}

#[test]
fn d5_applies_even_in_test_context_paths() {
    // D5 is the one rule test context does not mute: re-analyze the
    // flag fixture under a tests/ path and it must still flag.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/d5_flag.rs");
    let source = std::fs::read_to_string(path).unwrap();
    let fs = analyze_source("crates/demo/tests/t.rs", &source);
    assert_eq!(active(&fs, "D5").len(), 2, "{fs:?}");
}

#[test]
fn d6_flag_fixture_is_caught() {
    let fs = lint_fixture("d6_flag.rs");
    assert_eq!(
        active(&fs, "D6").len(),
        3,
        "env::var + available_parallelism + current_num_threads: {fs:?}"
    );
}

#[test]
fn d6_pass_fixture_is_clean() {
    let fs = lint_fixture("d6_pass.rs");
    assert!(fs.is_empty(), "ctx-threaded configuration: {fs:?}");
}

#[test]
fn well_formed_pragma_suppresses_and_keeps_its_reason() {
    let fs = lint_fixture("pragma_ok.rs");
    assert!(
        fs.iter().all(|f| f.suppressed.is_some()),
        "no active findings: {fs:?}"
    );
    assert_eq!(fs.len(), 1);
    assert!(fs[0].suppressed.as_deref().unwrap().contains("byte-diff gate"));
}

#[test]
fn pragma_without_reason_is_p0_and_does_not_suppress() {
    let fs = lint_fixture("pragma_missing_reason.rs");
    assert_eq!(active(&fs, "P0").len(), 1, "{fs:?}");
    assert_eq!(
        active(&fs, "D6").len(),
        1,
        "the underlying finding must stay active: {fs:?}"
    );
}

#[test]
fn every_rule_has_flag_and_pass_coverage() {
    // Self-check on the corpus itself: a fixture pair exists on disk
    // for each D rule, so a future rule can't land without one.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for rule in ["d1", "d2", "d3", "d4", "d5", "d6"] {
        for kind in ["flag", "pass"] {
            let f = dir.join(format!("{rule}_{kind}.rs"));
            assert!(f.exists(), "missing corpus fixture {}", f.display());
        }
    }
}
