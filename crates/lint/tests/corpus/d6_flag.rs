// Must-flag: D6 — output depending on the host environment.
fn scale_from_env() -> u32 {
    std::env::var("CXLG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

fn shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool_width() -> usize {
    rayon::current_num_threads()
}
