// Must-pass: D2 — simulated time only; any telemetry wall-clock is
// pragma'd with its reason.
fn simulate(mut now_ps: u64, step_ps: u64, steps: u64) -> u64 {
    for _ in 0..steps {
        now_ps += step_ps;
    }
    now_ps
}

fn progress_line(done: usize, total: usize) {
    // cxlg-lint: allow(D2) -- operator progress display only; never serialized into results
    let t = std::time::Instant::now();
    eprintln!("[{done}/{total}] at {:?}", t);
}
