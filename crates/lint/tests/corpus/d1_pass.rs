// Must-pass: D1 — keyed HashMap lookup is fine; ordering comes from a
// BTreeMap or a sort.
use std::collections::{BTreeMap, HashMap};

struct Registry {
    by_name: HashMap<String, u32>,
    ordered: BTreeMap<String, u32>,
}

impl Registry {
    // Keyed operations never observe hash order.
    fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    // BTreeMap iteration is deterministic by construction.
    fn names(&self) -> Vec<String> {
        self.ordered.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    // Test context: hash iteration is allowed because nothing a test
    // prints lands in result JSON.
    #[test]
    fn hash_iteration_is_fine_here() {
        let mut s = HashSet::new();
        s.insert(1u32);
        for v in &s {
            let _ = v;
        }
    }
}
