// Must-flag: D1 — observing hash order.
use std::collections::{HashMap, HashSet};

struct Registry {
    by_name: HashMap<String, u32>,
}

impl Registry {
    // Chained iteration on a hash-typed field: flagged.
    fn names(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect()
    }
}

fn dedup(ids: &[u32]) -> Vec<u32> {
    let mut seen = HashSet::new();
    for id in ids {
        seen.insert(*id);
    }
    let mut out = Vec::new();
    // Direct `for … in` over a hash set: flagged.
    for id in &seen {
        out.push(*id);
    }
    out
}
