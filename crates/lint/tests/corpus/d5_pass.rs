// Must-pass: D5 — every unsafe block/impl carries its SAFETY argument;
// `unsafe fn` declarations shift the obligation to callers.
struct ScatterPtr(*mut u64);

// SAFETY: every writer receives a disjoint slot index from an atomic
// fetch_add, so no two threads ever write the same element; the buffer
// outlives the scope that hands out slots.
unsafe impl Send for ScatterPtr {}

fn write_slot(p: &ScatterPtr, idx: usize, val: u64) {
    // SAFETY: idx came from the slot allocator, which never exceeds the
    // buffer length established at construction.
    unsafe {
        *p.0.add(idx) = val;
    }
}

unsafe fn unchecked_get(xs: &[u64], i: usize) -> u64 {
    // SAFETY: caller contract — i < xs.len().
    unsafe { *xs.get_unchecked(i) }
}
