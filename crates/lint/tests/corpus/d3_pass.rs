// Must-pass: D3 — every stream derives from an explicit seed, so runs
// are reproducible from the printed configuration.
fn shuffle_ids(ids: &mut Vec<u32>, seed: u64) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
}

fn per_vertex_stream(seed: u64, vertex: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(seed ^ vertex.wrapping_mul(0x9E3779B97F4A7C15))
}
