// Must-flag: D4 — float accumulation outside the approved helpers.
fn mean(xs: &[f64]) -> f64 {
    let mut acc: f64 = 0.0;
    for x in xs {
        acc += *x;
    }
    acc / xs.len() as f64
}

fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn annotated_total(xs: &[f64]) -> f64 {
    let t: f64 = xs.iter().copied().sum();
    t
}
