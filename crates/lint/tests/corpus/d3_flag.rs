// Must-flag: D3 — RNG constructed from ambient entropy.
fn shuffle_ids(ids: &mut Vec<u32>) {
    let mut rng = rand::thread_rng();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
}

fn fresh_seed() -> u64 {
    let mut rng = rand::rngs::StdRng::from_entropy();
    rng.gen()
}
