// Pragma escape, well-formed: the finding is suppressed and the reason
// travels into the report's SUPPRESSED section.
fn probe_pool() -> usize {
    // cxlg-lint: allow(D6) -- pool size is recorded in every result header; results are thread-count invariant by the byte-diff gate
    rayon::current_num_threads()
}
