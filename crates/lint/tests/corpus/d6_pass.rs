// Must-pass: D6 — configuration flows in through parameters (the real
// code routes it through ExperimentCtx); nothing probes the host.
struct Ctx {
    scale: u32,
    threads: usize,
}

fn shard_count(ctx: &Ctx) -> usize {
    ctx.threads
}

fn vertices(ctx: &Ctx) -> u64 {
    1u64 << ctx.scale
}
