// Pragma escape, malformed: no `-- reason` clause. P0 flags the pragma
// itself and the underlying finding stays active.
fn probe_pool() -> usize {
    // cxlg-lint: allow(D6)
    rayon::current_num_threads()
}
