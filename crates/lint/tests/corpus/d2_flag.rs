// Must-flag: D2 — wall-clock reads outside core::runner / core::mem.
use std::time::{Instant, SystemTime};

fn measure<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}
