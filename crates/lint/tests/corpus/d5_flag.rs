// Must-flag: D5 — unsafe without a written safety argument.
struct ScatterPtr(*mut u64);

unsafe impl Send for ScatterPtr {}

fn write_slot(p: &ScatterPtr, idx: usize, val: u64) {
    unsafe {
        *p.0.add(idx) = val;
    }
}
