// Must-pass: D4 — integer accumulation is exact and order-free; a
// pinned-order float fold carries a pragma with its argument.
fn total_bytes(sizes: &[u64]) -> u64 {
    let mut acc = 0u64;
    for s in sizes {
        acc += *s;
    }
    acc + sizes.iter().sum::<u64>()
}

fn dangling_mass(rank: &[f64], dangling: &[u32]) -> f64 {
    let mut mass: f64 = 0.0;
    for &v in dangling {
        // cxlg-lint: allow(D4) -- sequential fold in fixed vertex order; order is structural
        mass += rank[v as usize];
    }
    mass
}
