//! The lint over the real workspace, pinned byte-for-byte.
//!
//! Two invariants: (a) the workspace is clean — zero unsuppressed
//! findings, every escape carries a written reason; (b) the rendered
//! report is *byte-identical* to the checked-in golden file, so any
//! new finding, new suppression, file addition or report-format drift
//! shows up as a reviewable diff to
//! `tests/golden_workspace_report.txt`. Regenerate with
//! `cargo run -p cxlg-lint > crates/lint/tests/golden_workspace_report.txt`
//! from the workspace root.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn workspace_is_lint_clean() {
    let run = cxlg_lint::run_workspace(workspace_root()).expect("walk workspace");
    let active: Vec<_> = run.active().collect();
    assert!(
        active.is_empty(),
        "unsuppressed lint findings in the workspace:\n{active:#?}"
    );
    for f in run.suppressed() {
        assert!(
            !f.suppressed.as_deref().unwrap_or("").trim().is_empty(),
            "suppression without a written reason: {f:?}"
        );
    }
}

#[test]
fn workspace_report_matches_golden_bytes() {
    let run = cxlg_lint::run_workspace(workspace_root()).expect("walk workspace");
    let rendered = run.render_text();
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_workspace_report.txt");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden report");
    assert_eq!(
        rendered, golden,
        "lint report drifted from {}; if the change is intentional, \
         regenerate with `cargo run -p cxlg-lint` and review the diff",
        golden_path.display()
    );
}

#[test]
fn report_renders_identically_across_repeated_runs() {
    // Determinism of the lint itself: two fresh walks of the same tree
    // must render the same bytes (sorted walk, sorted findings, no
    // timestamps in the report body).
    let a = cxlg_lint::run_workspace(workspace_root()).unwrap().render_text();
    let b = cxlg_lint::run_workspace(workspace_root()).unwrap().render_text();
    assert_eq!(a, b);
}
