//! The lint's escape hatch: `// cxlg-lint: allow(<rules>) -- <reason>`.
//!
//! A pragma suppresses matching findings on its own line (trailing
//! comment) or on the line directly below (comment-above style). The
//! reason after `--` is **mandatory** and lands verbatim in the report's
//! SUPPRESSED section, so every escape is a written, reviewable
//! decision — an allow without a reason, or naming an unknown rule, is
//! itself a `P0` finding that no pragma can excuse.

use crate::lexer::Comment;
use crate::rules::{Finding, RULE_IDS};

/// One parsed allow pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the pragma comment starts on.
    pub line: u32,
    /// Line the pragma covers in comment-above style (`line + 1`).
    pub applies_to: u32,
    /// Rule ids being allowed (validated against [`RULE_IDS`]).
    pub rules: Vec<String>,
    /// The mandatory justification after `--`.
    pub reason: String,
}

/// Scan `comments` for pragmas. Returns the well-formed pragmas plus
/// `P0` findings for malformed ones.
pub fn parse_pragmas(path: &str, comments: &[Comment]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("cxlg-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let mut bad = |message: String| {
            findings.push(Finding {
                rule: "P0",
                path: path.to_string(),
                line: c.line,
                message,
                suppressed: None,
            });
        };
        let Some(rest) = rest.strip_prefix("allow") else {
            bad(format!("unknown cxlg-lint directive `{rest}` (expected `allow(<rules>) -- <reason>`)"));
            continue;
        };
        let rest = rest.trim_start();
        let Some(close) = rest.find(')') else {
            bad("malformed allow pragma: missing `(<rules>)`".to_string());
            continue;
        };
        let Some(inner) = rest[..close].strip_prefix('(') else {
            bad("malformed allow pragma: missing `(<rules>)`".to_string());
            continue;
        };
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad("allow pragma names no rules".to_string());
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !RULE_IDS.contains(&r.as_str())) {
            bad(format!("allow pragma names unknown rule `{unknown}`"));
            continue;
        }
        if rules.iter().any(|r| r == "P0") {
            bad("`P0` (malformed pragma) cannot be allowed away".to_string());
            continue;
        }
        let tail = rest[close + 1..].trim();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(format!(
                "allow({}) carries no reason; write `-- <why this is deterministic/safe>`",
                rules.join(", ")
            ));
            continue;
        }
        pragmas.push(Pragma {
            line: c.line,
            applies_to: c.end_line + 1,
            rules,
            reason: reason.to_string(),
        });
    }
    (pragmas, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Pragma>, Vec<Finding>) {
        parse_pragmas("crates/x/src/f.rs", &lex(src).comments)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (p, f) = parse("// cxlg-lint: allow(D1, D4) -- sorted before output");
        assert!(f.is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rules, vec!["D1", "D4"]);
        assert_eq!(p[0].reason, "sorted before output");
        assert_eq!(p[0].applies_to, 2);
    }

    #[test]
    fn missing_reason_unknown_rule_and_p0_are_findings() {
        for src in [
            "// cxlg-lint: allow(D1)",
            "// cxlg-lint: allow(D1) -- ",
            "// cxlg-lint: allow(D9) -- nope",
            "// cxlg-lint: allow(P0) -- nope",
            "// cxlg-lint: allow -- nope",
            "// cxlg-lint: deny(D1)",
            "// cxlg-lint: allow() -- empty",
        ] {
            let (p, f) = parse(src);
            assert!(p.is_empty(), "{src}");
            assert_eq!(f.len(), 1, "{src}");
            assert_eq!(f[0].rule, "P0", "{src}");
        }
    }

    #[test]
    fn ordinary_comments_are_not_pragmas() {
        let (p, f) = parse("// cxlg-lint is documented in DESIGN.md\n// allow(D1)");
        assert!(p.is_empty());
        assert!(f.is_empty());
    }
}
