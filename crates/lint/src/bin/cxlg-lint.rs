//! Standalone `cxlg-lint` binary.
//!
//! ```text
//! cxlg-lint [--root=DIR] [--json] [--deny] [FILES…]
//! ```
//!
//! Lints the workspace under `--root` (default: current directory), or
//! an explicit list of root-relative files. The report goes to stdout
//! (text by default, `--json` for the machine-readable form). With
//! `--deny`, any unsuppressed finding — including malformed pragmas —
//! exits 1; without it the exit code is always 0 and the report is
//! informational. `cxlg lint` (the campaign driver subcommand) wraps
//! the same library entry points and additionally reports wall-clock.

use std::path::PathBuf;

fn main() {
    // cxlg-lint: allow(D6) -- CLI argument intake; nothing here feeds results
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny = false;
    let mut files: Vec<String> = Vec::new();
    for a in &args {
        if let Some(dir) = a.strip_prefix("--root=") {
            root = PathBuf::from(dir);
        } else if a == "--json" {
            json = true;
        } else if a == "--deny" {
            deny = true;
        } else if a == "--help" || a == "-h" {
            println!("usage: cxlg-lint [--root=DIR] [--json] [--deny] [FILES...]");
            return;
        } else if a.starts_with('-') {
            eprintln!("cxlg-lint: unknown option `{a}`");
            std::process::exit(2);
        } else {
            files.push(a.clone());
        }
    }
    let run = if files.is_empty() {
        cxlg_lint::run_workspace(&root)
    } else {
        cxlg_lint::run_files(&root, &files)
    };
    let run = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cxlg-lint: {e}");
            std::process::exit(2);
        }
    };
    if json {
        println!("{}", run.render_json());
    } else {
        print!("{}", run.render_text());
    }
    if deny && run.active().count() > 0 {
        std::process::exit(1);
    }
}
