//! A minimal Rust lexer: just enough token structure for rule matching.
//!
//! The vendor set has no `syn`, so the linter carries its own scanner.
//! It does **not** parse Rust — it produces a flat token stream plus the
//! comment list, with everything the rules must never trip over stripped
//! at this layer:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string literals with escapes, raw strings `r"…"` / `r#"…"#` with
//!   any number of `#`s, byte and byte-raw strings;
//! * char literals (including `'\''`) vs. lifetimes (`'a`);
//! * numeric literals with separators, suffixes and exponents.
//!
//! A `HashMap` inside a doc comment or a format string is therefore
//! invisible to every rule; only code tokens count.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, …).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String, raw-string, byte-string or char literal (text is the
    /// literal's *contents*, never matched by rules).
    Str,
    /// Numeric literal, suffix included (`0.0f64`, `0x5EED`, `1_000`).
    Num,
    /// Lifetime (`'a`), kept only so surrounding tokens stay adjacent.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The lexeme text (for [`TokKind::Punct`], a single character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Lexeme class.
    pub kind: TokKind,
}

/// One comment (line or block) with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
}

/// The output of [`lex`]: the code token stream and the comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `source` into tokens and comments. Never fails: unterminated
/// literals or comments simply consume the rest of the input, which is
/// the forgiving behaviour a linter wants on mid-edit files.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: source[start..i].to_string(),
                    line,
                    end_line: line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: source[start..end].to_string(),
                    line: start_line,
                    end_line: line,
                });
            }
            b'"' => {
                let (consumed, text) = scan_string(&source[i..]);
                out.tokens.push(Tok {
                    text,
                    line,
                    kind: TokKind::Str,
                });
                line += source[i..i + consumed].matches('\n').count() as u32;
                i += consumed;
            }
            b'r' | b'b' if starts_raw_or_byte_string(&source[i..]) => {
                let (consumed, nl, text) = scan_raw_or_byte(&source[i..]);
                out.tokens.push(Tok {
                    text,
                    line,
                    kind: TokKind::Str,
                });
                i += consumed;
                line += nl;
            }
            b'\'' => {
                let (consumed, kind, text) = scan_quote(&source[i..]);
                out.tokens.push(Tok { text, line, kind });
                i += consumed;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || b[i] == b'.'
                        // Exponent sign: `1e-3` / `1E+3`.
                        || ((b[i] == b'+' || b[i] == b'-')
                            && matches!(b[i - 1], b'e' | b'E')
                            && !source[start..i].starts_with("0x")))
                {
                    // A second `.` (range `0..n`) or `.` followed by a
                    // non-digit/non-suffix (`0.max(x)`) ends the number.
                    if b[i] == b'.'
                        && (source[start..i].contains('.')
                            || !b.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
                    {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Tok {
                    text: source[start..i].to_string(),
                    line,
                    kind: TokKind::Num,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    text: source[start..i].to_string(),
                    line,
                    kind: TokKind::Ident,
                });
            }
            _ => {
                out.tokens.push(Tok {
                    text: (c as char).to_string(),
                    line,
                    kind: TokKind::Punct,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scan the `"…"` string starting at `s[0] == '"'`; returns (consumed
/// bytes including both quotes, contents).
fn scan_string(s: &str) -> (usize, String) {
    let b = s.as_bytes();
    let mut i = 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, s[1..i].to_string()),
            _ => i += 1,
        }
    }
    (b.len(), s[1..].to_string())
}

/// Does `s` start a raw string (`r"`, `r#`), byte string (`b"`) or
/// byte-raw string (`br"`, `br#`)? Plain identifiers starting with
/// `r`/`b` fall through to ident lexing.
fn starts_raw_or_byte_string(s: &str) -> bool {
    let b = s.as_bytes();
    match b[0] {
        b'r' => matches!(b.get(1), Some(b'"') | Some(b'#')),
        b'b' => match b.get(1) {
            Some(b'"') => true,
            Some(b'r') => matches!(b.get(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scan a raw/byte/byte-raw string; returns (consumed bytes, newlines,
/// contents).
fn scan_raw_or_byte(s: &str) -> (usize, u32, String) {
    let b = s.as_bytes();
    let mut i = 0;
    if b[i] == b'b' {
        i += 1;
    }
    let raw = b.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        // `r#ident` (raw identifier) — re-lex as ident from scratch.
        let mut j = 0;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'#') {
            j += 1;
        }
        return (j.max(1), 0, String::new());
    }
    i += 1;
    let start = i;
    let mut nl = 0u32;
    while i < b.len() {
        if !raw && b[i] == b'\\' {
            i += 2;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return (i + 1 + hashes, nl, s[start..i].to_string());
            }
        }
        if b[i] == b'\n' {
            nl += 1;
        }
        i += 1;
    }
    (b.len(), nl, s[start..].to_string())
}

/// Scan from a `'`: either a char literal (`'a'`, `'\n'`, `'\''`) or a
/// lifetime (`'a`, `'static`).
fn scan_quote(s: &str) -> (usize, TokKind, String) {
    let b = s.as_bytes();
    // Escape ⇒ always a char literal.
    if b.get(1) == Some(&b'\\') {
        let mut i = 3; // past `'\x`
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (i + 1, TokKind::Str, s[1..i.min(s.len())].to_string());
    }
    // `'x'` (closing quote right after one char) ⇒ char literal.
    if b.len() >= 3 && b[2] == b'\'' && b[1] != b'\'' {
        return (3, TokKind::Str, s[1..2].to_string());
    }
    // Otherwise a lifetime: consume `'` + ident.
    let mut i = 1;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    (i.max(1), TokKind::Lifetime, s[..i].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// HashMap in a line comment
/* HashMap in a /* nested */ block */
let s = "HashMap::new()";
let r = r#"Instant::now()"#;
let real = 1;
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let lx = lex(r"let q = '\''; let n = '\n'; done");
        assert!(lx.tokens.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn numbers_with_suffixes_and_separators() {
        let lx = lex("let a = 0.0f64; let b = 0x5EED; let c = 1_000; let d = 1e-3;");
        let nums: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0.0f64", "0x5EED", "1_000", "1e-3"]);
    }

    #[test]
    fn range_dots_do_not_glue_to_numbers() {
        let lx = lex("for i in 0..10 {}");
        let nums: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let lx = lex("a\nb\n\"two\nline\"\nc");
        let a = &lx.tokens[0];
        assert_eq!((a.text.as_str(), a.line), ("a", 1));
        let c = lx.tokens.last().unwrap();
        assert_eq!((c.text.as_str(), c.line), ("c", 5));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let lx = lex(r###"let a = b"SystemTime"; let b = br#"thread_rng"#; end"###);
        assert!(lx.tokens.iter().any(|t| t.text == "end"));
        assert!(!lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "SystemTime" || t.text == "thread_rng")));
    }
}
