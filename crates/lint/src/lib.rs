//! # cxlg-lint — workspace determinism & unsafety static analysis
//!
//! The repo's core contract — every figure, fidelity check and shard
//! merge is bit-identical at any thread count — was previously enforced
//! only *dynamically* (ci.sh byte-diffs campaign JSON across pool
//! sizes). This crate enforces the same invariants *statically*, at the
//! source level, before any run:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` **iteration** (keyed lookup is fine) |
//! | `D2` | `Instant::now`/`SystemTime` only in `core::runner`/`core::mem` |
//! | `D3` | no RNG construction without an explicit seed |
//! | `D4` | float accumulation only in order-pinned helpers |
//! | `D5` | every `unsafe` carries a `// SAFETY:` comment |
//! | `D6` | no env-dependent output outside `runner`/`cli` |
//!
//! Escape hatch: `// cxlg-lint: allow(<rule>) -- <reason>` — the reason
//! is mandatory and reproduced verbatim in the report (`P0` flags
//! malformed pragmas). See DESIGN.md "Determinism invariants & lint
//! rules" for the full rationale table.
//!
//! The analyzer is **token-level**: [`lexer`] strips comments, strings
//! and raw strings (the vendor set has no `syn`), and [`rules`] matches
//! token patterns with a small per-file symbol table (which identifiers
//! are hash-typed / float-typed). That makes it a fast, dependency-free
//! under-approximation of a type-aware lint: it will miss exotic
//! aliasing, but it catches the hazard classes that actually corrupt
//! reported series — and it runs in milliseconds as CI's first gate.
//!
//! Entry points: [`run_workspace`] (everything the walker finds),
//! [`run_files`] (an explicit list), and the `cxlg-lint` binary /
//! `cxlg lint` subcommand on top of them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod walk;

use report::LintRun;
use std::path::Path;

/// Lint every workspace `.rs` file under `root` (see
/// [`walk::workspace_rs_files`] for what is skipped).
pub fn run_workspace(root: &Path) -> std::io::Result<LintRun> {
    let files = walk::workspace_rs_files(root)?;
    run_files(root, &files)
}

/// Lint an explicit list of workspace-relative files.
pub fn run_files(root: &Path, files: &[String]) -> std::io::Result<LintRun> {
    let mut run = LintRun::default();
    for rel in files {
        let source = std::fs::read_to_string(root.join(rel))?;
        run.findings.extend(rules::analyze_source(rel, &source));
        run.files_scanned += 1;
    }
    run.finalize();
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_files_aggregates_and_counts() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let run = run_files(
            root,
            &["src/lib.rs".to_string(), "src/walk.rs".to_string()],
        )
        .unwrap();
        assert_eq!(run.files_scanned, 2);
        assert_eq!(run.active().count(), 0, "lint must lint itself clean");
    }

    #[test]
    fn missing_file_is_an_error_not_a_silent_skip() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        assert!(run_files(root, &["src/definitely_absent.rs".to_string()]).is_err());
    }
}
