//! The determinism & unsafety rules, matched over the token stream.
//!
//! Every rule has a stable id, a one-line invariant, and a pragma
//! escape: `// cxlg-lint: allow(<rule>) -- <reason>` on the finding's
//! line or the line above suppresses it, and the reason is mandatory —
//! an allow without one is itself a finding (`P0`). The rule table
//! (id → invariant → rationale → escape) is mirrored in DESIGN.md
//! "Determinism invariants & lint rules".
//!
//! Rules `D1`–`D4` and `D6` skip *test context* (files under `tests/`,
//! `benches/` or `examples/`, and `#[cfg(test)] mod` bodies): tests may
//! time themselves or hash-iterate freely because nothing they print
//! lands in result JSON. `D5` applies everywhere — an unsafe block in a
//! test still needs its safety argument written down.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::pragma::{parse_pragmas, Pragma};

/// Rule ids in report order. `P0` is the meta-rule for malformed
/// pragmas and is not escapable.
pub const RULE_IDS: &[&str] = &["D1", "D2", "D3", "D4", "D5", "D6", "P0"];

/// Short human label per rule, used in the report legend.
pub fn rule_label(id: &str) -> &'static str {
    match id {
        "D1" => "hash-order iteration",
        "D2" => "wall-clock read",
        "D3" => "unseeded RNG",
        "D4" => "unpinned float accumulation",
        "D5" => "unsafe without SAFETY comment",
        "D6" => "env-dependent output",
        "P0" => "malformed lint pragma",
        _ => "unknown rule",
    }
}

/// One lint finding (suppressed or not).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D1`…`D6`, `P0`).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What was matched and why it matters.
    pub message: String,
    /// `Some(reason)` when a pragma suppressed this finding.
    pub suppressed: Option<String>,
}

/// Where a file sits, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library/binary source: all rules apply.
    Source,
    /// Tests, benches, examples: only `D5` applies.
    TestContext,
}

/// Classify a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    let test_dirs = ["/tests/", "/benches/", "/examples/"];
    if test_dirs.iter().any(|d| path.contains(d))
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
    {
        FileClass::TestContext
    } else {
        FileClass::Source
    }
}

/// Files where rule `D2` (wall-clock) is allowed: the annotated
/// wall-clock modules. `runner::timed` feeds operator telemetry only
/// (manifest wall-clock); `mem` reads the kernel's RSS high water; the
/// campaign-service scheduler times queue waits and job execution —
/// fields that land only in CAS manifests and stats snapshots, both
/// exempt from byte-stability, never in result payloads.
const D2_ALLOWED: &[&str] = &[
    "crates/core/src/runner.rs",
    "crates/core/src/mem.rs",
    "crates/serve/src/scheduler.rs",
];

/// Files where rule `D4` (float accumulation) is allowed: the approved
/// merge/stat helpers whose accumulation orders are pinned by tests
/// (`metrics` fixed-order merges, `OnlineStats` ordered Welford fold,
/// `interp_series` in `runner`).
const D4_ALLOWED: &[&str] = &[
    "crates/core/src/metrics.rs",
    "crates/sim/src/stats.rs",
    "crates/core/src/runner.rs",
];

/// Files where rule `D6` (env-dependent reads) is allowed: the CLI and
/// the env-config surface (`bench::lib` reads `CXLG_*` once into the
/// context; every result JSON records the values in its header).
const D6_ALLOWED: &[&str] = &[
    "crates/core/src/runner.rs",
    "crates/bench/src/cli.rs",
    "crates/bench/src/lib.rs",
];

/// Methods whose call on a hash-typed value observes hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// RNG constructors that take entropy from the environment instead of
/// an explicit seed.
const BANNED_RNG: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "getrandom",
    "from_os_rng",
];

/// `std::env` readers whose value depends on the host environment.
const BANNED_ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os", "args", "args_os", "temp_dir"];

/// Free functions that report host parallelism.
const BANNED_PARALLELISM: &[&str] = &["available_parallelism", "current_num_threads", "num_cpus"];

/// Analyze one file's source. `path` must be workspace-relative with
/// `/` separators — rule allowlists and the report both key on it.
pub fn analyze_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let class = classify(path);
    let test_regions = cfg_test_regions(&lexed.tokens);
    let in_test = |idx: usize| {
        class == FileClass::TestContext
            || test_regions.iter().any(|&(a, b)| idx >= a && idx < b)
    };
    let (pragmas, mut findings) = parse_pragmas(path, &lexed.comments);

    let allowed = |list: &[&str]| list.iter().any(|a| path == *a);

    d1_hash_iteration(path, &lexed.tokens, &in_test, &mut findings);
    if !allowed(D2_ALLOWED) {
        d2_wall_clock(path, &lexed.tokens, &in_test, &mut findings);
    }
    d3_unseeded_rng(path, &lexed.tokens, &in_test, &mut findings);
    if !allowed(D4_ALLOWED) {
        d4_float_accumulation(path, &lexed.tokens, &in_test, &mut findings);
    }
    d5_unsafe_safety(path, &lexed.tokens, &lexed.comments, &mut findings);
    if !allowed(D6_ALLOWED) {
        d6_env_reads(path, &lexed.tokens, &in_test, &mut findings);
    }

    apply_pragmas(&pragmas, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Mark findings covered by an allow pragma on their line or the line
/// directly above as suppressed (carrying the pragma's reason).
fn apply_pragmas(pragmas: &[Pragma], findings: &mut [Finding]) {
    for f in findings.iter_mut() {
        if f.rule == "P0" {
            continue; // a malformed pragma can't excuse itself
        }
        for p in pragmas {
            let covers_line = f.line == p.applies_to || f.line == p.line;
            if covers_line && p.rules.iter().any(|r| r == f.rule) {
                f.suppressed = Some(p.reason.clone());
                break;
            }
        }
    }
}

/// Token index ranges (half-open) of `#[cfg(test)] mod … { … }` bodies.
fn cfg_test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_seq(toks, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            // Skip any further attributes between the cfg and the item.
            let mut j = i + 7;
            while is_tok(toks, j, "#") && is_tok(toks, j + 1, "[") {
                j = match skip_balanced(toks, j + 1, "[", "]") {
                    Some(n) => n,
                    None => break,
                };
            }
            if is_tok(toks, j, "mod") {
                // Find the module's opening brace, then its close.
                let mut k = j;
                while k < toks.len() && !is_tok(toks, k, "{") {
                    k += 1;
                }
                if let Some(end) = skip_balanced(toks, k, "{", "}") {
                    regions.push((i, end));
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

fn is_tok(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

fn is_seq(toks: &[Tok], i: usize, seq: &[&str]) -> bool {
    seq.iter().enumerate().all(|(k, s)| is_tok(toks, i + k, s))
}

/// From `toks[open_idx]` == `open`, return the index one past the
/// matching `close`.
fn skip_balanced(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    if !is_tok(toks, open_idx, open) {
        return None;
    }
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    path: &str,
    line: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        path: path.to_string(),
        line,
        message,
        suppressed: None,
    });
}

// ---------------------------------------------------------------- D1

/// D1: iteration over `HashMap`/`HashSet` observes hash order, which is
/// seeded per-process — any output derived from it is nondeterministic.
/// Keyed lookup (`get`/`insert`/`remove`/`entry`/`contains_key`) is
/// fine; ordering must come from `BTreeMap`/`BTreeSet` or sorted `Vec`s.
fn d1_hash_iteration(
    path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let hash_names = collect_typed_idents(toks, |t| t == "HashMap" || t == "HashSet");
    let mut i = 0usize;
    while i < toks.len() {
        if in_test(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !hash_names.contains(&t.text) {
            i += 1;
            continue;
        }
        // Skip the declaration site itself (`name: HashMap<…>`).
        if is_tok(toks, i + 1, ":") && !is_tok(toks, i + 2, ":") {
            i += 1;
            continue;
        }
        // Walk the method chain rooted at this identifier; any
        // hash-order-observing method on the way flags.
        let name = t.text.clone();
        let mut j = i + 1;
        while is_tok(toks, j, ".") {
            let Some(m) = toks.get(j + 1) else { break };
            if m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str()) {
                push(
                    findings,
                    "D1",
                    path,
                    m.line,
                    format!(
                        "`{name}.{}()` iterates a HashMap/HashSet in hash order; \
                         use BTreeMap/BTreeSet or sort first",
                        m.text
                    ),
                );
            }
            j += 2;
            if is_tok(toks, j, "(") {
                j = skip_balanced(toks, j, "(", ")").unwrap_or(j + 1);
            }
            if is_tok(toks, j, "?") {
                j += 1;
            }
        }
        // `for x in [&[mut]] name {` — direct iteration.
        let prev = |n: usize| {
            i.checked_sub(n)
                .and_then(|k| toks.get(k))
                .map_or("", |x| x.text.as_str())
        };
        let for_target = prev(1) == "in"
            || (prev(1) == "&" && prev(2) == "in")
            || (prev(1) == "mut" && prev(2) == "&" && prev(3) == "in");
        if for_target && is_tok(toks, i + 1, "{") {
            push(
                findings,
                "D1",
                path,
                t.line,
                format!("`for … in {name}` iterates a HashMap/HashSet in hash order"),
            );
        }
        i = j.max(i + 1);
    }
}

/// Identifiers whose declared type (or `let` initializer) mentions a
/// type matching `is_target`: catches struct fields (`name: T<…>,`),
/// fn params (`name: T…)`) and annotated or constructor-initialized
/// locals (`let name: T…`, `let name = T::new()`).
fn collect_typed_idents(toks: &[Tok], is_target: impl Fn(&str) -> bool) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `name :` starting a type annotation (not `::`).
        if t.kind == TokKind::Ident
            && is_tok(toks, i + 1, ":")
            && !is_tok(toks, i + 2, ":")
            && !(i >= 1 && is_tok(toks, i - 1, ":"))
        {
            let end = annotation_end(toks, i + 2);
            if toks[i + 2..end]
                .iter()
                .any(|x| x.kind == TokKind::Ident && is_target(&x.text))
            {
                out.push(t.text.clone());
            }
            i = end;
            continue;
        }
        // `let [mut] name = … ;` whose initializer mentions the type.
        if t.text == "let" {
            let mut j = i + 1;
            if is_tok(toks, j, "mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|x| x.kind == TokKind::Ident) && is_tok(toks, j + 1, "=") {
                let end = statement_end(toks, j + 2);
                if toks[j + 2..end]
                    .iter()
                    .any(|x| x.kind == TokKind::Ident && is_target(&x.text))
                {
                    out.push(toks[j].text.clone());
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out.sort();
    out.dedup();
    out
}

/// Index just past a type annotation starting at `i`: stop at `,` `;`
/// `=` `)` `{` at angle/paren/bracket depth 0 (`->`'s `>` is ignored).
fn annotation_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut k = i;
    while k < toks.len() {
        let s = toks[k].text.as_str();
        match s {
            "<" | "(" | "[" => depth += 1,
            ">" if k >= 1 && toks[k - 1].text == "-" => {} // `->`
            ">" | ")" | "]" => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            "," | ";" | "=" | "{" if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    k
}

/// Index just past the `;` ending the statement starting at `i`
/// (brace/paren/bracket-balanced).
fn statement_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut k = i;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    k
}

// ---------------------------------------------------------------- D2

/// D2: `Instant::now`/`SystemTime` outside the annotated wall-clock
/// modules — host time must never reach simulated results.
fn d2_wall_clock(
    path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" && is_seq(toks, i + 1, &[":", ":", "now"]) {
            push(
                findings,
                "D2",
                path,
                t.line,
                "`Instant::now()` outside core::runner::timed / core::mem \
                 (wall-clock must stay out of result paths)"
                    .to_string(),
            );
        } else if t.text == "SystemTime" {
            push(
                findings,
                "D2",
                path,
                t.line,
                "`SystemTime` outside core::runner::timed / core::mem \
                 (wall-clock must stay out of result paths)"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- D3

/// D3: RNG construction without an explicit seed — every random stream
/// must be reproducible from the printed run configuration.
fn d3_unseeded_rng(
    path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        if BANNED_RNG.contains(&t.text.as_str()) {
            push(
                findings,
                "D3",
                path,
                t.line,
                format!(
                    "`{}` constructs an unseeded RNG; derive every stream from an \
                     explicit seed (e.g. Xoshiro256StarStar::seed_from_u64)",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- D4

/// D4: float accumulation outside the approved helpers. `f64` addition
/// is non-associative, so `+=` folds and `.sum::<f64>()` bake the
/// iteration order into the result; only helpers whose orders are
/// pinned by tests may accumulate.
fn d4_float_accumulation(
    path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let float_names = collect_f64_idents(toks);
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        // `name += …` on a known-f64 identifier (`+=` lexes as `+` `=`).
        if t.kind == TokKind::Ident
            && float_names.contains(&t.text)
            && is_tok(toks, i + 1, "+")
            && is_tok(toks, i + 2, "=")
        {
            push(
                findings,
                "D4",
                path,
                t.line,
                format!(
                    "`{} +=` accumulates f64 outside the approved helpers \
                     (metrics / sim::stats::OnlineStats / interp_series)",
                    t.text
                ),
            );
        }
        // `.sum::<f64>()`.
        if t.text == "sum"
            && i >= 1
            && is_tok(toks, i - 1, ".")
            && is_seq(toks, i + 1, &[":", ":", "<", "f64", ">"])
        {
            push(
                findings,
                "D4",
                path,
                t.line,
                "`.sum::<f64>()` bakes iteration order into a float result \
                 outside the approved helpers"
                    .to_string(),
            );
        }
        // `let name: f64 = … .sum();` — untyped turbofish via annotation.
        if t.text == "let" {
            let mut j = i + 1;
            if is_tok(toks, j, "mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|x| x.kind == TokKind::Ident)
                && is_seq(toks, j + 1, &[":", "f64", "="])
            {
                let end = statement_end(toks, j + 4);
                for (k, x) in toks[j + 4..end].iter().enumerate() {
                    let k = k + j + 4;
                    if x.text == "sum" && is_tok(toks, k - 1, ".") && is_tok(toks, k + 1, "(") {
                        push(
                            findings,
                            "D4",
                            path,
                            x.line,
                            format!(
                                "`let {}: f64 = ….sum()` bakes iteration order into a float \
                                 result outside the approved helpers",
                                toks[j].text
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Identifiers known to be `f64`/`f32`: annotated (`name: f64`) or
/// initialized from a float literal (`let name = 0.0;`).
fn collect_f64_idents(toks: &[Tok]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if is_tok(toks, i + 1, ":")
            && !is_tok(toks, i + 2, ":")
            && (is_tok(toks, i + 2, "f64") || is_tok(toks, i + 2, "f32"))
        {
            out.push(t.text.clone());
        }
        if t.text == "let" {
            let mut j = i + 1;
            if is_tok(toks, j, "mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|x| x.kind == TokKind::Ident)
                && is_tok(toks, j + 1, "=")
                && toks.get(j + 2).is_some_and(|x| x.kind == TokKind::Num && is_float_literal(&x.text))
            {
                out.push(toks[j].text.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Is this numeric literal a float? (`0.0`, `1e-3`, `2f64` — but not
/// `0x1E`, `1_000` or `0usize`, whose suffix contains an `e`.)
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    if text.contains('.') || text.ends_with("f64") || text.ends_with("f32") {
        return true;
    }
    // An exponent `e`/`E` must be followed by a digit or sign; `0usize`'s
    // `e` is part of an integer suffix, not an exponent.
    text.bytes().zip(text.bytes().skip(1)).any(|(c, n)| {
        matches!(c, b'e' | b'E') && (n.is_ascii_digit() || n == b'+' || n == b'-')
    })
}

// ---------------------------------------------------------------- D5

/// D5: every `unsafe` (block or impl) must carry a `// SAFETY:` comment
/// on the same line or within the three lines above it.
fn d5_unsafe_safety(
    path: &str,
    toks: &[Tok],
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `unsafe fn`/`unsafe trait` *declarations* shift the obligation
        // to callers/implementors; blocks and impls need the argument.
        if is_tok(toks, i + 1, "fn") || is_tok(toks, i + 1, "trait") {
            continue;
        }
        let line = t.line;
        // Merge runs of consecutive `//` lines into blocks first, so a
        // multi-line SAFETY comment counts from its *last* line.
        let documented = comment_blocks(comments).iter().any(|&(text_has_safety, end)| {
            text_has_safety && end <= line && end + 3 >= line
        });
        if !documented {
            push(
                findings,
                "D5",
                path,
                line,
                "`unsafe` without a `// SAFETY:` comment on or directly above it".to_string(),
            );
        }
    }
}

/// Collapse consecutive-line comments into `(contains SAFETY:, last
/// line)` blocks; block comments stand alone.
fn comment_blocks(comments: &[Comment]) -> Vec<(bool, u32)> {
    let mut blocks: Vec<(bool, u32)> = Vec::new();
    for c in comments {
        let has = c.text.contains("SAFETY:");
        match blocks.last_mut() {
            Some(b) if b.1 + 1 == c.line => {
                b.0 |= has;
                b.1 = c.end_line;
            }
            _ => blocks.push((has, c.end_line)),
        }
    }
    blocks
}

// ---------------------------------------------------------------- D6

/// D6: host-environment reads (`std::env::*`, parallelism probes)
/// outside `runner`/`cli`/the env-config surface — output must be a
/// function of the recorded configuration, not of the machine.
fn d6_env_reads(
    path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "env"
            && is_tok(toks, i + 1, ":")
            && is_tok(toks, i + 2, ":")
            && toks
                .get(i + 3)
                .is_some_and(|m| BANNED_ENV_READS.contains(&m.text.as_str()))
        {
            push(
                findings,
                "D6",
                path,
                t.line,
                format!(
                    "`env::{}` reads the host environment outside runner/cli; thread \
                     configuration through ExperimentCtx instead",
                    toks[i + 3].text
                ),
            );
        }
        if BANNED_PARALLELISM.contains(&t.text.as_str()) {
            push(
                findings,
                "D6",
                path,
                t.line,
                format!(
                    "`{}` makes output depend on host parallelism outside runner/cli; \
                     results must be thread-count invariant",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        analyze_source("crates/x/src/f.rs", src)
    }

    fn unsuppressed(src: &str) -> Vec<Finding> {
        run(src).into_iter().filter(|f| f.suppressed.is_none()).collect()
    }

    #[test]
    fn d1_flags_iteration_but_not_lookup() {
        let src = "
            use std::collections::HashMap;
            struct S { m: HashMap<u32, u32> }
            fn f(s: &S) -> Vec<u32> { s.m.keys().copied().collect() }
            fn g(s: &S) -> Option<&u32> { s.m.get(&1) }
        ";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "D1");
        assert!(fs[0].message.contains("m.keys()"), "{}", fs[0].message);
    }

    #[test]
    fn d1_flags_for_loop_and_chained_iteration() {
        let src = "
            fn f() {
                let mut seen = std::collections::HashSet::new();
                seen.insert(1u32);
                for v in &seen { let _ = v; }
                let guarded: std::sync::Mutex<std::collections::HashMap<u32, u32>> =
                    Default::default();
                let _: Vec<u32> = guarded.lock().unwrap().values().copied().collect();
            }
        ";
        let fs = unsuppressed(src);
        assert_eq!(fs.iter().filter(|f| f.rule == "D1").count(), 2, "{fs:?}");
    }

    #[test]
    fn d1_ignores_btreemap_and_test_modules() {
        let src = "
            use std::collections::BTreeMap;
            fn f(m: &BTreeMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let mut s = std::collections::HashSet::new();
                    s.insert(1);
                    for v in &s { let _ = v; }
                }
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn d2_flags_instant_and_systemtime_except_allowlist() {
        let src = "fn f() { let t = std::time::Instant::now(); let s = std::time::SystemTime::now(); }";
        let fs = unsuppressed(src);
        assert_eq!(fs.iter().filter(|f| f.rule == "D2").count(), 2, "{fs:?}");
        let ok = analyze_source("crates/core/src/runner.rs", src);
        assert!(ok.iter().all(|f| f.rule != "D2"), "{ok:?}");
    }

    #[test]
    fn d3_flags_entropy_rngs() {
        let fs = unsuppressed("fn f() { let r = rand::thread_rng(); }");
        assert_eq!(fs.iter().filter(|f| f.rule == "D3").count(), 1);
        assert!(unsuppressed("fn f() { let r = Xoshiro256StarStar::seed_from_u64(1); }").is_empty());
    }

    #[test]
    fn d4_flags_accumulation_forms() {
        let fs = unsuppressed(
            "fn f(xs: &[f64]) -> f64 {
                let mut acc = 0.0;
                for x in xs { acc += *x; }
                let t: f64 = xs.iter().sum();
                t + acc + xs.iter().sum::<f64>()
            }",
        );
        assert_eq!(fs.iter().filter(|f| f.rule == "D4").count(), 3, "{fs:?}");
    }

    #[test]
    fn d4_ignores_integer_accumulation() {
        assert!(unsuppressed(
            "fn f(xs: &[u64]) -> u64 {
                let mut acc = 0u64;
                for x in xs { acc += *x; }
                acc + xs.iter().sum::<u64>()
            }"
        )
        .is_empty());
    }

    #[test]
    fn d5_requires_safety_comment_even_in_tests() {
        let src = "fn f(p: *mut u8) { unsafe { *p = 1 }; }";
        let fs = analyze_source("crates/x/tests/t.rs", src);
        assert_eq!(fs.iter().filter(|f| f.rule == "D5").count(), 1);
        let ok = "fn f(p: *mut u8) {
            // SAFETY: p is valid for writes by contract.
            unsafe { *p = 1 };
        }";
        assert!(analyze_source("crates/x/tests/t.rs", ok).is_empty());
    }

    #[test]
    fn d5_skips_unsafe_fn_declarations() {
        assert!(run("unsafe fn f() {} unsafe trait T {}").is_empty());
    }

    #[test]
    fn d6_flags_env_and_parallelism_reads() {
        let src = "fn f() -> usize {
            let _ = std::env::var(\"X\");
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }";
        let fs = unsuppressed(src);
        assert_eq!(fs.iter().filter(|f| f.rule == "D6").count(), 2, "{fs:?}");
        let ok = analyze_source("crates/bench/src/cli.rs", src);
        assert!(ok.iter().all(|f| f.rule != "D6"), "{ok:?}");
    }

    #[test]
    fn pragma_suppresses_with_reason() {
        let src = "fn f() {
            // cxlg-lint: allow(D2) -- progress display only, never serialized
            let t = std::time::Instant::now();
            let _ = t;
        }";
        let fs = run(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(
            fs[0].suppressed.as_deref(),
            Some("progress display only, never serialized")
        );
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let src = "fn f() {
            // cxlg-lint: allow(D2)
            let t = std::time::Instant::now();
            let _ = t;
        }";
        let fs = run(src);
        assert!(fs.iter().any(|f| f.rule == "P0"), "{fs:?}");
        // And the D2 finding stays unsuppressed.
        assert!(fs.iter().any(|f| f.rule == "D2" && f.suppressed.is_none()));
    }

    #[test]
    fn trailing_pragma_on_the_same_line_works() {
        let src =
            "fn f() { let t = std::time::Instant::now(); } // cxlg-lint: allow(D2) -- demo only";
        let fs = run(src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].suppressed.is_some());
    }
}
