//! Workspace file discovery.
//!
//! Walks the repository tree for `.rs` files, skipping what must never
//! be linted:
//!
//! * `vendor/` — the offline dependency stand-ins are external code
//!   with their own idioms (and deliberately wall-clock-aware, e.g.
//!   criterion);
//! * `target/` and `.git/` — build products and VCS internals;
//! * any directory named `corpus` — lint test fixtures are *data*
//!   (must-flag examples would otherwise flag the lint's own tree).
//!
//! Paths come back workspace-relative, `/`-separated and sorted, so the
//! scan order — and therefore the report — is independent of directory
//! enumeration order.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "corpus"];

/// All `.rs` files under `root`, as sorted workspace-relative paths.
pub fn workspace_rs_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(relative_slashed(root, &path));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, with `/` separators regardless of host.
fn relative_slashed(root: &Path, path: &PathBuf) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_but_not_vendor_or_corpus() {
        // CARGO_MANIFEST_DIR is compile-time fixed, not an env read.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let files = workspace_rs_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"), "{files:?}");
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.contains("/corpus/")));
        assert!(files.iter().all(|f| !f.starts_with("target/")));
        // Sorted ⇒ deterministic report order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
