//! Byte-stable report rendering: human text and machine-readable JSON.
//!
//! Findings arrive pre-sorted per file; the report sorts across files
//! by `(path, line, rule)` so two runs over the same tree render
//! byte-identical output — the golden test in
//! `crates/lint/tests/golden_workspace.rs` pins the real workspace's
//! report. Wall-clock and other host-dependent values never appear
//! here (the `cxlg lint` subcommand prints timing to stderr instead):
//! the report itself must satisfy the invariants it enforces.

use crate::rules::{rule_label, Finding, RULE_IDS};
use serde::Value;

/// A whole lint run: every finding plus the scanned-file count.
#[derive(Debug, Default)]
pub struct LintRun {
    /// All findings, suppressed ones included.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintRun {
    /// Findings no pragma excused — what `--deny` gates on.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Pragma-suppressed findings (each carries its written reason).
    pub fn suppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_some())
    }

    /// Sort findings into the report's stable order.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Render the human report (byte-stable for a given tree).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("cxlg-lint — workspace determinism & unsafety report\n");
        out.push_str("===================================================\n\n");
        out.push_str("rules:");
        for id in RULE_IDS {
            out.push_str(&format!(" {id}={}", rule_label(id).replace(' ', "-")));
        }
        out.push_str("\n\n");
        let active: Vec<&Finding> = self.active().collect();
        out.push_str(&format!("FINDINGS ({}):\n", active.len()));
        for f in &active {
            out.push_str(&format!("  {}:{} [{}] {}\n", f.path, f.line, f.rule, f.message));
        }
        let suppressed: Vec<&Finding> = self.suppressed().collect();
        out.push_str(&format!("\nSUPPRESSED ({}):\n", suppressed.len()));
        for f in &suppressed {
            out.push_str(&format!(
                "  {}:{} [{}] allow -- {}\n",
                f.path,
                f.line,
                f.rule,
                f.suppressed.as_deref().unwrap_or("")
            ));
        }
        out.push_str(&format!(
            "\nsummary: files={} findings={} suppressed={}\n",
            self.files_scanned,
            active.len(),
            suppressed.len()
        ));
        out
    }

    /// Render the machine-readable JSON report (same content and
    /// ordering as the text form).
    pub fn render_json(&self) -> String {
        let finding_value = |f: &Finding| {
            let mut m = vec![
                ("path".to_string(), Value::Str(f.path.clone())),
                ("line".to_string(), Value::U64(f.line as u64)),
                ("rule".to_string(), Value::Str(f.rule.to_string())),
                ("message".to_string(), Value::Str(f.message.clone())),
            ];
            if let Some(reason) = &f.suppressed {
                m.push(("suppressed_reason".to_string(), Value::Str(reason.clone())));
            }
            Value::Map(m)
        };
        let v = Value::Map(vec![
            (
                "files_scanned".to_string(),
                Value::U64(self.files_scanned as u64),
            ),
            (
                "findings".to_string(),
                Value::Array(self.active().map(finding_value).collect()),
            ),
            (
                "suppressed".to_string(),
                Value::Array(self.suppressed().map(finding_value).collect()),
            ),
        ]);
        serde_json::to_string_pretty(&v).expect("serialize lint report")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintRun {
        let mut run = LintRun {
            findings: vec![
                Finding {
                    rule: "D2",
                    path: "crates/b/src/z.rs".to_string(),
                    line: 9,
                    message: "wall clock".to_string(),
                    suppressed: None,
                },
                Finding {
                    rule: "D1",
                    path: "crates/a/src/x.rs".to_string(),
                    line: 3,
                    message: "hash iter".to_string(),
                    suppressed: Some("sorted downstream".to_string()),
                },
            ],
            files_scanned: 2,
        };
        run.finalize();
        run
    }

    #[test]
    fn text_report_is_stable_and_sectioned() {
        let run = sample();
        let a = run.render_text();
        assert_eq!(a, run.render_text(), "two renders must be byte-identical");
        assert!(a.contains("FINDINGS (1):"));
        assert!(a.contains("crates/b/src/z.rs:9 [D2] wall clock"));
        assert!(a.contains("SUPPRESSED (1):"));
        assert!(a.contains("allow -- sorted downstream"));
        assert!(a.contains("summary: files=2 findings=1 suppressed=1"));
    }

    #[test]
    fn json_report_carries_reasons() {
        let j = sample().render_json();
        assert!(j.contains("\"suppressed_reason\": \"sorted downstream\""), "{j}");
        assert!(j.contains("\"files_scanned\": 2"), "{j}");
    }

    #[test]
    fn findings_sort_by_path_then_line_then_rule() {
        let run = sample();
        assert_eq!(run.findings[0].path, "crates/a/src/x.rs");
        assert_eq!(run.findings[1].path, "crates/b/src/z.rs");
    }
}
