//! Criterion benches of end-to-end traversal runs (simulator wall-clock
//! cost, not simulated time) across workloads and backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_graph::spec::GraphSpec;
use cxlg_link::pcie::PcieGen;

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("traversal");
    g.sample_size(10);
    let graph = GraphSpec::urand(13).seed(1).build();
    let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
    for (label, trav) in [
        ("bfs", Traversal::bfs(0)),
        ("sssp", Traversal::sssp(0)),
        ("pagerank2", Traversal::pagerank(2)),
        ("cc", Traversal::connected_components()),
    ] {
        g.bench_function(BenchmarkId::new("workload", label), |b| {
            b.iter(|| trav.run(&graph, &sys).metrics.runtime)
        });
    }
    g.finish();
}

fn bench_bfs_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("bfs_backend");
    g.sample_size(10);
    let graph = GraphSpec::urand(13).seed(1).build();
    for (label, sys) in [
        ("dram", SystemConfig::emogi_on_dram(PcieGen::Gen4)),
        ("cxl", SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5)),
        ("xlfdd", SystemConfig::xlfdd(PcieGen::Gen4, 16)),
        ("bam", SystemConfig::bam_on_nvme(PcieGen::Gen4, 4)),
    ] {
        g.bench_function(BenchmarkId::new("backend", label), |b| {
            b.iter(|| Traversal::bfs(0).run(&graph, &sys).metrics.runtime)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_workloads, bench_bfs_backends);
criterion_main!(benches);
