//! Criterion benches of the discrete-event execution core: events per
//! second under each backend, and batch-size scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxlg_core::access::DeviceRequest;
use cxlg_core::system::SystemConfig;
use cxlg_link::pcie::PcieGen;
use cxlg_sim::SimTime;

fn uniform_requests(n: usize, bytes: u64) -> Vec<DeviceRequest> {
    (0..n)
        .map(|i| DeviceRequest {
            addr: i as u64 * 4096,
            bytes, overhead_ps: 0 })
        .collect()
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_batch");
    g.sample_size(10);
    let n = 20_000;
    g.throughput(Throughput::Elements(n as u64));
    for (label, sys) in [
        ("dram", SystemConfig::emogi_on_dram(PcieGen::Gen4)),
        ("cxl5", SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5)),
        ("xlfdd16", SystemConfig::xlfdd(PcieGen::Gen4, 16)),
        ("nvme4", SystemConfig::bam_on_nvme(PcieGen::Gen4, 4)),
    ] {
        let reqs = uniform_requests(n, 128);
        g.bench_function(BenchmarkId::new("backend", label), |b| {
            b.iter(|| {
                let mut engine = sys.build_engine();
                engine.run_batch(SimTime::ZERO, &reqs).end
            })
        });
    }
    g.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(10);
    let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
    for n in [1_000usize, 10_000, 100_000] {
        let reqs = uniform_requests(n, 96);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &reqs, |b, reqs| {
            b.iter(|| {
                let mut engine = sys.build_engine();
                engine.run_batch(SimTime::ZERO, reqs).end
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_backends, bench_batch_scaling);
criterion_main!(benches);
