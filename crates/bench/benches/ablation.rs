//! Ablation benches for the design choices DESIGN.md calls out: warp
//! count, bridge ordering, software-cache capacity, and CXL device count.
//! These measure *simulated runtime* differences (reported via custom
//! criterion measurements of the simulation itself running); the printed
//! simulated-time ratios land on stderr for inspection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxlg_core::system::{AccessConfig, BackendConfig, SystemConfig};
use cxlg_core::traversal::Traversal;
use cxlg_graph::spec::GraphSpec;
use cxlg_link::pcie::PcieGen;

fn bench_warp_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_warps");
    g.sample_size(10);
    let graph = GraphSpec::urand(12).seed(1).build();
    for warps in [64u32, 256, 768, 2048] {
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4).with_active_warps(warps);
        g.bench_with_input(BenchmarkId::from_parameter(warps), &sys, |b, sys| {
            b.iter(|| Traversal::bfs(0).run(&graph, sys).metrics.runtime)
        });
        let sim = Traversal::bfs(0).run(&graph, &sys).metrics.runtime;
        eprintln!("[ablation] warps={warps}: simulated {:.3} ms", sim.as_secs_f64() * 1e3);
    }
    g.finish();
}

fn bench_bridge_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_bridge");
    g.sample_size(10);
    let graph = GraphSpec::urand(12).seed(1).build();
    for (label, ooo) in [("in_order", false), ("out_of_order", true)] {
        let mut sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(2.0);
        if ooo {
            if let BackendConfig::CxlMem { dev, .. } = &mut sys.backend {
                *dev = dev.out_of_order();
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(label), &sys, |b, sys| {
            b.iter(|| Traversal::bfs(0).run(&graph, sys).metrics.runtime)
        });
        let sim = Traversal::bfs(0).run(&graph, &sys).metrics.runtime;
        eprintln!("[ablation] bridge {label}: simulated {:.3} ms", sim.as_secs_f64() * 1e3);
    }
    g.finish();
}

fn bench_cache_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_cache");
    g.sample_size(10);
    let graph = GraphSpec::urand(12).seed(1).build();
    let edge_bytes = graph.num_edges() * 8;
    for frac_denom in [16u64, 4, 1] {
        let mut sys = SystemConfig::bam_on_nvme(PcieGen::Gen4, 4);
        if let AccessConfig::SoftwareCache { capacity_bytes, .. } = &mut sys.access {
            *capacity_bytes = Some((edge_bytes / frac_denom).max(4096 * 64));
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("1_{frac_denom}")),
            &sys,
            |b, sys| b.iter(|| Traversal::bfs(0).run(&graph, sys).metrics.raf()),
        );
        let raf = Traversal::bfs(0).run(&graph, &sys).metrics.raf();
        eprintln!("[ablation] cache=edge/{frac_denom}: RAF {raf:.2}");
    }
    g.finish();
}

fn bench_device_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_cxl_devices");
    g.sample_size(10);
    let graph = GraphSpec::urand(12).seed(1).build();
    for devices in [1u32, 2, 5] {
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, devices);
        g.bench_with_input(BenchmarkId::from_parameter(devices), &sys, |b, sys| {
            b.iter(|| Traversal::bfs(0).run(&graph, sys).metrics.runtime)
        });
        let sim = Traversal::bfs(0).run(&graph, &sys).metrics.runtime;
        eprintln!(
            "[ablation] cxl devices={devices}: simulated {:.3} ms",
            sim.as_secs_f64() * 1e3
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_warp_ablation,
    bench_bridge_ordering,
    bench_cache_capacity,
    bench_device_count
);
criterion_main!(benches);
