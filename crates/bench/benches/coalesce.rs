//! Criterion benches of the 32 B-sector coalescer — the per-sublist hot
//! path of the EMOGI access method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxlg_gpu::coalesce::{coalesce_span, TransactionMix};
use cxlg_graph::layout::ByteSpan;
use std::hint::black_box;

fn bench_coalesce(c: &mut Criterion) {
    let mut g = c.benchmark_group("coalesce");
    g.sample_size(30);
    // Sublist sizes matching the paper's datasets: 256 B (urand),
    // 536 B (kron), and a 2 kB hub.
    for len in [256u64, 536, 2048] {
        let spans: Vec<ByteSpan> = (0..1024u64)
            .map(|i| ByteSpan {
                offset: (i * 7919) % 100_000 * 8,
                len,
            })
            .collect();
        g.throughput(Throughput::Elements(spans.len() as u64));
        g.bench_with_input(BenchmarkId::new("sublist", len), &spans, |b, spans| {
            b.iter(|| {
                let mut total = 0u64;
                for &s in spans {
                    coalesce_span(s, 128, 32, |t| total += t.bytes);
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_mix_accounting(c: &mut Criterion) {
    let spans: Vec<ByteSpan> = (0..1024u64)
        .map(|i| ByteSpan {
            offset: (i * 104729) % 1_000_000 * 8,
            len: 32 + (i % 64) * 8,
        })
        .collect();
    c.bench_function("coalesce_with_mix", |b| {
        b.iter(|| {
            let mut mix = TransactionMix::new(128, 32);
            for &s in &spans {
                coalesce_span(s, 128, 32, |t| mix.record(t));
            }
            black_box(mix.mean_bytes())
        })
    });
}

criterion_group!(benches, bench_coalesce, bench_mix_accounting);
criterion_main!(benches);
