//! Fast versions of the paper-figure pipelines as criterion benches, so
//! `cargo bench` exercises every experiment path end to end (the
//! full-scale harnesses live in `src/bin/`).

use criterion::{criterion_group, criterion_main, Criterion};
use cxlg_core::microbench::{cxl_cpu_random_read, pointer_chase_latency};
use cxlg_core::raf::{raf_for_trace, default_capacity};
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::{bfs_trace, Traversal};
use cxlg_device::cxl_mem::CxlMemConfig;
use cxlg_graph::spec::GraphSpec;
use cxlg_link::pcie::PcieGen;
use cxlg_model::eqs::{throughput, ThroughputParams};

fn bench_fig_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let graph = GraphSpec::urand(12).seed(1).build();

    g.bench_function("fig3_raf_point", |b| {
        let trace = bfs_trace(&graph, 0);
        b.iter(|| raf_for_trace(&graph, &trace, 512, default_capacity(&graph, 512)).raf)
    });

    g.bench_function("fig4_model_curve", |b| {
        let p = ThroughputParams::section32_example();
        b.iter(|| {
            (32..4096)
                .step_by(64)
                .map(|d| throughput(&p, d as f64))
                .sum::<f64>()
        })
    });

    g.bench_function("fig9_pointer_chase", |b| {
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1).with_added_latency_us(1.0);
        b.iter(|| pointer_chase_latency(&sys, 1 << 22, 100, 1).latency_us)
    });

    g.bench_function("fig10_cpu_reads", |b| {
        b.iter(|| {
            cxl_cpu_random_read(
                CxlMemConfig::default().with_added_latency_us(2.0),
                1 << 26,
                5_000,
                256,
                3,
            )
            .throughput_mb_per_sec
        })
    });

    g.bench_function("fig11_point", |b| {
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(1.5);
        b.iter(|| Traversal::bfs(0).run(&graph, &sys).metrics.runtime)
    });

    g.finish();
}

criterion_group!(benches, bench_fig_pipelines);
criterion_main!(benches);
