//! Criterion benches of the (rayon-parallel) graph generators and CSR
//! construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxlg_graph::spec::GraphSpec;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_gen");
    g.sample_size(10);
    let scale = 14u32;
    for (label, spec) in [
        ("urand", GraphSpec::urand(scale)),
        ("kron", GraphSpec::kron(scale)),
        ("social", GraphSpec::friendster_like(scale)),
    ] {
        g.throughput(Throughput::Elements(1u64 << scale));
        g.bench_function(BenchmarkId::new("family", label), |b| {
            b.iter(|| spec.seed(1).build().num_edges())
        });
    }
    g.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    use cxlg_graph::builder::{csr_from_packed_arcs, pack_arc};
    let mut g = c.benchmark_group("csr_build");
    g.sample_size(10);
    for scale in [12u32, 16] {
        let n = 1usize << scale;
        let arcs: Vec<u64> = (0..(n * 16) as u64)
            .map(|i| {
                let s = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 40) % n as u64;
                let d = (i.wrapping_mul(0xBF58476D1CE4E5B9) >> 40) % n as u64;
                pack_arc(s as u32, d as u32)
            })
            .collect();
        g.throughput(Throughput::Elements(arcs.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &arcs, |b, arcs| {
            b.iter(|| csr_from_packed_arcs(n, arcs.clone(), false).num_edges())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generators, bench_csr_build);
criterion_main!(benches);
