//! Criterion bench of end-to-end graph construction — `GraphSpec::build()`
//! through the two-pass streaming scatter builder — for the three paper
//! dataset families at scales 16–18 (the EXPERIMENTS.md before/after
//! table pairs these timings with `cxlg graph-mem` peak-RSS readings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxlg_graph::spec::GraphSpec;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("builder_bench");
    g.sample_size(10);
    for scale in [16u32, 17, 18] {
        for (label, spec) in [
            ("urand", GraphSpec::urand(scale)),
            ("kron", GraphSpec::kron(scale)),
            ("social", GraphSpec::friendster_like(scale)),
        ] {
            // Directed arcs ~= vertices * avg degree; per-family degree
            // differs, so report vertex throughput for comparability.
            g.throughput(Throughput::Elements(1u64 << scale));
            g.bench_function(BenchmarkId::new(label, scale), |b| {
                b.iter(|| spec.build().num_edges())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
