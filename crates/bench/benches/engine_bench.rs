//! Criterion bench for the PR 6 hot loop: the round-shard parallel
//! simulation path (`engine::simulate_shards` + `merge_shard_metrics`)
//! against the legacy coupled single-engine chain, across worker
//! counts. The sharded path must win wall-clock on multi-core while
//! producing results the differential suite pins byte-identical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxlg_core::access::DeviceRequest;
use cxlg_core::engine;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_graph::spec::GraphSpec;
use cxlg_link::pcie::PcieGen;
use cxlg_sim::SimTime;

/// A traversal-shaped batch list: frontier ramps up then collapses, the
/// same skew real BFS levels have (one huge middle level dominates).
fn level_batches() -> Vec<Vec<DeviceRequest>> {
    [50usize, 2_000, 30_000, 8_000, 400, 10]
        .iter()
        .map(|&n| {
            (0..n)
                .map(|i| DeviceRequest {
                    addr: i as u64 * 128,
                    bytes: 128,
                    overhead_ps: 0,
                })
                .collect()
        })
        .collect()
}

fn bench_shards_vs_coupled(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_shards");
    g.sample_size(10);
    let batches = level_batches();
    let total: u64 = batches.iter().map(|b| b.len() as u64).sum();
    g.throughput(Throughput::Elements(total));
    let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5);

    g.bench_function("coupled", |b| {
        b.iter(|| {
            let mut eng = sys.build_engine();
            let mut t = SimTime::ZERO;
            for reqs in &batches {
                t = eng.run_batch(t, reqs).end;
            }
            eng.finish().runtime
        })
    });
    for workers in [1usize, 2, 8] {
        g.bench_with_input(
            BenchmarkId::new("sharded", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    rayon::with_num_threads(workers, || {
                        let outcomes =
                            engine::simulate_shards(|| sys.build_engine(), &batches);
                        engine::merge_shard_metrics(&outcomes).runtime
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_full_traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("traversal_run");
    g.sample_size(10);
    let graph = GraphSpec::friendster_like(14).seed(0x5EED).build();
    let src = graph.max_degree_vertex().unwrap();
    let sys = SystemConfig::xlfdd(PcieGen::Gen4, 16);
    for workers in [1usize, 2, 8] {
        g.bench_with_input(
            BenchmarkId::new("sssp", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    rayon::with_num_threads(workers, || {
                        Traversal::sssp(src).run(&graph, &sys).metrics.runtime
                    })
                })
            },
        );
    }
    g.bench_function("sssp_reference", |b| {
        b.iter(|| Traversal::sssp(src).run_reference(&graph, &sys).metrics.runtime)
    });
    g.finish();
}

criterion_group!(benches, bench_shards_vs_coupled, bench_full_traversal);
criterion_main!(benches);
