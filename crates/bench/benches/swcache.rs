//! Criterion benches of the BaM-style software cache: hit and miss paths,
//! and the RAF-simulation access loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxlg_gpu::swcache::{SoftwareCache, SoftwareCacheConfig};
use std::hint::black_box;

fn bench_hits_and_misses(c: &mut Criterion) {
    let mut g = c.benchmark_group("swcache");
    g.sample_size(20);
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));

    // All-hit: working set fits.
    g.bench_function("hot_hits", |b| {
        let mut cache = SoftwareCache::new(SoftwareCacheConfig::new(1 << 24, 4096));
        for line in 0..512 {
            cache.access(line);
        }
        b.iter(|| {
            for i in 0..n {
                black_box(cache.access(i % 512));
            }
        })
    });

    // All-miss streaming: working set far exceeds capacity.
    g.bench_function("cold_misses", |b| {
        let mut cache = SoftwareCache::new(SoftwareCacheConfig::new(1 << 22, 4096));
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..n {
                next += 1;
                black_box(cache.access(next));
            }
        })
    });
    g.finish();
}

fn bench_associativity(c: &mut Criterion) {
    let mut g = c.benchmark_group("swcache_ways");
    g.sample_size(20);
    for ways in [4u32, 16, 64] {
        let cfg = SoftwareCacheConfig {
            capacity_bytes: 1 << 24,
            line_bytes: 4096,
            ways,
        };
        g.bench_with_input(BenchmarkId::from_parameter(ways), &cfg, |b, cfg| {
            let mut cache = SoftwareCache::new(*cfg);
            let mut i = 0u64;
            b.iter(|| {
                // Mixed reuse pattern: ~50% hits.
                for _ in 0..10_000 {
                    i += 1;
                    black_box(cache.access(i % 3000));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hits_and_misses, bench_associativity);
criterion_main!(benches);
