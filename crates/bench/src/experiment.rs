//! The [`Experiment`] trait — the contract every paper figure, table,
//! and extension study implements.
//!
//! ## Contract
//!
//! * [`name`](Experiment::name) is the stable identifier used by
//!   `cxlg run <name>`, the legacy shim binary, and the result file stem
//!   (`<results_dir>/<name>.json`). Names are unique across the
//!   [registry](crate::registry).
//! * [`description`](Experiment::description) is the one-line summary
//!   `cxlg list` prints and the banner repeats.
//! * [`run`](Experiment::run) executes the experiment against an
//!   [`ExperimentCtx`]: it must obtain graphs through
//!   [`ExperimentCtx::graph`] (never `GraphSpec::build` directly, so the
//!   campaign-wide cache sees every build) and write results through
//!   [`ExperimentCtx::dump_json`]. Runs are deterministic for a fixed
//!   `(scale, seed)` — stdout and the JSON `series` member are
//!   byte-identical across thread counts.
//!
//! Experiments are registered as [`FnExperiment`] values: plain function
//! pointers plus metadata, so the registry is a `static` table with no
//! allocation or registration ceremony.

use crate::ctx::ExperimentCtx;
use cxlg_graph::GraphSpec;
use serde::Serialize;

/// One paper figure, table, or extension study.
pub trait Experiment: Sync {
    /// Stable identifier (`fig3`, `table1`, `pagerank_study`, …).
    fn name(&self) -> &'static str;
    /// One-line summary shown by `cxlg list`.
    fn description(&self) -> &'static str;
    /// The graph specs this experiment will request from
    /// [`ExperimentCtx::graph`]. The campaign driver counts, across the
    /// run list, how many experiments consume each spec, and evicts a
    /// graph from the shared cache right after its last declared
    /// consumer — peak RSS is the campaign's binding constraint. An
    /// undeclared request still works (the cache rebuilds on demand),
    /// but the rebuild shows up in the manifest's build counts, which
    /// CI requires to be exactly one per spec.
    fn specs(&self, _ctx: &ExperimentCtx) -> Vec<GraphSpec> {
        Vec::new()
    }
    /// Execute against `ctx`, returning what was produced.
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentReport;
}

/// What one experiment run produced.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentReport {
    /// The experiment's registered name.
    pub name: String,
    /// Result files written under the context's results directory.
    pub result_files: Vec<String>,
    /// Process peak RSS (kB) sampled when the experiment finished — a
    /// process-wide high-water mark, so per-experiment values are
    /// monotone over a campaign and the *increase* over the previous
    /// experiment is what the experiment itself added. 0 when no source
    /// exists on the platform (see `cxlg_core::mem`).
    pub peak_rss_kb: u64,
}

/// An [`Experiment`] defined by a function pointer — the registry's
/// entry type.
pub struct FnExperiment {
    /// Stable identifier.
    pub name: &'static str,
    /// One-line summary.
    pub description: &'static str,
    /// Graph specs the experiment consumes (for cache eviction planning).
    pub specs: fn(&ExperimentCtx) -> Vec<GraphSpec>,
    /// The experiment body. Obtains graphs and dumps results via `ctx`.
    pub run: fn(&ExperimentCtx),
}

impl Experiment for FnExperiment {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn specs(&self, ctx: &ExperimentCtx) -> Vec<GraphSpec> {
        (self.specs)(ctx)
    }

    fn run(&self, ctx: &ExperimentCtx) -> ExperimentReport {
        // Start from a clean slate so files dumped by a previous
        // experiment on this context are never misattributed.
        let _ = ctx.take_written();
        (self.run)(ctx);
        ExperimentReport {
            name: self.name.to_string(),
            result_files: ctx.take_written(),
            peak_rss_kb: cxlg_core::mem::peak_rss_kb(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(_: &ExperimentCtx) {}

    fn no_specs(_: &ExperimentCtx) -> Vec<GraphSpec> {
        Vec::new()
    }

    fn dumps_one(ctx: &ExperimentCtx) {
        ctx.dump_json("unit_exp", &7u64);
    }

    fn tmp_ctx(tag: &str) -> ExperimentCtx {
        let dir = std::env::temp_dir().join(format!("cxlg-exp-test-{tag}-{}", std::process::id()));
        ExperimentCtx::new(8, 1, 1, dir)
    }

    #[test]
    fn report_attributes_written_files() {
        let exp = FnExperiment {
            name: "unit_exp",
            description: "unit",
            specs: no_specs,
            run: dumps_one,
        };
        let ctx = tmp_ctx("report");
        let report = exp.run(&ctx);
        assert_eq!(report.name, "unit_exp");
        assert_eq!(report.result_files.len(), 1);
        assert!(report.result_files[0].ends_with("unit_exp.json"));
        #[cfg(target_os = "linux")]
        assert!(report.peak_rss_kb > 0, "peak RSS missing on Linux");
    }

    #[test]
    fn report_is_empty_for_print_only_experiments() {
        let exp = FnExperiment {
            name: "noop",
            description: "prints, writes nothing",
            specs: no_specs,
            run: noop,
        };
        let ctx = tmp_ctx("noop");
        assert!(exp.run(&ctx).result_files.is_empty());
    }
}
