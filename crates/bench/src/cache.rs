//! Process-wide graph cache keyed by [`GraphSpec`].
//!
//! The experiment campaign (Figs. 3–6, 9–11, Tables 1–2 plus the
//! extension studies) reuses the same three paper datasets over and
//! over; before the cache existed, `all_figures` re-generated and
//! re-CSR'd each of them once per figure binary. The cache guarantees
//! **one build per distinct spec per process** — concurrent requests
//! for the same spec block on a [`OnceLock`] while the first caller
//! builds, and requests for different specs build in parallel (the
//! vendored rayon spawns a fresh scoped pool per parallel call, so
//! blocking a worker thread cannot deadlock the pool).
//!
//! Build counts are recorded per spec so the `cxlg` manifest can prove
//! the "each dataset built exactly once" property of a full run.

use cxlg_graph::spec::{GraphKind, GraphSpec};
use cxlg_graph::{CsrStorage, SpillConfig, StorageMode};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Manifest label uniquely identifying one built spec: dataset name plus
/// the degree parameter and seed, because `GraphSpec::name()` alone
/// collapses specs that differ only in those fields — and a collapsed
/// label would make the "exactly one build per spec" evidence lie.
/// Public because the campaign service keys its fingerprint memo (and
/// thus every `JobKey`) on the same label.
pub fn spec_label(spec: &GraphSpec) -> String {
    let param = match spec.kind {
        GraphKind::Uniform { avg_degree } => format!("deg{avg_degree}"),
        GraphKind::Kronecker { edge_factor } => format!("ef{edge_factor}"),
        GraphKind::Social { avg_degree } => format!("deg{avg_degree}"),
    };
    format!("{}({param})@{:#x}", spec.name(), spec.seed)
}

/// Shared, thread-safe cache of built graphs.
///
/// Every map in here is a `BTreeMap`: nothing currently iterates
/// `entries`, but cache state must never be one refactor away from
/// hash-order output (lint rule D1) — the build/eviction counts *are*
/// iterated into the manifest and sort by label structurally.
///
/// The cache owns the storage decision: every build goes to the
/// backend fixed at construction ([`GraphCache::with_storage`]), so a
/// campaign is either all-mem or all-spill and a cache hit can never
/// return a different backend than the miss that populated it.
pub struct GraphCache {
    entries: Mutex<BTreeMap<GraphSpec, Arc<OnceLock<Arc<CsrStorage>>>>>,
    builds: Mutex<BTreeMap<String, u64>>,
    evictions: Mutex<BTreeMap<String, u64>>,
    mode: StorageMode,
    spill: SpillConfig,
}

impl Default for GraphCache {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphCache {
    /// An empty cache building fully resident graphs (the historical
    /// behavior).
    pub fn new() -> Self {
        Self::with_storage(
            StorageMode::Mem,
            // cxlg-lint: allow(D6) -- fallback spill directory only; a mem-mode cache never touches it, and spill callers pass their own via with_storage
            SpillConfig::new(std::env::temp_dir().join("cxlg-graph-spill")),
        )
    }

    /// An empty cache building into the given storage backend. `spill`
    /// is only consulted in [`StorageMode::Spill`].
    pub fn with_storage(mode: StorageMode, spill: SpillConfig) -> Self {
        GraphCache {
            entries: Mutex::new(BTreeMap::new()),
            builds: Mutex::new(BTreeMap::new()),
            evictions: Mutex::new(BTreeMap::new()),
            mode,
            spill,
        }
    }

    /// The storage backend this cache builds into.
    pub fn storage_mode(&self) -> StorageMode {
        self.mode
    }

    /// The spill configuration builds use in [`StorageMode::Spill`]
    /// (admission estimates need its resident-overhead budget).
    pub fn spill_config(&self) -> &SpillConfig {
        &self.spill
    }

    /// The graph for `spec`, building it on first use. The build happens
    /// at most once per spec; later callers (including concurrent ones)
    /// receive a clone of the same `Arc`.
    pub fn get(&self, spec: GraphSpec) -> Arc<CsrStorage> {
        let cell = {
            let mut entries = self.entries.lock().unwrap();
            entries.entry(spec).or_default().clone()
        };
        cell.get_or_init(|| {
            *self
                .builds
                .lock()
                .unwrap()
                .entry(spec_label(&spec))
                .or_insert(0) += 1;
            Arc::new(spec.build_with(self.mode, &self.spill))
        })
        .clone()
    }

    /// `(resident, on-disk)` byte totals across the currently built
    /// graphs — manifest telemetry for the storage backend.
    pub fn storage_bytes(&self) -> (u64, u64) {
        let entries = self.entries.lock().unwrap();
        let mut resident = 0u64;
        let mut on_disk = 0u64;
        for cell in entries.values() {
            if let Some(g) = cell.get() {
                resident += g.resident_bytes();
                on_disk += g.on_disk_bytes();
            }
        }
        (resident, on_disk)
    }

    /// Per-spec build counts, sorted by dataset name — the manifest's
    /// evidence that a full campaign builds each dataset exactly once.
    pub fn build_counts(&self) -> Vec<(String, u64)> {
        self.builds
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Drop the cached graph for `spec`, freeing its memory once every
    /// outstanding `Arc` clone is gone. Returns whether a *built* graph
    /// was actually evicted (a later `get` will rebuild — and the
    /// manifest's build count will expose it if the eviction was
    /// premature). Called by the campaign driver after the last
    /// registered consumer of a spec has run.
    pub fn release(&self, spec: &GraphSpec) -> bool {
        let removed = self.entries.lock().unwrap().remove(spec);
        let evicted = removed.is_some_and(|cell| cell.get().is_some());
        if evicted {
            *self
                .evictions
                .lock()
                .unwrap()
                .entry(spec_label(spec))
                .or_insert(0) += 1;
        }
        evicted
    }

    /// Per-spec eviction counts, sorted by dataset name — recorded in
    /// the manifest alongside the build counts.
    pub fn eviction_counts(&self) -> Vec<(String, u64)> {
        self.evictions
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn one_build_per_spec() {
        let cache = GraphCache::new();
        let spec = GraphSpec::urand(8).seed(1);
        let a = cache.get(spec);
        let b = cache.get(spec);
        assert!(Arc::ptr_eq(&a, &b), "second get must hit the cache");
        assert_eq!(
            cache.build_counts(),
            vec![("urand8(deg32)@0x1".to_string(), 1)]
        );
    }

    #[test]
    fn distinct_specs_build_separately() {
        let cache = GraphCache::new();
        cache.get(GraphSpec::urand(8).seed(1));
        cache.get(GraphSpec::kron(8).seed(1));
        cache.get(GraphSpec::urand(8).seed(1));
        assert_eq!(
            cache.build_counts(),
            vec![
                ("kron8(ef16)@0x1".to_string(), 1),
                ("urand8(deg32)@0x1".to_string(), 1)
            ]
        );
    }

    #[test]
    fn specs_sharing_a_name_count_separately() {
        // Same name() but different seed or degree parameter: two
        // legitimate builds, never one conflated count — the manifest
        // must not report a spurious rebuild.
        let cache = GraphCache::new();
        cache.get(GraphSpec::urand(8).seed(1));
        cache.get(GraphSpec::urand(8).seed(2));
        cache.get(GraphSpec::uniform(8, 64).seed(1));
        assert_eq!(
            cache.build_counts(),
            vec![
                ("urand8(deg32)@0x1".to_string(), 1),
                ("urand8(deg32)@0x2".to_string(), 1),
                ("urand8(deg64)@0x1".to_string(), 1)
            ]
        );
    }

    #[test]
    fn cached_graph_is_identical_to_a_direct_build() {
        // Determinism with the cache on/off: the cached CSR is the same
        // graph `spec.build()` produces without a cache.
        let spec = GraphSpec::friendster_like(8).seed(7);
        let cache = GraphCache::new();
        assert_eq!(
            *cache.get(spec).as_mem().expect("mem cache holds mem graphs"),
            spec.build()
        );
    }

    #[test]
    fn spill_cache_builds_spill_graphs_with_identical_fingerprints() {
        let spec = GraphSpec::urand(8).seed(7);
        let dir = std::env::temp_dir().join(format!("cxlg-cache-spill-{}", std::process::id()));
        let cache = GraphCache::with_storage(StorageMode::Spill, SpillConfig::new(dir));
        let g = cache.get(spec);
        assert_eq!(g.storage_mode(), StorageMode::Spill);
        assert!(g.as_mem().is_none());
        assert_eq!(g.fingerprint(), spec.build().fingerprint());
        let (resident, on_disk) = cache.storage_bytes();
        assert!(on_disk > 0, "spill graphs must report on-disk bytes");
        assert!(resident > 0);
        // Build accounting is storage-agnostic.
        assert_eq!(
            cache.build_counts(),
            vec![("urand8(deg32)@0x7".to_string(), 1)]
        );
    }

    #[test]
    fn release_evicts_and_a_later_get_rebuilds() {
        let cache = GraphCache::new();
        let spec = GraphSpec::urand(8).seed(1);
        let a = cache.get(spec);
        assert!(cache.release(&spec), "built graph must report eviction");
        assert_eq!(
            cache.eviction_counts(),
            vec![("urand8(deg32)@0x1".to_string(), 1)]
        );
        // The evicted Arc stays valid for existing holders.
        assert_eq!(a.num_vertices(), 256);
        // A post-eviction get rebuilds — and the build count says so.
        let b = cache.get(spec);
        assert!(!Arc::ptr_eq(&a, &b), "rebuild must be a fresh Arc");
        assert_eq!(
            cache.build_counts(),
            vec![("urand8(deg32)@0x1".to_string(), 2)]
        );
    }

    #[test]
    fn release_of_an_unbuilt_spec_is_not_an_eviction() {
        let cache = GraphCache::new();
        assert!(!cache.release(&GraphSpec::urand(8).seed(1)));
        assert!(cache.eviction_counts().is_empty());
    }

    #[test]
    fn concurrent_gets_build_once() {
        // Eight parallel requests for the same spec race into the cache;
        // OnceLock must collapse them into a single build.
        let cache = GraphCache::new();
        let spec = GraphSpec::kron(9).seed(3);
        let graphs: Vec<Arc<CsrStorage>> = (0..8u32)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|_| cache.get(spec))
            .collect();
        for g in &graphs {
            assert!(Arc::ptr_eq(g, &graphs[0]));
        }
        assert_eq!(
            cache.build_counts(),
            vec![("kron9(ef16)@0x3".to_string(), 1)]
        );
    }
}
