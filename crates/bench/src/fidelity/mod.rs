//! Paper-fidelity subsystem — `cxlg validate`.
//!
//! The campaign reproduces conf_sc_SanoBHKSNTKS23's figures and tables;
//! this module checks the reproduction *against the paper's reported
//! numbers* and renders the comparison as a generated `FIDELITY.md`:
//!
//! * [`reference`](mod@reference) — the paper's series transcribed as machine-readable
//!   data: values, units, axes, tolerance bands, and the scale at which
//!   each comparison binds;
//! * [`engine`] — loads a campaign's result JSONs (`Campaign`), reduces
//!   each figure to named scalars/series (`extract`, interpolating where
//!   the x grids differ and normalizing to per-series baselines where
//!   the paper's absolute axis depends on real hardware), and computes
//!   per-point residuals with PASS / FLAG / SKIP verdicts (`evaluate`);
//! * [`report`] — renders the byte-stable `FIDELITY.md`.
//!
//! `cxlg validate [--campaign-dir=DIR] [--write-report[=PATH]]` drives
//! the pipeline and exits nonzero on any FLAG, which is what turns
//! paper fidelity from a hand-maintained EXPERIMENTS.md diff into a red
//! CI check: ci.sh validates every campaign it runs, and the golden-file
//! test pins the scale-20 report bit for bit.

pub mod engine;
pub mod reference;
pub mod report;

pub use engine::{evaluate, Campaign, FidelityReport, Verdict};
pub use report::render_markdown;

use std::path::{Path, PathBuf};

/// Parsed `cxlg validate` arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct ValidateArgs {
    /// Campaign directory; `None` = the context results dir.
    pub campaign_dir: Option<String>,
    /// `Some(None)` = report at `<campaign-dir>/FIDELITY.md`;
    /// `Some(Some(p))` = at `p`; `None` = stdout summary only.
    pub write_report: Option<Option<String>>,
}

/// Parse the arguments following `cxlg validate`.
pub fn parse_validate_args(args: &[String]) -> Result<ValidateArgs, String> {
    let mut out = ValidateArgs {
        campaign_dir: None,
        write_report: None,
    };
    for a in args {
        if let Some(dir) = a.strip_prefix("--campaign-dir=") {
            if dir.is_empty() {
                return Err("--campaign-dir= requires a path".to_string());
            }
            out.campaign_dir = Some(dir.to_string());
        } else if a == "--write-report" {
            out.write_report = Some(None);
        } else if let Some(path) = a.strip_prefix("--write-report=") {
            if path.is_empty() {
                return Err("--write-report= requires a path".to_string());
            }
            out.write_report = Some(Some(path.to_string()));
        } else {
            return Err(format!("unknown argument `{a}`"));
        }
    }
    Ok(out)
}

/// Validate a campaign directory: evaluate every reference check,
/// optionally write `FIDELITY.md`, print a summary, and return the
/// process exit code (0 = no FLAG verdicts).
pub fn run_validate(args: ValidateArgs) -> i32 {
    let dir = args
        .campaign_dir
        .map(PathBuf::from)
        .unwrap_or_else(crate::results_dir);
    let campaign = match Campaign::load(&dir) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("cxlg validate: {msg}");
            eprintln!(
                "(run `cxlg run --all --json-manifest` first, or point \
                 --campaign-dir= at a captured campaign)"
            );
            return 1;
        }
    };
    let report = evaluate(&campaign);
    println!(
        "fidelity: campaign {} (scale 2^{}, seed {:#x}) — {} PASS, {} FLAG, {} SKIP",
        dir.display(),
        report.scale,
        report.seed,
        report.count(Verdict::Pass),
        report.count(Verdict::Flag),
        report.count(Verdict::Skip),
    );
    for f in report.findings.iter().filter(|f| f.verdict == Verdict::Flag) {
        println!(
            "  FLAG {} / {}: measured {} vs paper {} ({})",
            f.figure,
            f.key,
            f.measured,
            f.paper,
            f.residual_pct
                .map(|r| format!("{r:+.1}%"))
                .unwrap_or_else(|| "no residual".into()),
        );
    }
    if let Some(path) = args.write_report {
        let path = path
            .map(PathBuf::from)
            .unwrap_or_else(|| dir.join("FIDELITY.md"));
        if let Err(e) = write_report(&report, &path) {
            eprintln!("cxlg validate: cannot write {}: {e}", path.display());
            return 1;
        }
        eprintln!("[fidelity report {}]", path.display());
    }
    if report.clean() {
        0
    } else {
        1
    }
}

/// Render and write the report to `path`, creating parent directories.
pub fn write_report(report: &FidelityReport, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_markdown(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_validate_forms() {
        let va = parse_validate_args(&s(&[])).unwrap();
        assert_eq!(va, ValidateArgs { campaign_dir: None, write_report: None });

        let va = parse_validate_args(&s(&["--campaign-dir=/tmp/c", "--write-report"])).unwrap();
        assert_eq!(va.campaign_dir, Some("/tmp/c".to_string()));
        assert_eq!(va.write_report, Some(None));

        let va = parse_validate_args(&s(&["--write-report=/tmp/F.md"])).unwrap();
        assert_eq!(va.write_report, Some(Some("/tmp/F.md".to_string())));
    }

    #[test]
    fn parse_validate_rejects_bad_input() {
        assert!(parse_validate_args(&s(&["--campaign-dir="])).is_err());
        assert!(parse_validate_args(&s(&["--write-report="])).is_err());
        assert!(parse_validate_args(&s(&["--frob"])).is_err());
        assert!(parse_validate_args(&s(&["positional"])).is_err());
    }

    #[test]
    fn validating_a_missing_campaign_fails_cleanly() {
        let args = ValidateArgs {
            campaign_dir: Some("/nonexistent/campaign".to_string()),
            write_report: None,
        };
        assert_eq!(run_validate(args), 1);
    }
}
