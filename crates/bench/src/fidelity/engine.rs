//! The alignment + residual engine behind `cxlg validate`.
//!
//! [`Campaign::load`] reads a campaign directory (result JSONs plus the
//! optional `manifest.json`), [`extract`] reduces each figure's
//! free-form `series` JSON to named scalars and `(x, y)` series, and
//! [`evaluate`] walks the reference [`Check`] table computing per-point
//! residuals and PASS / FLAG / SKIP verdicts. Everything is pure over
//! the loaded bytes, so the golden-file test can pin the whole pipeline
//! on a checked-in campaign.

use super::reference::{checks_for, Check, Expect, FIGURES};
use cxlg_core::runner::{interp_series, try_geometric_mean};
use cxlg_link::pcie::PcieGen;
use cxlg_model::requirements::{emogi_requirements, requirements};
use serde::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A loaded campaign: run configuration plus every result `series`
/// needed by the reference table.
pub struct Campaign {
    /// Directory the campaign was loaded from.
    pub dir: PathBuf,
    /// log2 vertex count the campaign ran at (from the result headers).
    pub scale: u32,
    /// Generator seed the campaign ran with.
    pub seed: u64,
    series: BTreeMap<String, Value>,
}

impl Campaign {
    /// Load every reference-covered result file from `dir`. Fails with
    /// a description naming the first missing/corrupt file — a campaign
    /// that cannot cover all reproduced figures is not validatable.
    pub fn load(dir: &Path) -> Result<Self, String> {
        let mut series = BTreeMap::new();
        let mut config: Option<(u32, u64)> = None;
        for figure in FIGURES {
            if *figure == "eq6" {
                continue; // recomputed from cxlg-model, no result file
            }
            let path = dir.join(format!("{figure}.json"));
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let v: Value = serde_json::from_str(&text)
                .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
            let header = get(&v, "header").ok_or_else(|| format!("{figure}.json: no header"))?;
            let scale = get_u64(header, "scale")
                .ok_or_else(|| format!("{figure}.json: header lacks scale"))? as u32;
            let seed = get_u64(header, "seed")
                .ok_or_else(|| format!("{figure}.json: header lacks seed"))?;
            match config {
                None => config = Some((scale, seed)),
                Some((s0, d0)) if (s0, d0) != (scale, seed) => {
                    return Err(format!(
                        "{figure}.json ran at scale {scale}/seed {seed:#x}, but earlier \
                         results ran at scale {s0}/seed {d0:#x} — not one campaign"
                    ));
                }
                Some(_) => {}
            }
            let s = get(&v, "series").ok_or_else(|| format!("{figure}.json: no series"))?;
            series.insert(figure.to_string(), s.clone());
        }
        let (scale, seed) = config.expect("FIGURES contains loadable entries");
        Ok(Campaign {
            dir: dir.to_path_buf(),
            scale,
            seed,
            series,
        })
    }

    /// The raw `series` member of one result file.
    pub fn series(&self, figure: &str) -> Option<&Value> {
        self.series.get(figure)
    }
}

/// One figure's data reduced to the shapes the reference table keys on.
#[derive(Debug, Default)]
pub struct Extracted {
    /// Named scalar quantities.
    pub scalars: BTreeMap<String, f64>,
    /// Named `(x, y)` series, sorted by ascending x.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
}

// ----------------------------------------------------------- Value helpers

fn get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::U128(n) => Some(*n as f64),
        _ => None,
    }
}

fn get_num(v: &Value, key: &str) -> Option<f64> {
    get(v, key).and_then(num)
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match get(v, key) {
        Some(Value::U64(n)) => Some(*n),
        Some(Value::I64(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn get_str<'v>(v: &'v Value, key: &str) -> Option<&'v str> {
    match get(v, key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

fn arr(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Array(a) => Some(a),
        _ => None,
    }
}

/// `urand20` → `urand`, `friendster10` → `friendster` — dataset names
/// carry the scale, reference keys must not.
fn family(dataset: &str) -> &str {
    dataset.trim_end_matches(|c: char| c.is_ascii_digit())
}

// -------------------------------------------------------------- extractors

/// Reduce one figure's `series` JSON (ignored for `eq6`) to the named
/// scalars/series its checks reference. Unknown figures extract empty.
pub fn extract(figure: &str, campaign: &Campaign) -> Extracted {
    let mut out = Extracted::default();
    let Some(series) = campaign.series(figure) else {
        if figure == "eq6" {
            extract_eq6(&mut out);
        }
        return out;
    };
    match figure {
        "table1" => extract_table1(series, &mut out),
        "table2" => extract_table2(series, &mut out),
        "fig3" => extract_fig3(series, &mut out),
        "fig4" => extract_fig4(series, &mut out),
        "fig5" => extract_fig5(series, &mut out),
        "fig6" => extract_fig6(series, &mut out),
        "fig9" => extract_fig9(series, &mut out),
        "fig10" => extract_fig10(series, &mut out),
        "fig11" => extract_fig11(series, &mut out),
        _ => {}
    }
    out
}

fn extract_table1(series: &Value, out: &mut Extracted) {
    for row in arr(series).unwrap_or(&[]) {
        let (Some(name), Some(stats)) = (get_str(row, "name"), get(row, "stats")) else {
            continue;
        };
        let fam = family(name);
        if let Some(d) = get_num(stats, "avg_degree_nonzero") {
            out.scalars.insert(format!("{fam} avg degree"), d);
        }
        if let Some(b) = get_num(stats, "avg_sublist_bytes") {
            out.scalars.insert(format!("{fam} avg sublist"), b);
        }
    }
}

fn extract_table2(series: &Value, out: &mut Extracted) {
    let peak = arr(series)
        .unwrap_or(&[])
        .iter()
        .filter_map(|r| get_num(r, "vertices"))
        .fold(0.0f64, f64::max);
    out.scalars.insert("peak frontier vertices".into(), peak);
    out.scalars
        .insert("peak frontier / Gen4 Nmax".into(), peak / 768.0);
}

fn extract_fig3(series: &Value, out: &mut Extracted) {
    for s in arr(series).unwrap_or(&[]) {
        let (Some(w), Some(ds)) = (get_str(s, "workload"), get_str(s, "dataset")) else {
            continue;
        };
        let key = format!("{w}/{}", family(ds));
        let mut pts: Vec<(f64, f64)> = arr(get(s, "points").unwrap_or(&Value::Null))
            .unwrap_or(&[])
            .iter()
            .filter_map(|p| Some((get_num(p, "alignment")?, get_num(p, "raf")?)))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if let Some(&(_, first)) = pts.first() {
            out.scalars.insert(format!("{key} RAF@8B"), first);
        }
        if let Some(&(_, last)) = pts.last() {
            out.scalars.insert(format!("{key} RAF@4kB"), last);
        }
        out.series.insert(format!("{key} RAF(a)"), pts);
    }
}

fn extract_fig4(series: &Value, out: &mut Extracted) {
    let points = arr(series).unwrap_or(&[]);
    let mut t = Vec::new();
    let mut d = Vec::new();
    let mut best: Option<(f64, f64)> = None;
    for p in points {
        let (Some(x), Some(tp), Some(dm), Some(rt)) = (
            get_num(p, "d_bytes"),
            get_num(p, "throughput_mb_per_sec"),
            get_num(p, "total_mb"),
            get_num(p, "runtime_sec"),
        ) else {
            continue;
        };
        t.push((x, tp));
        d.push((x, dm));
        if best.is_none_or(|(_, r)| rt < r) {
            best = Some((x, rt));
        }
    }
    out.series.insert("T(d)".into(), t);
    out.series.insert("D(d)".into(), d);
    if let Some((x, _)) = best {
        out.scalars.insert("runtime-optimal d".into(), x);
    }
}

fn extract_fig5(series: &Value, out: &mut Extracted) {
    let mut pts: Vec<(f64, f64)> = arr(get(series, "points").unwrap_or(&Value::Null))
        .unwrap_or(&[])
        .iter()
        .filter_map(|p| Some((get_num(p, "alignment")?, get_num(p, "normalized_runtime")?)))
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    if let (Some(&(_, at16)), Some(&(_, at4k))) = (pts.first(), pts.last()) {
        out.scalars.insert("XLFDD/EMOGI @16B".into(), at16);
        if at16 > 0.0 {
            out.scalars.insert("XLFDD 4kB/16B ratio".into(), at4k / at16);
        }
        if let Some(bam) = get_num(series, "bam_normalized") {
            if at4k > 0.0 {
                out.scalars.insert("BaM(4kB) / XLFDD(4kB)".into(), bam / at4k);
            }
        }
    }
    out.series.insert("XLFDD/EMOGI (a)".into(), pts);
}

fn extract_fig6(series: &Value, out: &mut Extracted) {
    let cells = arr(series).unwrap_or(&[]);
    let xl: Vec<f64> = cells.iter().filter_map(|c| get_num(c, "xlfdd_normalized")).collect();
    let bam: Vec<f64> = cells.iter().filter_map(|c| get_num(c, "bam_normalized")).collect();
    // try_geometric_mean (not the panicking geometric_mean): a corrupt
    // or degenerate result file must flag, not abort the validator.
    if let Some(g) = try_geometric_mean(&xl) {
        out.scalars.insert("XLFDD geomean".into(), g);
    }
    if let Some(g) = try_geometric_mean(&bam) {
        out.scalars.insert("BaM geomean".into(), g);
    }
    if xl.len() == bam.len() && !xl.is_empty() {
        // Strictly slower: a tie would not demonstrate the paper's
        // granularity ordering.
        let slower = xl.iter().zip(&bam).filter(|(x, b)| b > x).count();
        out.scalars
            .insert("pairs with BaM slower than XLFDD".into(), slower as f64);
    }
}

fn extract_fig9(series: &Value, out: &mut Extracted) {
    let mut bars: BTreeMap<String, f64> = BTreeMap::new();
    for b in arr(series).unwrap_or(&[]) {
        if let (Some(l), Some(us)) = (get_str(b, "label"), get_num(b, "latency_us")) {
            bars.insert(l.to_string(), us);
        }
    }
    let (near, far) = (bars.get("DRAM1").copied(), bars.get("DRAM0").copied());
    if let Some(n) = near {
        out.scalars.insert("DRAM near-socket latency".into(), n);
    }
    if let Some(f) = far {
        out.scalars.insert("DRAM far-socket latency".into(), f);
        if let Some(n) = near {
            out.scalars.insert("far-socket penalty".into(), f - n);
        }
    }
    if let (Some(n), Some(c0)) = (near, bars.get("CXL3(+0)")) {
        out.scalars.insert("CXL(+0) over DRAM".into(), c0 - n);
    }
    // Step linearity past the bridge floor: the +0 → +1 step absorbs the
    // floor, so only +1 → +2 → +3 must move by exactly the injection.
    let steps: Vec<f64> = (1..3)
        .filter_map(|k| {
            let a = bars.get(&format!("CXL3(+{k})"))?;
            let b = bars.get(&format!("CXL3(+{})", k + 1))?;
            Some((b - a - 1.0).abs())
        })
        .collect();
    if steps.len() == 2 {
        out.scalars.insert(
            "CXL step dev from 1 µs".into(),
            // cxlg-lint: allow(D4) -- mean of a two-element Vec built in fixed label order; the golden FIDELITY.md test pins the bytes
            steps.iter().sum::<f64>() / steps.len() as f64,
        );
    }
}

fn extract_fig10(series: &Value, out: &mut Extracted) {
    let mut pts: Vec<(f64, f64, f64)> = arr(series)
        .unwrap_or(&[])
        .iter()
        .filter_map(|p| {
            Some((
                get_num(p, "added_latency_us")?,
                get_num(p, "throughput_mb_per_sec")?,
                get_num(p, "outstanding")?,
            ))
        })
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let at = |us: f64| pts.iter().find(|p| p.0 == us);
    if let Some(&(_, t0, _)) = at(0.0) {
        out.scalars.insert("throughput @+0µs".into(), t0);
        if t0 > 0.0 {
            if let Some(&(_, t1, _)) = at(1.0) {
                out.scalars.insert("T(+1µs)/T(+0µs)".into(), t1 / t0);
            }
            if let Some(&(_, t10, _)) = at(10.0) {
                out.scalars.insert("T(+10µs)/T(+0µs)".into(), t10 / t0);
            }
        }
    }
    if let Some(&(_, _, n)) = at(10.0) {
        out.scalars.insert("outstanding @+10µs".into(), n);
    }
}

fn extract_fig11(series: &Value, out: &mut Extracted) {
    let mut by_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for p in arr(series).unwrap_or(&[]) {
        let (Some(w), Some(ds), Some(x), Some(y)) = (
            get_str(p, "workload"),
            get_str(p, "dataset"),
            get_num(p, "added_latency_us"),
            get_num(p, "normalized_runtime"),
        ) else {
            continue;
        };
        by_series
            .entry(format!("{w}/{}", family(ds)))
            .or_default()
            .push((x, y));
    }
    let mut max0 = f64::NEG_INFINITY;
    let mut max05 = f64::NEG_INFINITY;
    let mut min_rise = f64::INFINITY;
    for pts in by_series.values_mut() {
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let at = |pts: &[(f64, f64)], x: f64| pts.iter().find(|p| p.0 == x).map(|p| p.1);
        if let Some(y) = at(pts, 0.0) {
            max0 = max0.max(y);
        }
        if let Some(y) = at(pts, 0.5) {
            max05 = max05.max(y);
            if let Some(y3) = at(pts, 3.0) {
                if y > 0.0 {
                    min_rise = min_rise.min(y3 / y);
                }
            }
        }
    }
    if max0.is_finite() {
        out.scalars.insert("max normalized @+0µs".into(), max0);
    }
    if max05.is_finite() {
        out.scalars.insert("max normalized @+0.5µs".into(), max05);
    }
    if min_rise.is_finite() {
        out.scalars.insert("min rise (+3µs / +0.5µs)".into(), min_rise);
    }
    if let Some(pts) = by_series.get("BFS/urand") {
        out.series.insert("BFS/urand normalized(L)".into(), pts.clone());
        out.series.insert("BFS/urand monotone".into(), pts.clone());
    }
    if let Some(pts) = by_series.get("SSSP/friendster") {
        out.series.insert("SSSP/friendster monotone".into(), pts.clone());
    }
}

fn extract_eq6(out: &mut Extracted) {
    let g4 = emogi_requirements(PcieGen::Gen4);
    let g3 = emogi_requirements(PcieGen::Gen3);
    let xl = requirements(&cxlg_link::pcie::PcieLinkConfig::x16(PcieGen::Gen4), 256.0);
    out.scalars.insert("Gen4 min S".into(), g4.min_miops);
    out.scalars.insert("Gen4 max L".into(), g4.max_latency_us);
    out.scalars.insert("Gen3 min S".into(), g3.min_miops);
    out.scalars.insert("Gen3 max L".into(), g3.max_latency_us);
    out.scalars.insert("XLFDD d=256B min S".into(), xl.min_miops);
}

// -------------------------------------------------------------- evaluation

/// Verdict of one fidelity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance at an enforced scale.
    Pass,
    /// Outside tolerance at an enforced scale (or data missing).
    Flag,
    /// Residual reported but not enforced: the comparison only binds
    /// at a larger `CXLG_SCALE` (the check's `min_scale`).
    Skip,
}

/// One evaluated check: the measured value(s), the paper reference,
/// the residual, and the verdict.
pub struct Finding {
    /// Figure/table the check belongs to.
    pub figure: &'static str,
    /// The checked quantity.
    pub key: &'static str,
    /// Units / axes.
    pub units: &'static str,
    /// Formatted measured value (worst point for series checks).
    pub measured: String,
    /// Formatted paper reference (value, band, or series summary).
    pub paper: String,
    /// Signed residual vs the paper value in percent, when defined.
    pub residual_pct: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
    /// Context: transcription note plus any skip reason or geomean delta.
    pub note: String,
}

/// A full fidelity evaluation of one campaign.
pub struct FidelityReport {
    /// Campaign scale (log2 vertex count).
    pub scale: u32,
    /// Campaign seed.
    pub seed: u64,
    /// One finding per reference check, in report order.
    pub findings: Vec<Finding>,
}

impl FidelityReport {
    /// Count findings with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.findings.iter().filter(|f| f.verdict == v).count()
    }

    /// True when no check flagged — the campaign matches the paper
    /// everywhere a comparison is enforceable at its scale.
    pub fn clean(&self) -> bool {
        self.count(Verdict::Flag) == 0
    }
}

fn fmt(x: f64) -> String {
    if !x.is_finite() {
        return x.to_string();
    }
    let a = x.abs();
    if a != 0.0 && (a >= 10_000.0 || a < 0.01) {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

/// Evaluate every reference check against a loaded campaign.
pub fn evaluate(campaign: &Campaign) -> FidelityReport {
    let mut findings = Vec::new();
    for figure in FIGURES {
        let data = extract(figure, campaign);
        for check in checks_for(figure) {
            findings.push(eval_check(check, &data, campaign.scale));
        }
    }
    FidelityReport {
        scale: campaign.scale,
        seed: campaign.seed,
        findings,
    }
}

fn finding(check: &Check, measured: String, paper: String, residual_pct: Option<f64>,
           within: bool, scale: u32, extra: &str) -> Finding {
    let enforced = scale >= check.min_scale;
    let verdict = match (enforced, within) {
        (true, true) => Verdict::Pass,
        (true, false) => Verdict::Flag,
        (false, _) => Verdict::Skip,
    };
    let mut note = String::new();
    if !enforced {
        note.push_str(&format!("scale-gated (needs scale ≥ {}). ", check.min_scale));
    }
    if !extra.is_empty() {
        note.push_str(extra);
        note.push(' ');
    }
    note.push_str(check.note);
    Finding {
        figure: check.figure,
        key: check.key,
        units: check.units,
        measured,
        paper,
        residual_pct,
        verdict,
        note,
    }
}

fn missing(check: &Check, kind: &str) -> Finding {
    Finding {
        figure: check.figure,
        key: check.key,
        units: check.units,
        measured: "—".into(),
        paper: "—".into(),
        residual_pct: None,
        verdict: Verdict::Flag,
        note: format!("{kind} missing from the campaign results. {}", check.note),
    }
}

fn eval_check(check: &Check, data: &Extracted, scale: u32) -> Finding {
    match &check.expect {
        Expect::Scalar { paper, tol_pct } => {
            let Some(&m) = data.scalars.get(check.key) else {
                return missing(check, "scalar");
            };
            let res = (m - paper) / paper * 100.0;
            finding(check, fmt(m), fmt(*paper), Some(res), res.abs() <= *tol_pct, scale,
                    &format!("tol ±{tol_pct}%."))
        }
        Expect::Band { lo, hi, paper } => {
            let Some(&m) = data.scalars.get(check.key) else {
                return missing(check, "scalar");
            };
            // No residual against a zero or unstated paper value (a
            // zero denominator would render as NaN%).
            let res = if paper.is_finite() && *paper != 0.0 {
                Some((m - paper) / paper * 100.0)
            } else {
                None
            };
            let band = if hi.is_finite() {
                format!("[{}, {}]", fmt(*lo), fmt(*hi))
            } else {
                format!("≥ {}", fmt(*lo))
            };
            let paper_s = if paper.is_finite() {
                format!("{} {band}", fmt(*paper))
            } else {
                band.clone()
            };
            finding(check, fmt(m), paper_s, res, (*lo..=*hi).contains(&m), scale, "")
        }
        Expect::Series { paper, tol_pct, log_x } => {
            let Some(measured) = data.series.get(check.key) else {
                return missing(check, "series");
            };
            // Alignment: interpolate the measured series onto the
            // paper's x grid (the two rarely sample the same points).
            let mut worst: Option<(f64, f64, f64, f64)> = None; // (x, m, p, res)
            let mut ratios = Vec::with_capacity(paper.len());
            for &(x, p) in *paper {
                let Some(m) = interp_series(measured, x, *log_x) else {
                    return missing(check, "series (empty)");
                };
                let res = (m - p) / p * 100.0;
                if worst.is_none_or(|(_, _, _, w)| res.abs() > w.abs()) {
                    worst = Some((x, m, p, res));
                }
                if p != 0.0 {
                    // Non-positive measured values poison the ratio;
                    // try_geometric_mean degrades them to an "n/a"
                    // summary instead of a panic.
                    ratios.push(m / p);
                }
            }
            let (wx, wm, wp, wres) = worst.expect("paper series are non-empty");
            let geo = try_geometric_mean(&ratios)
                .map(|g| format!("geomean Δ {:+.1}%.", (g - 1.0) * 100.0))
                .unwrap_or_else(|| "geomean Δ n/a (non-positive ratio).".into());
            finding(
                check,
                format!("{} @ x={}", fmt(wm), fmt(wx)),
                format!("{} @ x={}", fmt(wp), fmt(wx)),
                Some(wres),
                wres.abs() <= *tol_pct,
                scale,
                &format!("worst of {} paper points, tol ±{tol_pct}%/point. {geo}", paper.len()),
            )
        }
        Expect::MonotoneNondecreasing => {
            let Some(measured) = data.series.get(check.key) else {
                return missing(check, "series");
            };
            if measured.is_empty() {
                return missing(check, "series (empty)");
            }
            // A single-point series is trivially monotone; anything
            // longer must never step down by more than float dust.
            let ok = measured
                .windows(2)
                .all(|w| w[1].1 >= w[0].1 - 1e-9 * w[0].1.abs().max(1.0));
            let (first, last) = (measured[0], measured[measured.len() - 1]);
            finding(
                check,
                format!("{} @ x={} → {} @ x={}", fmt(first.1), fmt(first.0), fmt(last.1), fmt(last.0)),
                "nondecreasing".into(),
                None,
                ok,
                scale,
                &format!("{} points.", measured.len()),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v_map(entries: Vec<(&str, Value)>) -> Value {
        Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn check(expect: Expect, min_scale: u32) -> Check {
        Check {
            figure: "fig3",
            key: "k",
            units: "u",
            expect,
            min_scale,
            note: "n",
        }
    }

    fn with_scalar(x: f64) -> Extracted {
        let mut d = Extracted::default();
        d.scalars.insert("k".into(), x);
        d
    }

    fn with_series(pts: Vec<(f64, f64)>) -> Extracted {
        let mut d = Extracted::default();
        d.series.insert("k".into(), pts);
        d
    }

    #[test]
    fn scalar_check_passes_within_and_flags_outside_tolerance() {
        let c = check(Expect::Scalar { paper: 100.0, tol_pct: 5.0 }, 0);
        assert_eq!(eval_check(&c, &with_scalar(103.0), 20).verdict, Verdict::Pass);
        let f = eval_check(&c, &with_scalar(90.0), 20);
        assert_eq!(f.verdict, Verdict::Flag);
        assert!((f.residual_pct.unwrap() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn scale_gating_turns_flags_into_skips_but_keeps_residuals() {
        let c = check(Expect::Scalar { paper: 100.0, tol_pct: 5.0 }, 20);
        let f = eval_check(&c, &with_scalar(50.0), 10);
        assert_eq!(f.verdict, Verdict::Skip);
        assert!((f.residual_pct.unwrap() + 50.0).abs() < 1e-9);
        assert!(f.note.contains("scale ≥ 20"), "{}", f.note);
        // The same deviation at an enforced scale flags.
        assert_eq!(eval_check(&c, &with_scalar(50.0), 20).verdict, Verdict::Flag);
    }

    #[test]
    fn missing_data_is_a_flag_not_a_panic() {
        let c = check(Expect::Scalar { paper: 1.0, tol_pct: 1.0 }, 0);
        let f = eval_check(&c, &Extracted::default(), 20);
        assert_eq!(f.verdict, Verdict::Flag);
        assert!(f.note.contains("missing"));
    }

    #[test]
    fn series_check_interpolates_mismatched_x_axes() {
        // Measured samples at 10/100/1000; paper asks for 31.6 (log mid).
        let c = check(
            Expect::Series { paper: &[(31.6227766, 1.5)], tol_pct: 1.0, log_x: true },
            0,
        );
        let d = with_series(vec![(10.0, 1.0), (100.0, 2.0), (1000.0, 4.0)]);
        let f = eval_check(&c, &d, 20);
        assert_eq!(f.verdict, Verdict::Pass, "{}", f.note);
        assert!(f.residual_pct.unwrap().abs() < 0.1, "{:?}", f.residual_pct);
    }

    #[test]
    fn empty_and_single_point_series_are_handled() {
        let c = check(
            Expect::Series { paper: &[(1.0, 1.0)], tol_pct: 1.0, log_x: false },
            0,
        );
        // Empty series: flagged as missing data.
        let f = eval_check(&c, &with_series(vec![]), 20);
        assert_eq!(f.verdict, Verdict::Flag);
        // Single-point series: clamps to the one sample.
        let f = eval_check(&c, &with_series(vec![(5.0, 1.0)]), 20);
        assert_eq!(f.verdict, Verdict::Pass, "{}", f.note);

        let m = check(Expect::MonotoneNondecreasing, 0);
        assert_eq!(eval_check(&m, &with_series(vec![]), 20).verdict, Verdict::Flag);
        assert_eq!(eval_check(&m, &with_series(vec![(1.0, 2.0)]), 20).verdict, Verdict::Pass);
    }

    #[test]
    fn non_positive_values_degrade_the_geomean_delta_without_panicking() {
        let c = check(
            Expect::Series { paper: &[(1.0, 1.0), (2.0, 1.0)], tol_pct: 500.0, log_x: false },
            0,
        );
        let f = eval_check(&c, &with_series(vec![(1.0, -3.0), (2.0, 1.0)]), 20);
        assert!(f.note.contains("geomean Δ n/a"), "{}", f.note);
    }

    #[test]
    fn monotone_check_flags_a_decreasing_series() {
        let c = check(Expect::MonotoneNondecreasing, 0);
        let up = with_series(vec![(1.0, 1.0), (2.0, 1.0), (3.0, 2.0)]);
        assert_eq!(eval_check(&c, &up, 20).verdict, Verdict::Pass);
        let down = with_series(vec![(1.0, 1.0), (2.0, 0.5)]);
        assert_eq!(eval_check(&c, &down, 20).verdict, Verdict::Flag);
    }

    #[test]
    fn band_check_reports_residual_against_the_paper_value() {
        let c = check(Expect::Band { lo: 0.0, hi: 2.0, paper: 1.0 }, 0);
        let f = eval_check(&c, &with_scalar(1.5), 20);
        assert_eq!(f.verdict, Verdict::Pass);
        assert!((f.residual_pct.unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(eval_check(&c, &with_scalar(2.5), 20).verdict, Verdict::Flag);
    }

    #[test]
    fn eq6_extraction_needs_no_campaign_file() {
        let mut out = Extracted::default();
        extract_eq6(&mut out);
        assert!((out.scalars["Gen4 min S"] - 267.857).abs() < 0.01);
        assert!((out.scalars["Gen3 max L"] - 1.911).abs() < 0.01);
    }

    #[test]
    fn fig6_extractor_survives_non_positive_cells() {
        // A corrupt cell must drop the geomean, not panic the validator.
        let series = Value::Array(vec![
            v_map(vec![
                ("workload", Value::Str("BFS".into())),
                ("dataset", Value::Str("urand8".into())),
                ("xlfdd_normalized", Value::F64(-1.0)),
                ("bam_normalized", Value::F64(2.0)),
            ]),
        ]);
        let mut out = Extracted::default();
        extract_fig6(&series, &mut out);
        assert!(!out.scalars.contains_key("XLFDD geomean"));
        assert!(out.scalars.contains_key("BaM geomean"));
    }

    #[test]
    fn family_strips_the_scale_suffix() {
        assert_eq!(family("urand20"), "urand");
        assert_eq!(family("friendster10"), "friendster");
        assert_eq!(family("kron27"), "kron");
    }
}
