//! Machine-readable reference data for every paper series the campaign
//! reproduces — the numbers conf_sc_SanoBHKSNTKS23 actually reports,
//! transcribed with units, axes, tolerance bands, and the scale at
//! which each comparison becomes meaningful.
//!
//! ## Transcription policy
//!
//! Only numbers the paper states in text or tables are encoded as
//! absolute references (Eq. 4/6 values, Table 1 degrees, the Fig. 10
//! DRAM-channel cap, the Fig. 6 geometric means, Fig. 9's host-DRAM
//! latency range). Where the paper communicates a *shape* rather than a
//! tabulated value (Fig. 3 monotonicity, Fig. 11 parity-then-rise), the
//! reference is a band or monotonicity requirement derived from the
//! claim, with the claim quoted in the check's note.
//!
//! ## Scale gating
//!
//! The repo runs the campaign at `CXLG_SCALE` ≤ 27 while the paper used
//! scale 27, and several series track scale (RAF grows with graph size,
//! kron's isolated-vertex fraction grows, normalized runtimes approach
//! parity only once graphs dwarf caches). Each check carries a
//! `min_scale`: below it the residual is still computed and reported,
//! but the verdict is SKIP (scale-gated) instead of FLAG. Checks with
//! `min_scale: 0` hold at any scale — either the quantity is scale-free
//! (model closed forms, device microbenchmarks, urand's fixed degree) or
//! the check is a shape/trend property.

/// What a check compares, and how tight the band is.
pub enum Expect {
    /// Measured scalar within `tol_pct` percent of the paper's value.
    Scalar {
        /// The paper's reported value.
        paper: f64,
        /// Allowed |residual| in percent.
        tol_pct: f64,
    },
    /// Measured scalar within `[lo, hi]`; `paper` (may be NaN when the
    /// paper gives no single number) is reported alongside for context.
    Band {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
        /// The paper's indicative value, or NaN when none is stated.
        paper: f64,
    },
    /// Measured series interpolated onto the paper's x grid; every
    /// point's |residual| must stay within `tol_pct` percent.
    Series {
        /// The paper's `(x, y)` points.
        paper: &'static [(f64, f64)],
        /// Allowed per-point |residual| in percent.
        tol_pct: f64,
        /// Interpolate in `ln x` (log-spaced axes like alignments).
        log_x: bool,
    },
    /// Measured series must be monotone nondecreasing in x — the shape
    /// check for figures whose absolute level tracks scale or hardware.
    /// (Hardware-absolute axes are handled this way or by normalizing
    /// to a series' own baseline before a band check, never by
    /// comparing raw hardware values.)
    MonotoneNondecreasing,
}

/// One fidelity check: a measured quantity, its paper reference, and
/// the tolerance/scale regime where the comparison is enforceable.
pub struct Check {
    /// Figure/table this check belongs to (`fig3`, `table1`, `eq6`, …).
    pub figure: &'static str,
    /// Key into the figure's extracted scalars or series.
    pub key: &'static str,
    /// Measurement units (and the x axis for series checks).
    pub units: &'static str,
    /// What is expected, and how tightly.
    pub expect: Expect,
    /// Scale below which the verdict is SKIP rather than FLAG (0 = any).
    pub min_scale: u32,
    /// Paper section/claim the reference was transcribed from.
    pub note: &'static str,
}

/// The figures/tables `cxlg validate` covers, in report order. `eq6`
/// is recomputed from `cxlg-model` (the paper's closed forms) rather
/// than loaded from a campaign result file.
pub const FIGURES: &[&str] = &[
    "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11", "eq6",
];

/// Paper Fig. 4 / §3.2 example throughput profile
/// `T = min(100·d, 48·d, 24000)` sampled away from the d = 500 B kink
/// so linear interpolation of the measured log-spaced grid is exact.
pub const FIG4_T_PROFILE: &[(f64, f64)] = &[
    (64.0, 3_072.0),
    (128.0, 6_144.0),
    (256.0, 12_288.0),
    (1024.0, 24_000.0),
    (4096.0, 24_000.0),
];

/// Paper Fig. 11 normalized-runtime reference through the Gen3 latency
/// allowance (1.91 µs): the parity claim ("identical performance while
/// the CXL latency stays under ~2 µs"), transcribed as ≈1.0 below the
/// allowance. The paper tabulates no values past the allowance, so the
/// rise is checked separately as a trend.
pub const FIG11_PARITY_PROFILE: &[(f64, f64)] = &[
    (0.0, 1.0),
    (0.5, 1.0),
    (1.0, 1.02),
    (1.5, 1.08),
];

macro_rules! fig3_series_checks {
    ($($key:literal),+ $(,)?) => {
        &[$(
            Check {
                figure: "fig3",
                key: concat!($key, " RAF(a)"),
                units: "RAF vs alignment [B]",
                expect: Expect::MonotoneNondecreasing,
                min_scale: 0,
                note: "§3.1/Fig. 3: RAFs are increasing functions of the alignment size",
            },
            Check {
                figure: "fig3",
                key: concat!($key, " RAF@8B"),
                units: "RAF",
                expect: Expect::Band { lo: 0.9, hi: 1.1, paper: 1.0 },
                min_scale: 0,
                note: "Fig. 3: at the 8 B ID size there is (almost) no wasted fetch; \
                       SSSP dips slightly below 1 from cached revisits",
            },
            Check {
                figure: "fig3",
                key: concat!($key, " RAF@4kB"),
                units: "RAF",
                expect: Expect::Band { lo: 1.0, hi: 4.5, paper: 4.0 },
                min_scale: 0,
                note: "Fig. 3: up to ~4 at the 4 kB SSD-block alignment at scale 27; \
                       RAF grows toward that ceiling with scale",
            },
        )+]
    };
}

/// Every fidelity check, grouped by figure in [`FIGURES`] order.
pub static CHECKS: &[&[Check]] = &[
    // ---------------------------------------------------------- table1
    &[
        Check {
            figure: "table1",
            key: "urand avg degree",
            units: "edges/vertex (non-isolated)",
            expect: Expect::Scalar { paper: 32.0, tol_pct: 2.0 },
            min_scale: 0,
            note: "Table 1: urand has average degree 32.0 by construction at any scale",
        },
        Check {
            figure: "table1",
            key: "urand avg sublist",
            units: "B",
            expect: Expect::Scalar { paper: 256.0, tol_pct: 2.0 },
            min_scale: 0,
            note: "Table 1: 32.0 × 8 B IDs = 256.0 B sublists",
        },
        Check {
            figure: "table1",
            key: "friendster avg degree",
            units: "edges/vertex (non-isolated)",
            expect: Expect::Scalar { paper: 55.1, tol_pct: 5.0 },
            min_scale: 20,
            note: "Table 1: Friendster averages 55.1; the Chung–Lu stand-in converges \
                   to it from below as scale grows",
        },
        Check {
            figure: "table1",
            key: "kron avg degree",
            units: "edges/vertex (non-isolated)",
            expect: Expect::Scalar { paper: 67.0, tol_pct: 10.0 },
            min_scale: 27,
            note: "Table 1: kron averages 67.0 at scale 27; the isolated-vertex \
                   fraction (excluded from the average) grows with scale, so smaller \
                   scales sit well below — 48.6 measured at scale 20",
        },
    ],
    // ---------------------------------------------------------- table2
    &[Check {
        figure: "table2",
        key: "peak frontier / Gen4 Nmax",
        units: "ratio (Nmax = 768)",
        expect: Expect::Band { lo: 10.0, hi: f64::INFINITY, paper: f64::NAN },
        min_scale: 16,
        note: "Table 2/§3.5.1: most depths hold tens of thousands of vertices — \
               concurrency is never algorithm-limited; needs enough vertices for \
               the mid-BFS frontier to dwarf Nmax",
    }],
    // ------------------------------------------------------------ fig3
    fig3_series_checks!(
        "BFS/urand",
        "SSSP/urand",
        "BFS/kron",
        "SSSP/kron",
        "BFS/friendster",
        "SSSP/friendster",
    ),
    // ------------------------------------------------------------ fig4
    &[
        Check {
            figure: "fig4",
            key: "T(d)",
            units: "MB/s vs transfer size [B]",
            expect: Expect::Series { paper: FIG4_T_PROFILE, tol_pct: 1.0, log_x: false },
            min_scale: 0,
            note: "§3.2 example profile T = min(100d, 48d, 24000), scale-free",
        },
        Check {
            figure: "fig4",
            key: "D(d)",
            units: "MB vs transfer size [B]",
            expect: Expect::MonotoneNondecreasing,
            min_scale: 0,
            note: "Fig. 4: total data D = E·RAF(d) grows with d",
        },
        Check {
            figure: "fig4",
            key: "runtime-optimal d",
            units: "B",
            expect: Expect::Band { lo: 350.0, hi: 700.0, paper: 500.0 },
            min_scale: 0,
            note: "§3.3.2: best runtime at the smallest d that saturates W \
                   (s·d_opt = W ⇒ 500 B for the example profile)",
        },
    ],
    // ------------------------------------------------------------ fig5
    &[
        Check {
            figure: "fig5",
            key: "XLFDD/EMOGI (a)",
            units: "normalized runtime vs alignment [B]",
            expect: Expect::MonotoneNondecreasing,
            min_scale: 0,
            note: "Fig. 5: smaller alignments run faster (runtime tracks RAF)",
        },
        Check {
            figure: "fig5",
            key: "XLFDD/EMOGI @16B",
            units: "normalized runtime",
            expect: Expect::Band { lo: 0.7, hi: 1.3, paper: 1.0 },
            min_scale: 20,
            note: "§4.1.2: at 16–32 B alignment XLFDD approaches host-DRAM speed; \
                   parity needs graphs that dwarf the software cache",
        },
        Check {
            figure: "fig5",
            key: "XLFDD 4kB/16B ratio",
            units: "ratio",
            expect: Expect::Band { lo: 1.8, hi: f64::INFINITY, paper: 3.0 },
            min_scale: 20,
            note: "Fig. 5: the 4 kB alignment pays the RAF tax (~3× at scale 27)",
        },
        Check {
            figure: "fig5",
            key: "BaM(4kB) / XLFDD(4kB)",
            units: "ratio",
            expect: Expect::Band { lo: 0.75, hi: 1.35, paper: 1.0 },
            min_scale: 20,
            note: "Fig. 5: BaM's 4 kB lines and XLFDD at a 4 kB alignment pay the \
                   same granularity penalty",
        },
    ],
    // ------------------------------------------------------------ fig6
    &[
        Check {
            figure: "fig6",
            key: "XLFDD geomean",
            units: "normalized runtime (geomean of 6 pairs)",
            expect: Expect::Band { lo: 0.7, hi: 1.5, paper: 1.13 },
            min_scale: 20,
            note: "Fig. 6: XLFDD runs 1.13× EMOGI on average at scale 27 — \
                   near-parity; the gap tracks sublist sizes, which grow with scale",
        },
        Check {
            figure: "fig6",
            key: "BaM geomean",
            units: "normalized runtime (geomean of 6 pairs)",
            expect: Expect::Band { lo: 1.3, hi: 3.3, paper: 2.76 },
            min_scale: 20,
            note: "Fig. 6: BaM runs 2.76× EMOGI at scale 27; the 4 kB RAF tax \
                   grows with scale, so smaller scales sit below",
        },
        Check {
            figure: "fig6",
            key: "pairs with BaM slower than XLFDD",
            units: "count of 6",
            expect: Expect::Band { lo: 6.0, hi: 6.0, paper: 6.0 },
            min_scale: 0,
            note: "Fig. 6: BaM trails XLFDD on every (workload × dataset) pair — \
                   the paper's granularity ordering, scale-free",
        },
    ],
    // ------------------------------------------------------------ fig9
    &[
        Check {
            figure: "fig9",
            key: "DRAM near-socket latency",
            units: "µs",
            expect: Expect::Scalar { paper: 1.1, tol_pct: 15.0 },
            min_scale: 0,
            note: "Fig. 9/Appendix B: GPU-observed pointer-chase latency of host \
                   DRAM is ~1.1–1.2 µs",
        },
        Check {
            figure: "fig9",
            key: "DRAM far-socket latency",
            units: "µs",
            expect: Expect::Scalar { paper: 1.2, tol_pct: 15.0 },
            min_scale: 0,
            note: "Fig. 9: the far socket adds an interconnect hop",
        },
        Check {
            figure: "fig9",
            key: "CXL(+0) over DRAM",
            units: "µs",
            expect: Expect::Scalar { paper: 0.5, tol_pct: 40.0 },
            min_scale: 0,
            note: "Fig. 9: the CXL.mem path adds ~0.5 µs over host DRAM",
        },
        Check {
            figure: "fig9",
            key: "CXL step dev from 1 µs",
            units: "µs (mean |step − 1|, +1→+3 µs)",
            expect: Expect::Band { lo: 0.0, hi: 0.05, paper: 0.0 },
            min_scale: 0,
            note: "Fig. 9: each +1 µs of injected bridge latency shifts the \
                   observed bar by exactly +1 µs once past the bridge floor",
        },
        Check {
            figure: "fig9",
            key: "far-socket penalty",
            units: "µs",
            expect: Expect::Band { lo: 0.0, hi: 0.3, paper: 0.1 },
            min_scale: 0,
            note: "Fig. 9: far-socket devices are marginally slower",
        },
    ],
    // ----------------------------------------------------------- fig10
    &[
        Check {
            figure: "fig10",
            key: "throughput @+0µs",
            units: "MB/s",
            expect: Expect::Scalar { paper: 5_700.0, tol_pct: 5.0 },
            min_scale: 0,
            note: "§4.2.2/Fig. 10: the prototype caps at ~5,700 MB/s — the single \
                   DRAM channel, not the CXL link",
        },
        Check {
            figure: "fig10",
            key: "T(+1µs)/T(+0µs)",
            units: "ratio",
            expect: Expect::Band { lo: 0.95, hi: 1.001, paper: 1.0 },
            min_scale: 0,
            note: "Fig. 10: bandwidth is flat through +1 µs — latency is absorbed \
                   while the 128 device tags last",
        },
        Check {
            figure: "fig10",
            key: "T(+10µs)/T(+0µs)",
            units: "ratio",
            expect: Expect::Band { lo: 0.05, hi: 0.3, paper: 0.14 },
            min_scale: 0,
            note: "Fig. 10: once tags bind, throughput decays as Little's law \
                   T = Nmax·d/L predicts",
        },
        Check {
            figure: "fig10",
            key: "outstanding @+10µs",
            units: "requests",
            expect: Expect::Scalar { paper: 128.0, tol_pct: 5.0 },
            min_scale: 0,
            note: "Fig. 10: outstanding reads saturate at the 128 device tags",
        },
    ],
    // ----------------------------------------------------------- fig11
    &[
        Check {
            figure: "fig11",
            key: "max normalized @+0µs",
            units: "normalized runtime (worst of 6 series)",
            expect: Expect::Band { lo: 0.9, hi: 1.1, paper: 1.0 },
            min_scale: 20,
            note: "Fig. 11: CXL at no added latency matches host DRAM (Gen3 ×16, \
                   5 expanders)",
        },
        Check {
            figure: "fig11",
            key: "max normalized @+0.5µs",
            units: "normalized runtime (worst of 6 series)",
            expect: Expect::Band { lo: 0.9, hi: 1.15, paper: 1.0 },
            min_scale: 20,
            note: "Fig. 11 (Observation 2): identical performance while CXL \
                   latency stays under the allowance",
        },
        Check {
            figure: "fig11",
            key: "min rise (+3µs / +0.5µs)",
            units: "ratio (best of 6 series)",
            expect: Expect::Band { lo: 1.2, hi: f64::INFINITY, paper: f64::NAN },
            min_scale: 0,
            note: "Fig. 11: runtime rises once added latency passes the Gen3 \
                   allowance of 1.91 µs (Eq. 6)",
        },
        Check {
            figure: "fig11",
            key: "BFS/urand normalized(L)",
            units: "normalized runtime vs added latency [µs]",
            expect: Expect::Series { paper: FIG11_PARITY_PROFILE, tol_pct: 10.0, log_x: false },
            min_scale: 27,
            note: "Fig. 11 parity profile below the allowance, transcribed from \
                   the claim (no tabulated values in the paper); normalized \
                   runtimes approach it from above as scale grows",
        },
        Check {
            figure: "fig11",
            key: "BFS/urand monotone",
            units: "normalized runtime vs added latency [µs]",
            expect: Expect::MonotoneNondecreasing,
            min_scale: 0,
            note: "Fig. 11: added latency never speeds a traversal up",
        },
        Check {
            figure: "fig11",
            key: "SSSP/friendster monotone",
            units: "normalized runtime vs added latency [µs]",
            expect: Expect::MonotoneNondecreasing,
            min_scale: 0,
            note: "Fig. 11: the same holds for the heaviest workload/dataset pair",
        },
    ],
    // ------------------------------------------------------------- eq6
    &[
        Check {
            figure: "eq6",
            key: "Gen4 min S",
            units: "MIOPS",
            expect: Expect::Scalar { paper: 268.0, tol_pct: 1.0 },
            min_scale: 0,
            note: "§3.4 (Eq. 6): Gen4 ×16 with d = 89.6 B requires S ≥ 268 MIOPS",
        },
        Check {
            figure: "eq6",
            key: "Gen4 max L",
            units: "µs",
            expect: Expect::Scalar { paper: 2.87, tol_pct: 1.0 },
            min_scale: 0,
            note: "§3.4 (Eq. 6): Gen4 tolerates L ≤ 2.87 µs — microseconds, not \
                   nanoseconds",
        },
        Check {
            figure: "eq6",
            key: "Gen3 min S",
            units: "MIOPS",
            expect: Expect::Scalar { paper: 134.0, tol_pct: 1.0 },
            min_scale: 0,
            note: "§4.2.2: Gen3 ×16 requires S ≥ 12,000/89.6 = 134 MIOPS",
        },
        Check {
            figure: "eq6",
            key: "Gen3 max L",
            units: "µs",
            expect: Expect::Scalar { paper: 1.91, tol_pct: 1.0 },
            min_scale: 0,
            note: "§4.2.2: Gen3 tolerates L ≤ 256 × 89.6 / 12,000 = 1.91 µs",
        },
        Check {
            figure: "eq6",
            key: "XLFDD d=256B min S",
            units: "MIOPS",
            expect: Expect::Scalar { paper: 93.75, tol_pct: 1.0 },
            min_scale: 0,
            note: "§4.1.1: sublist-sized transfers (d = 256 B) relax the IOPS \
                   requirement to 93.75 MIOPS (16 drives provide 176)",
        },
    ],
];

/// All checks for one figure, or an empty slice for an unknown name.
pub fn checks_for(figure: &str) -> &'static [Check] {
    FIGURES
        .iter()
        .position(|f| *f == figure)
        .map(|i| CHECKS[i])
        .unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_has_checks_and_vice_versa() {
        assert_eq!(FIGURES.len(), CHECKS.len());
        for (i, figure) in FIGURES.iter().enumerate() {
            assert!(!CHECKS[i].is_empty(), "{figure} has no checks");
            for c in CHECKS[i] {
                assert_eq!(c.figure, *figure, "misfiled check {}", c.key);
            }
        }
    }

    #[test]
    fn check_keys_are_unique_within_a_figure() {
        for group in CHECKS {
            let mut keys: Vec<&str> = group.iter().map(|c| c.key).collect();
            keys.sort_unstable();
            let n = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), n, "duplicate key in {}", group[0].figure);
        }
    }

    #[test]
    fn paper_series_are_sorted_by_x() {
        for group in CHECKS {
            for c in *group {
                if let Expect::Series { paper, .. } = c.expect {
                    for w in paper.windows(2) {
                        assert!(w[0].0 < w[1].0, "{}/{} unsorted", c.figure, c.key);
                    }
                }
            }
        }
    }

    #[test]
    fn eq6_references_match_the_model_crate_tests() {
        // The same numbers cxlg-model asserts in its unit tests.
        let gen4 = cxlg_model::requirements::emogi_requirements(cxlg_link::pcie::PcieGen::Gen4);
        assert!((gen4.min_miops - 268.0).abs() / 268.0 < 0.01);
        assert!((gen4.max_latency_us - 2.87).abs() / 2.87 < 0.01);
    }
}
