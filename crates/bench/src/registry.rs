//! Static registry of every experiment the harness knows.
//!
//! The table is the single source of truth for `cxlg list`, `cxlg run
//! --all`, the legacy shim binaries, and the docs' per-experiment index.
//! Order matters: `run --all` executes in table order, which mirrors the
//! old `all_figures` sequence (tables, figures, eqcheck, extensions)
//! with the new workload studies appended.

use crate::experiment::{Experiment, FnExperiment};
use crate::experiments as exp;

macro_rules! entry {
    ($module:ident, $name:literal) => {
        FnExperiment {
            name: $name,
            description: exp::$module::DESC,
            specs: exp::$module::specs,
            run: exp::$module::run,
        }
    };
}

/// Every registered experiment, in `run --all` order.
pub static ALL: &[FnExperiment] = &[
    entry!(table1, "table1"),
    entry!(table2, "table2"),
    entry!(fig3, "fig3"),
    entry!(fig4, "fig4"),
    entry!(fig5, "fig5"),
    entry!(fig6, "fig6"),
    entry!(fig9, "fig9"),
    entry!(fig10, "fig10"),
    entry!(fig11, "fig11"),
    entry!(eqcheck, "eqcheck"),
    // Extension experiments (DESIGN.md §8).
    entry!(uvm_compare, "uvm_compare"),
    entry!(reorder_study, "reorder_study"),
    entry!(write_study, "write_study"),
    entry!(ablation, "ablation"),
    // New workloads registered through the Experiment API.
    entry!(pagerank_study, "pagerank_study"),
    entry!(cc_study, "cc_study"),
    entry!(device_scaling, "device_scaling"),
];

/// All experiments as trait objects, in `run --all` order.
pub fn all() -> impl Iterator<Item = &'static dyn Experiment> {
    ALL.iter().map(|e| e as &dyn Experiment)
}

/// Look an experiment up by its registered name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    ALL.iter()
        .find(|e| e.name == name)
        .map(|e| e as &dyn Experiment)
}

/// Registered names, in `run --all` order.
pub fn names() -> Vec<&'static str> {
    ALL.iter().map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_campaign() {
        // 14 ported binaries (all_figures is the driver, not an
        // experiment) + the three new workload studies.
        assert!(ALL.len() >= 17, "registry has {} experiments", ALL.len());
        for needed in [
            "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "eqcheck", "uvm_compare", "reorder_study", "write_study", "ablation",
            "pagerank_study", "cc_study", "device_scaling",
        ] {
            assert!(find(needed).is_some(), "missing {needed}");
        }
    }

    #[test]
    fn names_are_unique_and_descriptions_nonempty() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate experiment name");
        for e in all() {
            assert!(!e.description().is_empty(), "{} lacks a description", e.name());
        }
    }

    #[test]
    fn find_rejects_unknown_names() {
        assert!(find("fig7").is_none());
        assert!(find("").is_none());
    }

    #[test]
    fn run_all_order_starts_with_the_tables() {
        assert_eq!(&names()[..3], &["table1", "table2", "fig3"]);
    }
}
