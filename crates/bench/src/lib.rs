//! # cxlg-bench — the experiment API behind the paper campaign
//!
//! The paper's evaluation (Figs. 3–6, 9–11, Tables 1–2 plus extension
//! studies) is modeled as one registry of [`Experiment`]s driven by the
//! `cxlg` binary:
//!
//! * [`experiment`] — the [`Experiment`] trait contract and run reports;
//! * [`registry`] — the static table of every experiment (`cxlg list`);
//! * [`ctx`] — [`ExperimentCtx`]: scale, seed, threads, results dir;
//! * [`cache`] — the [`GraphCache`] that builds each dataset exactly
//!   once per campaign;
//! * [`experiments`] — the per-figure implementations;
//! * [`cli`] — the `cxlg` driver (`list` / `run` / `--json-manifest`)
//!   and the legacy shim entry points;
//! * [`fidelity`] — `cxlg validate`: the paper's reference series as
//!   data, a residual engine over captured campaigns, and the generated
//!   FIDELITY.md report.
//!
//! The historical per-figure binaries under `src/bin/` still exist as
//! shims over the registry, with stdout and result JSON unchanged.
//! Results are dumped under `target/paper-results/` so EXPERIMENTS.md
//! can be refreshed mechanically.
//!
//! Simulation scale is controlled by the `CXLG_SCALE` environment
//! variable (log2 of the vertex count, default 16). The paper uses
//! scale 27 with ~30 GB edge lists; any scale preserves the *shapes*
//! under study because the model's behaviour is driven by degree
//! structure and byte-level geometry, not absolute size.
//!
//! [`Experiment`]: crate::experiment::Experiment
//! [`ExperimentCtx`]: crate::ctx::ExperimentCtx
//! [`GraphCache`]: crate::cache::GraphCache

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cli;
pub mod ctx;
pub mod experiment;
pub mod experiments;
pub mod fidelity;
pub mod registry;
pub mod serve_cli;

use cxlg_core::metrics::RunReport;
use std::path::PathBuf;

/// log2 of the vertex count used by the figure binaries.
pub fn bench_scale() -> u32 {
    std::env::var("CXLG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// Seed shared by the figure binaries (override with `CXLG_SEED`).
pub fn bench_seed() -> u64 {
    std::env::var("CXLG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED)
}

/// A BFS/SSSP source that reaches a large component: highest-degree
/// vertex (robust for kron/social graphs with isolated vertices).
/// Accepts any graph storage backend.
pub fn good_source<G: cxlg_graph::CsrView + ?Sized>(g: &G) -> cxlg_graph::VertexId {
    g.max_degree_vertex().unwrap_or(0)
}

/// Graph storage backend for campaign builds, from `CXLG_GRAPH_STORAGE`
/// (`mem` default, `spill` for the file-backed out-of-core backend).
/// The CLI's `--graph-storage` flag overrides this by setting the
/// variable before the context is constructed. Unknown values fall back
/// to `mem` — storage is an execution strategy, and results are
/// backend-invariant by the ci.sh byte-diff gates.
pub fn graph_storage() -> cxlg_graph::StorageMode {
    // cxlg-lint: allow(D6) -- storage mode is read once into the campaign's GraphCache and recorded in the manifest; results are storage-invariant by the ci.sh byte-diff gate
    std::env::var("CXLG_GRAPH_STORAGE")
        .ok()
        .and_then(|s| cxlg_graph::StorageMode::parse(&s))
        .unwrap_or_default()
}

/// Output directory for machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CXLG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/paper-results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// One-line summary of a run for tables.
pub fn run_summary(r: &RunReport) -> String {
    format!(
        "t={:>10.3} ms  D={:>8.1} MB  RAF={:>5.2}  d̄={:>6.1} B  T={:>8.0} MB/s  reqs={}",
        r.metrics.runtime.as_secs_f64() * 1e3,
        r.metrics.fetched_bytes as f64 / 1e6,
        r.metrics.raf(),
        r.metrics.mean_transfer_bytes(),
        r.metrics.throughput_mb_per_sec(),
        r.metrics.requests,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_graph::spec::GraphSpec;

    #[test]
    fn scale_env_parsing_defaults() {
        // No env manipulation (tests run in parallel); just check the
        // default path yields a sane value.
        let s = bench_scale();
        assert!((8..=30).contains(&s));
    }

    #[test]
    fn good_source_prefers_hubs() {
        let g = GraphSpec::kron(8).seed(1).build();
        let s = good_source(&g);
        assert!(g.degree(s) > 0);
        let max = (0..g.num_vertices() as u32).map(|v| g.degree(v)).max().unwrap();
        assert_eq!(g.degree(s), max);
    }
}
