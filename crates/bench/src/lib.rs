//! # cxlg-bench — harness shared by the per-figure binaries
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index) and prints the same rows
//! or series the paper reports, normalized the same way. Results are also
//! dumped as JSON under `target/paper-results/` so EXPERIMENTS.md can be
//! refreshed mechanically.
//!
//! Simulation scale is controlled by the `CXLG_SCALE` environment
//! variable (log2 of the vertex count, default 16). The paper uses
//! scale 27 with ~30 GB edge lists; any scale preserves the *shapes*
//! under study because the model's behaviour is driven by degree
//! structure and byte-level geometry, not absolute size.

use cxlg_core::metrics::RunReport;
use cxlg_graph::spec::GraphSpec;
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// log2 of the vertex count used by the figure binaries.
pub fn bench_scale() -> u32 {
    std::env::var("CXLG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// Seed shared by the figure binaries (override with `CXLG_SEED`).
pub fn bench_seed() -> u64 {
    std::env::var("CXLG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED)
}

/// The three paper datasets at the bench scale.
pub fn paper_datasets() -> [GraphSpec; 3] {
    let scale = bench_scale();
    let seed = bench_seed();
    [
        GraphSpec::urand(scale).seed(seed),
        GraphSpec::kron(scale).seed(seed),
        GraphSpec::friendster_like(scale).seed(seed),
    ]
}

/// A BFS/SSSP source that reaches a large component: highest-degree
/// vertex (robust for kron/social graphs with isolated vertices).
pub fn good_source(g: &cxlg_graph::Csr) -> cxlg_graph::VertexId {
    g.max_degree_vertex().unwrap_or(0)
}

/// Output directory for machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CXLG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/paper-results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Dump a serializable result as JSON next to the printed table.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create result file");
    let s = serde_json::to_string_pretty(value).expect("serialize result");
    f.write_all(s.as_bytes()).expect("write result file");
    eprintln!("[saved {}]", path.display());
}

/// Print a standard header for a figure binary.
pub fn banner(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment} — {description}");
    println!(
        "scale 2^{} vertices, seed {:#x} (paper: scale 2^27)",
        bench_scale(),
        bench_seed()
    );
    println!("==============================================================");
}

/// One-line summary of a run for tables.
pub fn run_summary(r: &RunReport) -> String {
    format!(
        "t={:>10.3} ms  D={:>8.1} MB  RAF={:>5.2}  d̄={:>6.1} B  T={:>8.0} MB/s  reqs={}",
        r.metrics.runtime.as_secs_f64() * 1e3,
        r.metrics.fetched_bytes as f64 / 1e6,
        r.metrics.raf(),
        r.metrics.mean_transfer_bytes(),
        r.metrics.throughput_mb_per_sec(),
        r.metrics.requests,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing_defaults() {
        // No env manipulation (tests run in parallel); just check the
        // default path yields a sane value.
        let s = bench_scale();
        assert!((8..=30).contains(&s));
    }

    #[test]
    fn datasets_cover_the_paper_trio() {
        let ds = paper_datasets();
        assert!(ds[0].name().starts_with("urand"));
        assert!(ds[1].name().starts_with("kron"));
        assert!(ds[2].name().starts_with("friendster"));
    }

    #[test]
    fn good_source_prefers_hubs() {
        let g = GraphSpec::kron(8).seed(1).build();
        let s = good_source(&g);
        assert!(g.degree(s) > 0);
        let max = (0..g.num_vertices() as u32).map(|v| g.degree(v)).max().unwrap();
        assert_eq!(g.degree(s), max);
    }
}
