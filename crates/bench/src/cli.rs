//! The `cxlg` campaign driver and the legacy shim entry points.
//!
//! One binary fronts the whole evaluation: `cxlg list` enumerates the
//! registry, `cxlg run <names...>` / `cxlg run --all` executes
//! experiments in-process against a single shared [`ExperimentCtx`] (so
//! the graph cache builds each dataset exactly once per invocation), and
//! `--json-manifest` records the run configuration, per-experiment
//! wall-clock, every result path, and the cache's per-spec build counts.
//!
//! The legacy per-figure binaries (`fig3`, `table1`, …) are shims over
//! [`shim_main`]; `all_figures` is a shim over [`run_all`]. `cxlg
//! validate` (the paper-fidelity gate) lives in [`crate::fidelity`].

use crate::ctx::ExperimentCtx;
use crate::experiment::{Experiment, ExperimentReport};
use crate::registry;
use cxlg_core::runner::timed;
use serde::Value;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
cxlg — one driver for the paper's experiment campaign

USAGE:
    cxlg list                                   enumerate registered experiments
    cxlg run [--json-manifest[=PATH]] <names..> run selected experiments
    cxlg run --all [--json-manifest[=PATH]]     run the full campaign
    cxlg run --cached [--cas-root=DIR] [--cas-max-bytes=N]
            [--max-attempts=N] [--fault-plan=SPEC] [--fault-seed=N]
            <names..|--all>                     run through the campaign
                                                service scheduler + content-
                                                addressed result store:
                                                repeat runs with a warm store
                                                are byte-identical cache hits;
                                                a fault plan turns the run
                                                into a deterministic chaos
                                                campaign that must self-heal
    cxlg serve --socket=PATH [--workers=N] [--cas-root=DIR]
              [--max-attempts=N] [--job-timeout-ms=N]
              [--mem-budget-bytes=N] [--cas-max-bytes=N]
                                                long-running campaign service
                                                speaking newline-delimited
                                                JSON (submit/status/wait/
                                                cancel/stats/shutdown) over a
                                                Unix socket
    cxlg serve --stats --socket=PATH            print a running service's
                                                stats snapshot
    cxlg submit --socket=PATH <experiment> [--scale=N] [--seed=N]
               [--threads=N] [--priority=high|normal|low] [--wait]
               [--timeout-ms=N]                 submit one job; or manage by
                                                key: --status=KEY
                                                --wait-key=KEY [--timeout-ms=N]
                                                --cancel=KEY --shutdown
    cxlg cas gc --cas-root=DIR [--max-bytes=N] [--max-entries=N]
                                                reap stale staging dirs,
                                                quarantine corrupt entries,
                                                and evict oldest publications
                                                until the bounds fit
    cxlg graph-mem <urand|kron|social> <scale> [--storage=mem|spill]
                                                build one dataset, report
                                                wall-clock / peak RSS /
                                                resident and on-disk
                                                bytes-per-arc / fingerprint
    cxlg validate [--campaign-dir=DIR] [--write-report[=PATH]]
                                                check a captured campaign
                                                against the paper's series
                                                (exit 1 on any FLAG)
    cxlg lint [--root=DIR] [--json] [--deny]    determinism & unsafety
                                                static analysis over every
                                                workspace .rs file (rules
                                                D1-D6; --deny exits 1 on
                                                any un-pragma'd finding)

OPTIONS:
    --json-manifest[=PATH]   write a run manifest (scale/seed/threads,
                             per-experiment wall-clock, peak RSS, result
                             paths, per-spec graph build and eviction
                             counts); default PATH is
                             <results_dir>/manifest.json
    --max-bytes-per-arc=N    (graph-mem) exit nonzero when peak RSS
                             exceeds N bytes per directed arc — the CI
                             build-memory budget
    --graph-storage=MODE     (run) graph storage backend: `mem` keeps
                             every CSR fully resident (default), `spill`
                             demand-pages targets from a file under
                             <results_dir>/graph-spill; overrides
                             CXLG_GRAPH_STORAGE. Results are
                             backend-invariant
    --storage=MODE           (graph-mem) build the probe dataset into
                             the given backend (`mem` | `spill`)
    --cached                 (run) route the campaign through the
                             service scheduler + content-addressed
                             store; repeat runs are cache hits
    --cas-root=DIR           (run --cached, serve, cas gc) content-
                             addressed store root; default
                             <results_dir>/cas
    --cas-max-bytes=N        (run --cached, serve) GC the store down to
                             N bytes after every publication
    --max-attempts=N         (run --cached, serve) execution attempts
                             per job before it is Failed; default 1
    --fault-plan=SPEC        (run --cached) deterministic fault schedule,
                             e.g. panic@2,error@5,torn@3,corrupt@4,
                             delay@6:25 — kind@nth-occurrence, delays
                             carry :ms
    --fault-seed=N           (run --cached) injector seed for the plan's
                             corruption byte choices; default 0
    --job-timeout-ms=N       (serve) watchdog deadline: executions past
                             it are marked timed_out and the key re-arms
    --mem-budget-bytes=N     (serve) admission gate: estimated bytes of
                             concurrently running jobs stay at or below N
    --timeout-ms=N           (submit) bound a --wait / --wait-key block;
                             an expired wait answers wait_timed_out and
                             exits nonzero
    --socket=PATH            (serve, submit) Unix socket path
    --workers=N              (serve) worker-pool size; default 2
    --campaign-dir=DIR       (validate) campaign to check; default is
                             the results dir
    --root=DIR               (lint) workspace root to scan; default is
                             the current directory
    --write-report[=PATH]    (validate) render FIDELITY.md — measured vs
                             paper per figure with residuals and
                             PASS/FLAG/SKIP verdicts; default PATH is
                             <campaign-dir>/FIDELITY.md

ENVIRONMENT:
    CXLG_SCALE        log2 vertex count (default 16)
    CXLG_SEED         generator seed (default 0x5EED)
    CXLG_RESULTS_DIR  result directory (default target/paper-results)
    CXLG_GRAPH_STORAGE graph storage backend: mem (default) | spill
    RAYON_NUM_THREADS worker threads for parallel sweeps
";

/// Parsed `cxlg run` arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct RunArgs {
    /// Run every registered experiment in registry order.
    pub all: bool,
    /// Explicitly selected experiment names (empty with `all`).
    pub names: Vec<String>,
    /// `Some(None)` = manifest at the default path; `Some(Some(p))` = at `p`.
    pub manifest: Option<Option<String>>,
    /// Route the run through the campaign service scheduler + CAS.
    pub cached: bool,
    /// CAS root for `--cached` (default `<results_dir>/cas`).
    pub cas_root: Option<String>,
    /// Fault-plan spec for a `--cached` chaos run (e.g.
    /// `panic@2,torn@1,corrupt@3`).
    pub fault_plan: Option<String>,
    /// Injector seed for the plan's deterministic corruption choices.
    pub fault_seed: u64,
    /// Execution attempts per job before `Failed` (0 = scheduler
    /// default of one attempt, i.e. no retries).
    pub max_attempts: u64,
    /// CAS byte budget: GC after every publication (`--cached`).
    pub cas_max_bytes: Option<u64>,
    /// Graph storage backend override (`--graph-storage=`); `None`
    /// falls back to `CXLG_GRAPH_STORAGE` / mem.
    pub graph_storage: Option<cxlg_graph::StorageMode>,
}

/// Parse the arguments following `cxlg run`.
pub fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        all: false,
        names: Vec::new(),
        manifest: None,
        cached: false,
        cas_root: None,
        fault_plan: None,
        fault_seed: 0,
        max_attempts: 0,
        cas_max_bytes: None,
        graph_storage: None,
    };
    for a in args {
        if a == "--all" {
            out.all = true;
        } else if a == "--cached" {
            out.cached = true;
        } else if let Some(dir) = a.strip_prefix("--cas-root=") {
            if dir.is_empty() {
                return Err("--cas-root= requires a directory".to_string());
            }
            out.cas_root = Some(dir.to_string());
        } else if let Some(spec) = a.strip_prefix("--fault-plan=") {
            // Parse eagerly so a typo is a usage error, not a failure
            // minutes into the campaign.
            cxlg_serve::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
            out.fault_plan = Some(spec.to_string());
        } else if let Some(n) = a.strip_prefix("--fault-seed=") {
            out.fault_seed = n
                .parse::<u64>()
                .map_err(|_| format!("--fault-seed: bad number `{n}`"))?;
        } else if let Some(n) = a.strip_prefix("--max-attempts=") {
            out.max_attempts = n
                .parse::<u64>()
                .ok()
                .filter(|m| *m >= 1)
                .ok_or_else(|| format!("--max-attempts: bad count `{n}` (need >= 1)"))?;
        } else if let Some(n) = a.strip_prefix("--cas-max-bytes=") {
            out.cas_max_bytes = Some(
                n.parse::<u64>()
                    .ok()
                    .filter(|b| *b >= 1)
                    .ok_or_else(|| format!("--cas-max-bytes: bad size `{n}` (need >= 1)"))?,
            );
        } else if let Some(mode) = a.strip_prefix("--graph-storage=") {
            out.graph_storage = Some(
                cxlg_graph::StorageMode::parse(mode)
                    .ok_or_else(|| format!("--graph-storage: unknown mode `{mode}` (mem | spill)"))?,
            );
        } else if a == "--json-manifest" {
            out.manifest = Some(None);
        } else if let Some(path) = a.strip_prefix("--json-manifest=") {
            if path.is_empty() {
                return Err("--json-manifest= requires a path".to_string());
            }
            out.manifest = Some(Some(path.to_string()));
        } else if a.starts_with('-') {
            return Err(format!("unknown option `{a}`"));
        } else {
            out.names.push(a.clone());
        }
    }
    if out.all && !out.names.is_empty() {
        return Err("--all cannot be combined with explicit names".to_string());
    }
    if !out.all && out.names.is_empty() {
        return Err("nothing to run: pass experiment names or --all".to_string());
    }
    if !out.cached {
        if out.cas_root.is_some() {
            return Err("--cas-root only applies with --cached".to_string());
        }
        if out.fault_plan.is_some() || out.fault_seed != 0 {
            return Err("--fault-plan/--fault-seed only apply with --cached".to_string());
        }
        if out.max_attempts != 0 {
            return Err("--max-attempts only applies with --cached".to_string());
        }
        if out.cas_max_bytes.is_some() {
            return Err("--cas-max-bytes only applies with --cached".to_string());
        }
    }
    Ok(out)
}

/// Resolve names against the registry, failing on the first unknown one.
pub fn resolve(names: &[String]) -> Result<Vec<&'static dyn Experiment>, String> {
    names
        .iter()
        .map(|n| {
            registry::find(n).ok_or_else(|| {
                format!(
                    "unknown experiment `{n}` (known: {})",
                    registry::names().join(", ")
                )
            })
        })
        .collect()
}

/// What a campaign run produced: the per-experiment reports plus the
/// names of any experiments that panicked.
pub struct CampaignOutcome {
    /// One report per executed experiment, in run order. Failed
    /// experiments report whatever files they dumped before panicking.
    pub reports: Vec<ExperimentReport>,
    /// Names of experiments whose run panicked.
    pub failed: Vec<String>,
}

/// Run `exps` in order against one shared context, optionally writing a
/// manifest. A panicking experiment is caught and recorded — the rest
/// of the campaign (and the manifest) still completes, matching the
/// per-child isolation the old `all_figures` spawner provided. This is
/// the library core of `cxlg run`, used directly by integration tests.
pub fn run_experiments(
    ctx: &ExperimentCtx,
    exps: &[&dyn Experiment],
    manifest_path: Option<&Path>,
) -> CampaignOutcome {
    // Eviction plan: count, across this run list, how many experiments
    // declared each spec, so a graph can leave the cache right after
    // its last consumer (peak RSS is the campaign's binding
    // constraint). Spec-ordered, so plan output order is structural
    // rather than hash-order luck (lint rule D1).
    let mut consumers: BTreeMap<cxlg_graph::GraphSpec, usize> = BTreeMap::new();
    for exp in exps {
        for spec in exp.specs(ctx) {
            *consumers.entry(spec).or_insert(0) += 1;
        }
    }
    ctx.plan_graph_consumers(consumers);
    let mut reports = Vec::with_capacity(exps.len());
    let mut walls_ms = Vec::with_capacity(exps.len());
    // Per-report flags, not a name set: `run fig3 fig3` may succeed once
    // and fail once, and the manifest must tell the two entries apart.
    let mut failed_flags = Vec::with_capacity(exps.len());
    let mut failed = Vec::new();
    for exp in exps {
        println!("\n################ {} ################\n", exp.name());
        let (outcome, wall) = timed(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exp.run(ctx)))
        });
        walls_ms.push(wall.as_secs_f64() * 1e3);
        match outcome {
            Ok(report) => {
                reports.push(report);
                failed_flags.push(false);
            }
            Err(_) => {
                // The panic message has already gone to stderr via the
                // default hook; salvage whatever was dumped pre-panic.
                eprintln!("[{} FAILED]", exp.name());
                failed.push(exp.name().to_string());
                failed_flags.push(true);
                reports.push(ExperimentReport {
                    name: exp.name().to_string(),
                    result_files: ctx.take_written(),
                    peak_rss_kb: cxlg_core::mem::peak_rss_kb(),
                });
            }
        }
        // This experiment's declared graphs are done with (even on
        // failure — it consumes no more); evict any whose last consumer
        // this was.
        for spec in exp.specs(ctx) {
            if ctx.release(spec) {
                eprintln!("[evicted {} from the graph cache]", spec.name());
            }
        }
    }
    println!(
        "\n{} of {} experiment(s) regenerated. JSON in {}.",
        reports.len() - failed.len(),
        exps.len(),
        ctx.results_dir.display()
    );
    if !failed.is_empty() {
        eprintln!("\nFAILED: {failed:?}");
    }
    if let Some(path) = manifest_path {
        write_manifest(ctx, &reports, &walls_ms, &failed_flags, path);
    }
    CampaignOutcome { reports, failed }
}

/// Serialize the run manifest: configuration, per-experiment wall-clock
/// and result paths, and the graph cache's per-spec build counts (the
/// proof that the campaign built each dataset exactly once).
fn write_manifest(
    ctx: &ExperimentCtx,
    reports: &[ExperimentReport],
    walls_ms: &[f64],
    failed_flags: &[bool],
    path: &Path,
) {
    let experiments = reports
        .iter()
        .zip(walls_ms)
        .zip(failed_flags)
        .map(|((r, wall), failed)| {
            Value::Map(vec![
                ("name".to_string(), Value::Str(r.name.clone())),
                ("wall_ms".to_string(), Value::F64(*wall)),
                ("failed".to_string(), Value::Bool(*failed)),
                // Process high-water RSS when the experiment finished
                // (monotone over the campaign; 0 = no platform source).
                ("peak_rss_kb".to_string(), Value::U64(r.peak_rss_kb)),
                (
                    "result_files".to_string(),
                    Value::Array(r.result_files.iter().map(|f| Value::Str(f.clone())).collect()),
                ),
            ])
        })
        .collect();
    let builds = ctx
        .graph_build_counts()
        .into_iter()
        .map(|(spec, n)| {
            Value::Map(vec![
                ("spec".to_string(), Value::Str(spec)),
                ("builds".to_string(), Value::U64(n)),
            ])
        })
        .collect();
    let evictions = ctx
        .graph_eviction_counts()
        .into_iter()
        .map(|(spec, n)| {
            Value::Map(vec![
                ("spec".to_string(), Value::Str(spec)),
                ("evictions".to_string(), Value::U64(n)),
            ])
        })
        .collect();
    let (graph_resident, graph_on_disk) = ctx.graph_storage_bytes();
    let manifest = Value::Map(vec![
        ("scale".to_string(), Value::U64(ctx.scale as u64)),
        ("seed".to_string(), Value::U64(ctx.seed)),
        ("threads".to_string(), Value::U64(ctx.threads as u64)),
        (
            "graph_storage".to_string(),
            Value::Str(ctx.graph_storage_mode().label().to_string()),
        ),
        // Telemetry over whatever graphs the eviction plan still holds
        // at manifest time (often none — evidence, not an invariant).
        ("graph_resident_bytes".to_string(), Value::U64(graph_resident)),
        ("graph_on_disk_bytes".to_string(), Value::U64(graph_on_disk)),
        (
            "results_dir".to_string(),
            Value::Str(ctx.results_dir.display().to_string()),
        ),
        (
            "peak_rss_kb".to_string(),
            Value::U64(cxlg_core::mem::peak_rss_kb()),
        ),
        ("experiments".to_string(), Value::Array(experiments)),
        ("graph_builds".to_string(), Value::Array(builds)),
        ("graph_evictions".to_string(), Value::Array(evictions)),
    ]);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create manifest dir");
    }
    let mut f = std::fs::File::create(path).expect("create manifest file");
    let s = serde_json::to_string_pretty(&manifest).expect("serialize manifest");
    f.write_all(s.as_bytes()).expect("write manifest file");
    eprintln!("[manifest {}]", path.display());
}

/// Execute a parsed `cxlg run`, returning the process exit code.
pub fn run_cli(args: RunArgs) -> i32 {
    let exps: Vec<&dyn Experiment> = if args.all {
        registry::all().collect()
    } else {
        match resolve(&args.names) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("cxlg run: {msg}");
                return 2;
            }
        }
    };
    if args.cached {
        let results_dir = crate::results_dir();
        let cas_root = args
            .cas_root
            .map_or_else(|| results_dir.join("cas"), PathBuf::from);
        let manifest_path = args
            .manifest
            .map(|p| p.map_or_else(|| results_dir.join("manifest.json"), PathBuf::from));
        let opts = crate::serve_cli::CachedOptions {
            fault_plan: args.fault_plan,
            fault_seed: args.fault_seed,
            max_attempts: args.max_attempts,
            cas_max_bytes: args.cas_max_bytes,
            graph_storage: args.graph_storage,
        };
        let outcome = crate::serve_cli::run_cached_campaign(
            crate::bench_scale(),
            crate::bench_seed(),
            rayon::current_num_threads(),
            &results_dir,
            &cas_root,
            &exps,
            manifest_path.as_deref(),
            &opts,
        );
        return match outcome {
            Ok(o) if o.failed.is_empty() => 0,
            Ok(_) => 1,
            Err(msg) => {
                eprintln!("cxlg run --cached: {msg}");
                2
            }
        };
    }
    let ctx = ExperimentCtx::from_env_with_storage(
        args.graph_storage.unwrap_or_else(crate::graph_storage),
    );
    let manifest_path = args
        .manifest
        .map(|p| p.map_or_else(|| ctx.results_dir.join("manifest.json"), PathBuf::from));
    let outcome = run_experiments(&ctx, &exps, manifest_path.as_deref());
    if outcome.failed.is_empty() {
        0
    } else {
        1
    }
}

/// Parsed `cxlg graph-mem` arguments.
#[derive(Debug, PartialEq)]
pub struct GraphMemArgs {
    /// Dataset family (`urand`, `kron`, `social`).
    pub family: String,
    /// log2 vertex count.
    pub scale: u32,
    /// Fail when peak RSS exceeds this many bytes per directed arc.
    pub max_bytes_per_arc: Option<f64>,
    /// Storage backend to build the probe dataset into.
    pub storage: cxlg_graph::StorageMode,
}

/// Parse the arguments following `cxlg graph-mem`.
pub fn parse_graph_mem_args(args: &[String]) -> Result<GraphMemArgs, String> {
    let mut family = None;
    let mut scale = None;
    let mut max_bytes_per_arc = None;
    let mut storage = cxlg_graph::StorageMode::Mem;
    for a in args {
        if let Some(v) = a.strip_prefix("--storage=") {
            storage = cxlg_graph::StorageMode::parse(v)
                .ok_or_else(|| format!("--storage: unknown mode `{v}` (mem | spill)"))?;
        } else if let Some(v) = a.strip_prefix("--max-bytes-per-arc=") {
            let n: f64 = v
                .parse()
                .map_err(|_| format!("--max-bytes-per-arc: bad number `{v}`"))?;
            if !n.is_finite() || n <= 0.0 {
                return Err("--max-bytes-per-arc must be positive and finite".to_string());
            }
            max_bytes_per_arc = Some(n);
        } else if a.starts_with('-') {
            return Err(format!("unknown option `{a}`"));
        } else if family.is_none() {
            family = Some(a.clone());
        } else if scale.is_none() {
            scale = Some(
                a.parse::<u32>()
                    .map_err(|_| format!("bad scale `{a}`"))?,
            );
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let family = family.ok_or("graph-mem: missing dataset family")?;
    let scale = scale.ok_or("graph-mem: missing scale")?;
    if !matches!(family.as_str(), "urand" | "kron" | "social") {
        return Err(format!(
            "unknown family `{family}` (known: urand, kron, social)"
        ));
    }
    // Match the generators' contract (`1 <= scale < 32`) here so a bad
    // scale is a usage error, not a generator panic mid-build.
    if !(1..32).contains(&scale) {
        return Err(format!("scale {scale} out of range (1..=31)"));
    }
    Ok(GraphMemArgs {
        family,
        scale,
        max_bytes_per_arc,
        storage,
    })
}

/// Build one dataset in this process and report build wall-clock, the
/// process peak RSS, the bytes-per-arc ratio, and the CSR fingerprint —
/// the probe behind the CI build-memory budget and the EXPERIMENTS.md
/// before/after table. Returns the process exit code.
///
/// Peak RSS is a process-wide high-water mark, so the probe is honest
/// only when the build is the process's dominant allocation — which is
/// why it is a subcommand (fresh process) rather than an experiment.
pub fn graph_mem(args: GraphMemArgs) -> i32 {
    let seed = crate::bench_seed();
    let spec = match args.family.as_str() {
        "urand" => cxlg_graph::GraphSpec::urand(args.scale),
        "kron" => cxlg_graph::GraphSpec::kron(args.scale),
        _ => cxlg_graph::GraphSpec::friendster_like(args.scale),
    }
    .seed(seed);
    let spill_dir = std::env::temp_dir().join(format!(
        "cxlg-graph-mem-spill-{}",
        std::process::id()
    ));
    let spill_cfg = cxlg_graph::SpillConfig::new(&spill_dir);
    let baseline_kb = cxlg_core::mem::peak_rss_kb();
    let (g, wall) = timed(|| spec.build_with(args.storage, &spill_cfg));
    let peak_kb = cxlg_core::mem::peak_rss_kb();
    let arcs = g.num_edges();
    let per_arc = |bytes: f64| if arcs == 0 { 0.0 } else { bytes / arcs as f64 };
    let bytes_per_arc = per_arc((peak_kb * 1024) as f64);
    println!(
        "graph-mem {}: vertices={} arcs={} wall_ms={:.0} peak_rss_kb={} \
         baseline_rss_kb={} bytes_per_arc={:.2} storage={} \
         resident_bytes_per_arc={:.2} on_disk_bytes_per_arc={:.2} \
         fingerprint={:#018x}",
        spec.name(),
        g.num_vertices(),
        arcs,
        wall.as_secs_f64() * 1e3,
        peak_kb,
        baseline_kb,
        bytes_per_arc,
        g.storage_mode().label(),
        per_arc(g.resident_bytes() as f64),
        per_arc(g.on_disk_bytes() as f64),
        g.fingerprint(),
    );
    // A built spill file is deleted when `g` drops; sweep the (now
    // empty) per-process spill directory with it.
    drop(g);
    let _ = std::fs::remove_dir(&spill_dir);
    if let Some(budget) = args.max_bytes_per_arc {
        if peak_kb == 0 {
            eprintln!("graph-mem: no peak-RSS source on this platform; budget not enforced");
        } else if bytes_per_arc > budget {
            eprintln!(
                "graph-mem: peak RSS {bytes_per_arc:.2} B/arc exceeds the {budget:.2} B/arc budget"
            );
            return 1;
        }
    }
    0
}

/// Parsed `cxlg lint` arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct LintArgs {
    /// Workspace root to scan (default: current directory).
    pub root: PathBuf,
    /// Emit the machine-readable JSON report instead of text.
    pub json: bool,
    /// Exit 1 on any unsuppressed finding (the CI gate mode).
    pub deny: bool,
}

/// Parse the arguments following `cxlg lint`.
pub fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut out = LintArgs {
        root: PathBuf::from("."),
        json: false,
        deny: false,
    };
    for a in args {
        if let Some(dir) = a.strip_prefix("--root=") {
            if dir.is_empty() {
                return Err("--root= requires a directory".to_string());
            }
            out.root = PathBuf::from(dir);
        } else if a == "--json" {
            out.json = true;
        } else if a == "--deny" {
            out.deny = true;
        } else {
            return Err(format!("unknown argument `{a}`"));
        }
    }
    Ok(out)
}

/// Execute `cxlg lint`: run the determinism & unsafety analyzer over
/// the workspace, print the byte-stable report to stdout, and report
/// wall-clock on stderr (the report itself must stay host-independent).
/// Returns the process exit code: with `--deny`, 1 on any unsuppressed
/// finding; 2 on I/O failure.
pub fn run_lint(args: LintArgs) -> i32 {
    let (run, wall) = timed(|| cxlg_lint::run_workspace(&args.root));
    let run = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cxlg lint: {e}");
            return 2;
        }
    };
    if args.json {
        println!("{}", run.render_json());
    } else {
        print!("{}", run.render_text());
    }
    eprintln!("[lint wall-clock: {:.0} ms]", wall.as_secs_f64() * 1e3);
    if args.deny && run.active().count() > 0 {
        eprintln!("cxlg lint: denying on {} finding(s)", run.active().count());
        1
    } else {
        0
    }
}

/// Parsed `cxlg serve` arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct ServeArgs {
    /// Unix socket path the service listens on (or is queried at).
    pub socket: PathBuf,
    /// Worker-pool size (default 2).
    pub workers: usize,
    /// CAS root (default `<results_dir>/cas`).
    pub cas_root: Option<String>,
    /// Client mode: query a running service's stats instead of serving.
    pub stats: bool,
    /// Execution attempts per job before `Failed` (default 1).
    pub max_attempts: u64,
    /// Per-job watchdog timeout in ms (`None` disables).
    pub job_timeout_ms: Option<u64>,
    /// Admission budget: estimated bytes of concurrently running jobs.
    pub mem_budget_bytes: Option<u64>,
    /// CAS byte budget: GC after every publication.
    pub cas_max_bytes: Option<u64>,
}

/// Parse the arguments following `cxlg serve`.
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs {
        socket: PathBuf::new(),
        workers: 2,
        cas_root: None,
        stats: false,
        max_attempts: 0,
        job_timeout_ms: None,
        mem_budget_bytes: None,
        cas_max_bytes: None,
    };
    let mut socket = None;
    let parse_positive = |flag: &str, n: &str| {
        n.parse::<u64>()
            .ok()
            .filter(|v| *v >= 1)
            .ok_or_else(|| format!("{flag}: bad value `{n}` (need >= 1)"))
    };
    for a in args {
        if let Some(p) = a.strip_prefix("--socket=") {
            if p.is_empty() {
                return Err("--socket= requires a path".to_string());
            }
            socket = Some(PathBuf::from(p));
        } else if let Some(n) = a.strip_prefix("--workers=") {
            out.workers = parse_positive("--workers", n)? as usize;
        } else if let Some(dir) = a.strip_prefix("--cas-root=") {
            if dir.is_empty() {
                return Err("--cas-root= requires a directory".to_string());
            }
            out.cas_root = Some(dir.to_string());
        } else if let Some(n) = a.strip_prefix("--max-attempts=") {
            out.max_attempts = parse_positive("--max-attempts", n)?;
        } else if let Some(n) = a.strip_prefix("--job-timeout-ms=") {
            out.job_timeout_ms = Some(parse_positive("--job-timeout-ms", n)?);
        } else if let Some(n) = a.strip_prefix("--mem-budget-bytes=") {
            out.mem_budget_bytes = Some(parse_positive("--mem-budget-bytes", n)?);
        } else if let Some(n) = a.strip_prefix("--cas-max-bytes=") {
            out.cas_max_bytes = Some(parse_positive("--cas-max-bytes", n)?);
        } else if a == "--stats" {
            out.stats = true;
        } else {
            return Err(format!("unknown argument `{a}`"));
        }
    }
    out.socket = socket.ok_or("serve: --socket=PATH is required")?;
    Ok(out)
}

/// Parsed `cxlg submit` arguments: the socket plus exactly one action.
#[derive(Debug, PartialEq, Eq)]
pub struct SubmitArgs {
    /// Unix socket of the running service.
    pub socket: PathBuf,
    /// The single request this invocation sends.
    pub action: SubmitAction,
}

/// What a `cxlg submit` invocation asks the service to do.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitAction {
    /// Submit one experiment job.
    Submit {
        /// Registered experiment name.
        experiment: String,
        /// Override the server's default scale.
        scale: Option<u32>,
        /// Override the server's default seed.
        seed: Option<u64>,
        /// Override the server's default thread count.
        threads: Option<usize>,
        /// Scheduling lane (server default: normal).
        priority: Option<String>,
        /// Block until the job is terminal.
        wait: bool,
        /// Bound the `--wait` block (ms); the response carries
        /// `wait_timed_out` when it expires first.
        timeout_ms: Option<u64>,
    },
    /// Snapshot a job by key.
    Status(String),
    /// Block until a job is terminal (optionally bounded, in ms).
    WaitKey(String, Option<u64>),
    /// Cancel a queued job.
    Cancel(String),
    /// Stop the service.
    Shutdown,
}

/// Parse the arguments following `cxlg submit`.
pub fn parse_submit_args(args: &[String]) -> Result<SubmitArgs, String> {
    let mut socket = None;
    let mut experiment = None;
    let mut scale = None;
    let mut seed = None;
    let mut threads = None;
    let mut priority = None;
    let mut wait = false;
    let mut timeout_ms = None;
    let mut wait_key = None;
    let mut keyed: Option<SubmitAction> = None;
    let set_keyed = |action: SubmitAction, keyed: &mut Option<SubmitAction>| {
        if keyed.is_some() {
            Err("submit: pass at most one of --status/--wait-key/--cancel/--shutdown".to_string())
        } else {
            *keyed = Some(action);
            Ok(())
        }
    };
    for a in args {
        if let Some(p) = a.strip_prefix("--socket=") {
            if p.is_empty() {
                return Err("--socket= requires a path".to_string());
            }
            socket = Some(PathBuf::from(p));
        } else if let Some(n) = a.strip_prefix("--scale=") {
            scale = Some(n.parse::<u32>().map_err(|_| format!("bad scale `{n}`"))?);
        } else if let Some(n) = a.strip_prefix("--seed=") {
            seed = Some(n.parse::<u64>().map_err(|_| format!("bad seed `{n}`"))?);
        } else if let Some(n) = a.strip_prefix("--threads=") {
            threads = Some(
                n.parse::<usize>()
                    .ok()
                    .filter(|t| *t >= 1)
                    .ok_or_else(|| format!("bad thread count `{n}`"))?,
            );
        } else if let Some(p) = a.strip_prefix("--priority=") {
            if !matches!(p, "high" | "normal" | "low") {
                return Err(format!("bad priority `{p}` (high|normal|low)"));
            }
            priority = Some(p.to_string());
        } else if a == "--wait" {
            wait = true;
        } else if let Some(n) = a.strip_prefix("--timeout-ms=") {
            timeout_ms = Some(
                n.parse::<u64>()
                    .map_err(|_| format!("bad timeout `{n}`"))?,
            );
        } else if let Some(k) = a.strip_prefix("--status=") {
            set_keyed(SubmitAction::Status(k.to_string()), &mut keyed)?;
        } else if let Some(k) = a.strip_prefix("--wait-key=") {
            // The timeout flag may come after the key; bind them once
            // every argument is seen.
            if wait_key.replace(k.to_string()).is_some() {
                return Err("submit: pass --wait-key at most once".to_string());
            }
        } else if let Some(k) = a.strip_prefix("--cancel=") {
            set_keyed(SubmitAction::Cancel(k.to_string()), &mut keyed)?;
        } else if a == "--shutdown" {
            set_keyed(SubmitAction::Shutdown, &mut keyed)?;
        } else if a.starts_with('-') {
            return Err(format!("unknown option `{a}`"));
        } else if experiment.is_none() {
            experiment = Some(a.clone());
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let socket = socket.ok_or("submit: --socket=PATH is required")?;
    if let Some(k) = wait_key {
        set_keyed(SubmitAction::WaitKey(k, timeout_ms.take()), &mut keyed)?;
    }
    if timeout_ms.is_some() && !wait {
        return Err("submit: --timeout-ms requires --wait or --wait-key".to_string());
    }
    let action = match (experiment, keyed) {
        (Some(_), Some(_)) => {
            return Err("submit: an experiment name and a keyed action are exclusive".to_string())
        }
        (None, Some(action)) => action,
        (Some(experiment), None) => SubmitAction::Submit {
            experiment,
            scale,
            seed,
            threads,
            priority,
            wait,
            timeout_ms,
        },
        (None, None) => return Err("submit: nothing to do (experiment name or keyed action)".to_string()),
    };
    Ok(SubmitArgs { socket, action })
}

/// Render one protocol request line for a submit action. Pure, so the
/// wire format is unit-testable without a live socket.
pub fn submit_request_line(action: &SubmitAction) -> String {
    let mut fields: Vec<(String, Value)> = Vec::new();
    match action {
        SubmitAction::Submit {
            experiment,
            scale,
            seed,
            threads,
            priority,
            wait,
            timeout_ms,
        } => {
            fields.push(("op".to_string(), Value::Str("submit".to_string())));
            fields.push(("experiment".to_string(), Value::Str(experiment.clone())));
            if let Some(s) = scale {
                fields.push(("scale".to_string(), Value::U64(*s as u64)));
            }
            if let Some(s) = seed {
                fields.push(("seed".to_string(), Value::U64(*s)));
            }
            if let Some(t) = threads {
                fields.push(("threads".to_string(), Value::U64(*t as u64)));
            }
            if let Some(p) = priority {
                fields.push(("priority".to_string(), Value::Str(p.clone())));
            }
            if *wait {
                fields.push(("wait".to_string(), Value::Bool(true)));
            }
            if let Some(t) = timeout_ms {
                fields.push(("timeout_ms".to_string(), Value::U64(*t)));
            }
        }
        SubmitAction::Status(k) => {
            fields.push(("op".to_string(), Value::Str("status".to_string())));
            fields.push(("key".to_string(), Value::Str(k.clone())));
        }
        SubmitAction::WaitKey(k, timeout_ms) => {
            fields.push(("op".to_string(), Value::Str("wait".to_string())));
            fields.push(("key".to_string(), Value::Str(k.clone())));
            if let Some(t) = timeout_ms {
                fields.push(("timeout_ms".to_string(), Value::U64(*t)));
            }
        }
        SubmitAction::Cancel(k) => {
            fields.push(("op".to_string(), Value::Str("cancel".to_string())));
            fields.push(("key".to_string(), Value::Str(k.clone())));
        }
        SubmitAction::Shutdown => {
            fields.push(("op".to_string(), Value::Str("shutdown".to_string())));
        }
    }
    serde_json::to_string(&Value::Map(fields)).expect("serialize request")
}

/// Exit code for a service response line: 0 when the service said
/// `ok:true`, the reported job status (if any) is not `failed`, and a
/// bounded wait did not expire (`wait_timed_out`) — so scripts can poll
/// with `--timeout-ms` and branch on the exit code.
pub fn response_exit_code(response: &str) -> i32 {
    let Ok(Value::Map(map)) = serde_json::from_str::<Value>(response) else {
        return 1;
    };
    let ok = map
        .iter()
        .any(|(k, v)| k == "ok" && matches!(v, Value::Bool(true)));
    let failed = map
        .iter()
        .any(|(k, v)| k == "status" && matches!(v, Value::Str(s) if s == "failed"));
    let timed_out = map
        .iter()
        .any(|(k, v)| k == "wait_timed_out" && matches!(v, Value::Bool(true)));
    if ok && !failed && !timed_out {
        0
    } else {
        1
    }
}

/// Parsed `cxlg cas gc` arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct CasGcArgs {
    /// Store root to collect.
    pub cas_root: PathBuf,
    /// Evict (LRU by publication sequence) until at or below this many
    /// bytes.
    pub max_bytes: Option<u64>,
    /// Evict until at or below this many entries.
    pub max_entries: Option<usize>,
}

/// Parse the arguments following `cxlg cas` (currently only the `gc`
/// verb).
pub fn parse_cas_args(args: &[String]) -> Result<CasGcArgs, String> {
    let Some(("gc", rest)) = args.split_first().map(|(v, r)| (v.as_str(), r)) else {
        return Err("cas: expected the `gc` verb".to_string());
    };
    let mut out = CasGcArgs {
        cas_root: PathBuf::new(),
        max_bytes: None,
        max_entries: None,
    };
    let mut cas_root = None;
    for a in rest {
        if let Some(dir) = a.strip_prefix("--cas-root=") {
            if dir.is_empty() {
                return Err("--cas-root= requires a directory".to_string());
            }
            cas_root = Some(PathBuf::from(dir));
        } else if let Some(n) = a.strip_prefix("--max-bytes=") {
            out.max_bytes = Some(
                n.parse::<u64>()
                    .map_err(|_| format!("--max-bytes: bad size `{n}`"))?,
            );
        } else if let Some(n) = a.strip_prefix("--max-entries=") {
            out.max_entries = Some(
                n.parse::<usize>()
                    .map_err(|_| format!("--max-entries: bad count `{n}`"))?,
            );
        } else {
            return Err(format!("unknown argument `{a}`"));
        }
    }
    out.cas_root = cas_root.ok_or("cas gc: --cas-root=DIR is required")?;
    Ok(out)
}

/// Execute `cxlg cas gc`: open the store (which already reaps stale
/// staging litter and quarantines corrupt manifests as part of open)
/// and evict entries oldest-publication-first until the given bounds
/// fit. With no bounds this is a recovery-only pass. Returns the exit
/// code.
pub fn run_cas_gc(args: CasGcArgs) -> i32 {
    let store = match cxlg_serve::store::ResultStore::new(&args.cas_root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cxlg cas gc: open {}: {e}", args.cas_root.display());
            return 2;
        }
    };
    let recovered = store.counters();
    let report = store.gc(args.max_bytes, args.max_entries);
    for key in &report.evicted {
        println!("evicted {key}");
    }
    println!(
        "cas gc {}: entries {} -> {}, bytes {} -> {} (reaped {} staging dir(s), \
         quarantined {} entr(ies))",
        args.cas_root.display(),
        report.entries_before,
        report.entries_before - report.evicted.len(),
        report.bytes_before,
        report.bytes_after,
        recovered.staging_reaped,
        recovered.quarantined,
    );
    0
}

/// Execute `cxlg serve`: either run the campaign service on a Unix
/// socket until a client sends `shutdown`, or (with `--stats`) query a
/// running service and print its stats line. Returns the exit code.
#[cfg(unix)]
pub fn run_serve(args: ServeArgs) -> i32 {
    use cxlg_serve::server::{request_one, Server, SubmitDefaults};
    if args.stats {
        return match request_one(&args.socket, "{\"op\":\"stats\"}") {
            Ok(resp) => {
                println!("{resp}");
                response_exit_code(&resp)
            }
            Err(e) => {
                eprintln!("cxlg serve --stats: {e}");
                1
            }
        };
    }
    let results_dir = crate::results_dir();
    let cas_root = args
        .cas_root
        .map_or_else(|| results_dir.join("cas"), PathBuf::from);
    let cache = std::sync::Arc::new(crate::cache::GraphCache::with_storage(
        crate::graph_storage(),
        cxlg_graph::SpillConfig::new(results_dir.join("graph-spill")),
    ));
    let backend = match crate::serve_cli::RegistryBackend::new(&cas_root, cache) {
        Ok(b) => std::sync::Arc::new(b),
        Err(e) => {
            eprintln!("cxlg serve: open CAS root: {e}");
            return 2;
        }
    };
    let store = match cxlg_serve::store::ResultStore::new(&cas_root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cxlg serve: open result store: {e}");
            return 2;
        }
    };
    let defaults = SubmitDefaults {
        scale: crate::bench_scale(),
        seed: crate::bench_seed(),
        threads: rayon::current_num_threads(),
    };
    let sched = cxlg_serve::scheduler::Scheduler::with_config(
        store,
        backend,
        cxlg_serve::scheduler::SchedulerConfig {
            workers: args.workers,
            max_attempts: args.max_attempts,
            job_timeout_ms: args.job_timeout_ms,
            mem_budget_bytes: args.mem_budget_bytes,
            cas_max_bytes: args.cas_max_bytes,
            faults: None,
        },
    );
    let server = match Server::bind(&args.socket, sched, defaults) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cxlg serve: bind {}: {e}", args.socket.display());
            return 2;
        }
    };
    println!(
        "cxlg serve: listening on {} (workers={}, cas={}, defaults scale={} seed={:#x} threads={})",
        args.socket.display(),
        args.workers,
        cas_root.display(),
        defaults.scale,
        defaults.seed,
        defaults.threads,
    );
    match server.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("cxlg serve: {e}");
            1
        }
    }
}

/// Execute `cxlg submit`: send one request line to a running service
/// and print the response. Returns the exit code.
#[cfg(unix)]
pub fn run_submit(args: SubmitArgs) -> i32 {
    let line = submit_request_line(&args.action);
    match cxlg_serve::server::request_one(&args.socket, &line) {
        Ok(resp) => {
            println!("{resp}");
            response_exit_code(&resp)
        }
        Err(e) => {
            eprintln!("cxlg submit: {e}");
            1
        }
    }
}

/// Entry point of the `cxlg` binary.
pub fn cxlg_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => {
            for e in registry::all() {
                println!("{:<16} {}", e.name(), e.description());
            }
            println!();
            println!("{} experiments. Run with `cxlg run <names...>` or `cxlg run --all`.",
                registry::ALL.len());
            0
        }
        Some("run") => match parse_run_args(&args[1..]) {
            Ok(ra) => run_cli(ra),
            Err(msg) => {
                eprintln!("cxlg run: {msg}\n\n{USAGE}");
                2
            }
        },
        Some("graph-mem") => match parse_graph_mem_args(&args[1..]) {
            Ok(ga) => graph_mem(ga),
            Err(msg) => {
                eprintln!("cxlg graph-mem: {msg}\n\n{USAGE}");
                2
            }
        },
        #[cfg(unix)]
        Some("serve") => match parse_serve_args(&args[1..]) {
            Ok(sa) => run_serve(sa),
            Err(msg) => {
                eprintln!("cxlg serve: {msg}\n\n{USAGE}");
                2
            }
        },
        #[cfg(unix)]
        Some("submit") => match parse_submit_args(&args[1..]) {
            Ok(sa) => run_submit(sa),
            Err(msg) => {
                eprintln!("cxlg submit: {msg}\n\n{USAGE}");
                2
            }
        },
        Some("cas") => match parse_cas_args(&args[1..]) {
            Ok(ca) => run_cas_gc(ca),
            Err(msg) => {
                eprintln!("cxlg cas: {msg}\n\n{USAGE}");
                2
            }
        },
        Some("lint") => match parse_lint_args(&args[1..]) {
            Ok(la) => run_lint(la),
            Err(msg) => {
                eprintln!("cxlg lint: {msg}\n\n{USAGE}");
                2
            }
        },
        Some("validate") => match crate::fidelity::parse_validate_args(&args[1..]) {
            Ok(va) => crate::fidelity::run_validate(va),
            Err(msg) => {
                eprintln!("cxlg validate: {msg}\n\n{USAGE}");
                2
            }
        },
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("cxlg: unknown command `{other}`\n\n{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Entry point of a legacy per-figure shim binary: run exactly one
/// registered experiment with the environment-derived context. The
/// result JSON matches `cxlg run <name>` byte for byte (enforced by
/// `tests/golden_parity.rs`); stdout is the experiment's own output,
/// without the driver's `####` separator and summary footer.
pub fn shim_main(name: &str) {
    let exp = registry::find(name)
        .unwrap_or_else(|| panic!("experiment `{name}` is not registered"));
    let ctx = ExperimentCtx::from_env();
    exp.run(&ctx);
}

/// Entry point of the `all_figures` shim: `cxlg run --all
/// --json-manifest` under the hood (one process, shared graph cache —
/// no child spawning).
pub fn run_all() {
    let code = run_cli(RunArgs {
        all: true,
        names: Vec::new(),
        manifest: Some(None),
        cached: false,
        cas_root: None,
        fault_plan: None,
        fault_seed: 0,
        max_attempts: 0,
        cas_max_bytes: None,
        graph_storage: None,
    });
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_names_and_manifest_forms() {
        let ra = parse_run_args(&s(&["fig3", "fig6"])).unwrap();
        assert_eq!(ra.names, vec!["fig3", "fig6"]);
        assert!(!ra.all);
        assert_eq!(ra.manifest, None);

        let ra = parse_run_args(&s(&["--all", "--json-manifest"])).unwrap();
        assert!(ra.all);
        assert_eq!(ra.manifest, Some(None));

        let ra = parse_run_args(&s(&["--json-manifest=/tmp/m.json", "fig3"])).unwrap();
        assert_eq!(ra.manifest, Some(Some("/tmp/m.json".to_string())));
    }

    #[test]
    fn parse_graph_storage_forms() {
        let ra = parse_run_args(&s(&["fig3"])).unwrap();
        assert_eq!(ra.graph_storage, None, "default defers to the environment");
        let ra = parse_run_args(&s(&["--graph-storage=spill", "fig3"])).unwrap();
        assert_eq!(ra.graph_storage, Some(cxlg_graph::StorageMode::Spill));
        let ra = parse_run_args(&s(&["--graph-storage=mem", "--cached", "fig3"])).unwrap();
        assert_eq!(ra.graph_storage, Some(cxlg_graph::StorageMode::Mem));
        assert!(ra.cached, "storage composes with --cached");
        assert!(parse_run_args(&s(&["--graph-storage=frob", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--graph-storage=", "fig3"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_combinations() {
        assert!(parse_run_args(&s(&[])).is_err());
        assert!(parse_run_args(&s(&["--all", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--json-manifest="])).is_err());
        assert!(parse_run_args(&s(&["--frobnicate"])).is_err());
    }

    #[test]
    fn parse_graph_mem_forms() {
        let ga = parse_graph_mem_args(&s(&["urand", "18"])).unwrap();
        assert_eq!(
            ga,
            GraphMemArgs {
                family: "urand".to_string(),
                scale: 18,
                max_bytes_per_arc: None,
                storage: cxlg_graph::StorageMode::Mem,
            }
        );
        let ga = parse_graph_mem_args(&s(&["kron", "16", "--max-bytes-per-arc=10"])).unwrap();
        assert_eq!(ga.max_bytes_per_arc, Some(10.0));
        let ga = parse_graph_mem_args(&s(&["urand", "18", "--storage=spill"])).unwrap();
        assert_eq!(ga.storage, cxlg_graph::StorageMode::Spill);
        let ga = parse_graph_mem_args(&s(&["urand", "18", "--storage=mem"])).unwrap();
        assert_eq!(ga.storage, cxlg_graph::StorageMode::Mem);
    }

    #[test]
    fn parse_graph_mem_rejects_bad_input() {
        assert!(parse_graph_mem_args(&s(&[])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand"])).is_err());
        assert!(parse_graph_mem_args(&s(&["frob", "18"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "big"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "0"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "32"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "18", "19"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "18", "--max-bytes-per-arc=0"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "18", "--max-bytes-per-arc=inf"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "18", "--max-bytes-per-arc=nan"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "18", "--frob"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "18", "--storage=frob"])).is_err());
        assert!(parse_graph_mem_args(&s(&["urand", "18", "--storage="])).is_err());
    }

    #[test]
    fn parse_lint_forms() {
        let la = parse_lint_args(&s(&[])).unwrap();
        assert_eq!(
            la,
            LintArgs {
                root: PathBuf::from("."),
                json: false,
                deny: false
            }
        );
        let la = parse_lint_args(&s(&["--root=/tmp/ws", "--json", "--deny"])).unwrap();
        assert_eq!(la.root, PathBuf::from("/tmp/ws"));
        assert!(la.json && la.deny);
        assert!(parse_lint_args(&s(&["--root="])).is_err());
        assert!(parse_lint_args(&s(&["--frob"])).is_err());
        assert!(parse_lint_args(&s(&["stray"])).is_err());
    }

    #[test]
    fn parse_run_cached_forms() {
        let ra = parse_run_args(&s(&["--cached", "--all"])).unwrap();
        assert!(ra.cached && ra.all);
        assert_eq!(ra.cas_root, None);
        let ra = parse_run_args(&s(&["--cached", "--cas-root=/tmp/cas", "fig3"])).unwrap();
        assert_eq!(ra.cas_root, Some("/tmp/cas".to_string()));
        assert!(parse_run_args(&s(&["--cas-root=/tmp/cas", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--cached", "--cas-root=", "fig3"])).is_err());
    }

    #[test]
    fn parse_run_chaos_forms() {
        let ra = parse_run_args(&s(&[
            "--cached",
            "--fault-plan=panic@2,torn@1,delay@3:25",
            "--fault-seed=7",
            "--max-attempts=4",
            "--cas-max-bytes=4096",
            "fig3",
        ]))
        .unwrap();
        assert_eq!(ra.fault_plan.as_deref(), Some("panic@2,torn@1,delay@3:25"));
        assert_eq!(ra.fault_seed, 7);
        assert_eq!(ra.max_attempts, 4);
        assert_eq!(ra.cas_max_bytes, Some(4096));
        // A bad plan is a usage error, caught at parse time.
        assert!(parse_run_args(&s(&["--cached", "--fault-plan=frob@1", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--cached", "--fault-plan=panic", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--cached", "--max-attempts=0", "fig3"])).is_err());
        // The chaos knobs all require --cached.
        assert!(parse_run_args(&s(&["--fault-plan=panic@1", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--fault-seed=7", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--max-attempts=2", "fig3"])).is_err());
        assert!(parse_run_args(&s(&["--cas-max-bytes=1", "fig3"])).is_err());
    }

    #[test]
    fn parse_serve_forms() {
        let sa = parse_serve_args(&s(&["--socket=/tmp/s.sock"])).unwrap();
        assert_eq!(
            sa,
            ServeArgs {
                socket: PathBuf::from("/tmp/s.sock"),
                workers: 2,
                cas_root: None,
                stats: false,
                max_attempts: 0,
                job_timeout_ms: None,
                mem_budget_bytes: None,
                cas_max_bytes: None,
            }
        );
        let sa =
            parse_serve_args(&s(&["--socket=/tmp/s.sock", "--workers=4", "--cas-root=/tmp/cas", "--stats"]))
                .unwrap();
        assert_eq!(sa.workers, 4);
        assert_eq!(sa.cas_root, Some("/tmp/cas".to_string()));
        assert!(sa.stats);
        let sa = parse_serve_args(&s(&[
            "--socket=/tmp/s.sock",
            "--max-attempts=3",
            "--job-timeout-ms=5000",
            "--mem-budget-bytes=1073741824",
            "--cas-max-bytes=8388608",
        ]))
        .unwrap();
        assert_eq!(sa.max_attempts, 3);
        assert_eq!(sa.job_timeout_ms, Some(5000));
        assert_eq!(sa.mem_budget_bytes, Some(1_073_741_824));
        assert_eq!(sa.cas_max_bytes, Some(8_388_608));
        assert!(parse_serve_args(&s(&[])).is_err(), "socket is required");
        assert!(parse_serve_args(&s(&["--socket="])).is_err());
        assert!(parse_serve_args(&s(&["--socket=/tmp/s", "--workers=0"])).is_err());
        assert!(parse_serve_args(&s(&["--socket=/tmp/s", "--job-timeout-ms=0"])).is_err());
        assert!(parse_serve_args(&s(&["--socket=/tmp/s", "--mem-budget-bytes=x"])).is_err());
        assert!(parse_serve_args(&s(&["--socket=/tmp/s", "--frob"])).is_err());
    }

    #[test]
    fn parse_submit_forms() {
        let sa = parse_submit_args(&s(&["--socket=/tmp/s.sock", "fig3", "--wait"])).unwrap();
        assert_eq!(
            sa.action,
            SubmitAction::Submit {
                experiment: "fig3".to_string(),
                scale: None,
                seed: None,
                threads: None,
                priority: None,
                wait: true,
                timeout_ms: None
            }
        );
        let sa = parse_submit_args(&s(&[
            "--socket=/tmp/s.sock",
            "fig3",
            "--scale=10",
            "--seed=7",
            "--threads=2",
            "--priority=high",
        ]))
        .unwrap();
        let SubmitAction::Submit { scale, seed, threads, priority, wait, .. } = sa.action else {
            panic!("must parse a submit action")
        };
        assert_eq!((scale, seed, threads), (Some(10), Some(7), Some(2)));
        assert_eq!(priority.as_deref(), Some("high"));
        assert!(!wait);
        let sa = parse_submit_args(&s(&["--socket=/tmp/s", "--status=0123456789abcdef"])).unwrap();
        assert_eq!(sa.action, SubmitAction::Status("0123456789abcdef".to_string()));
        let sa = parse_submit_args(&s(&["--socket=/tmp/s", "--shutdown"])).unwrap();
        assert_eq!(sa.action, SubmitAction::Shutdown);
    }

    #[test]
    fn parse_submit_timeout_forms() {
        let sa =
            parse_submit_args(&s(&["--socket=/tmp/s", "fig3", "--wait", "--timeout-ms=250"]))
                .unwrap();
        let SubmitAction::Submit { wait, timeout_ms, .. } = sa.action else {
            panic!("must parse a submit action")
        };
        assert!(wait);
        assert_eq!(timeout_ms, Some(250));
        // The flag binds to --wait-key in either argument order.
        let sa = parse_submit_args(&s(&["--socket=/tmp/s", "--timeout-ms=100", "--wait-key=k"]))
            .unwrap();
        assert_eq!(sa.action, SubmitAction::WaitKey("k".to_string(), Some(100)));
        let sa = parse_submit_args(&s(&["--socket=/tmp/s", "--wait-key=k"])).unwrap();
        assert_eq!(sa.action, SubmitAction::WaitKey("k".to_string(), None));
        // A timeout without anything to wait on is a usage error.
        assert!(parse_submit_args(&s(&["--socket=/tmp/s", "fig3", "--timeout-ms=5"])).is_err());
        assert!(parse_submit_args(&s(&["--socket=/tmp/s", "fig3", "--timeout-ms=x", "--wait"]))
            .is_err());
        assert!(
            parse_submit_args(&s(&["--socket=/tmp/s", "--wait-key=a", "--wait-key=b"])).is_err()
        );
    }

    #[test]
    fn parse_cas_gc_forms() {
        let ca = parse_cas_args(&s(&["gc", "--cas-root=/tmp/cas"])).unwrap();
        assert_eq!(
            ca,
            CasGcArgs {
                cas_root: PathBuf::from("/tmp/cas"),
                max_bytes: None,
                max_entries: None
            }
        );
        let ca = parse_cas_args(&s(&[
            "gc",
            "--cas-root=/tmp/cas",
            "--max-bytes=1048576",
            "--max-entries=16",
        ]))
        .unwrap();
        assert_eq!(ca.max_bytes, Some(1_048_576));
        assert_eq!(ca.max_entries, Some(16));
        assert!(parse_cas_args(&s(&[])).is_err(), "the verb is required");
        assert!(parse_cas_args(&s(&["frob"])).is_err());
        assert!(parse_cas_args(&s(&["gc"])).is_err(), "the root is required");
        assert!(parse_cas_args(&s(&["gc", "--cas-root="])).is_err());
        assert!(parse_cas_args(&s(&["gc", "--cas-root=/tmp/c", "--max-bytes=x"])).is_err());
        assert!(parse_cas_args(&s(&["gc", "--cas-root=/tmp/c", "--frob"])).is_err());
    }

    #[test]
    fn parse_submit_rejects_bad_combinations() {
        assert!(parse_submit_args(&s(&["fig3"])).is_err(), "socket required");
        assert!(parse_submit_args(&s(&["--socket=/tmp/s"])).is_err(), "no action");
        assert!(parse_submit_args(&s(&["--socket=/tmp/s", "fig3", "--shutdown"])).is_err());
        assert!(
            parse_submit_args(&s(&["--socket=/tmp/s", "--status=a", "--cancel=b"])).is_err()
        );
        assert!(parse_submit_args(&s(&["--socket=/tmp/s", "fig3", "--threads=0"])).is_err());
        assert!(parse_submit_args(&s(&["--socket=/tmp/s", "fig3", "--priority=urgent"])).is_err());
    }

    #[test]
    fn submit_request_lines_are_valid_protocol() {
        let line = submit_request_line(&SubmitAction::Submit {
            experiment: "fig3".to_string(),
            scale: Some(10),
            seed: None,
            threads: None,
            priority: Some("low".to_string()),
            wait: true,
            timeout_ms: Some(250),
        });
        assert_eq!(
            line,
            r#"{"op":"submit","experiment":"fig3","scale":10,"priority":"low","wait":true,"timeout_ms":250}"#
        );
        assert!(cxlg_serve::proto::parse_request(&line).is_ok());
        let line =
            submit_request_line(&SubmitAction::WaitKey("0123456789abcdef".to_string(), Some(100)));
        assert!(line.contains(r#""timeout_ms":100"#), "{line}");
        assert!(cxlg_serve::proto::parse_request(&line).is_ok());
        let line =
            submit_request_line(&SubmitAction::WaitKey("0123456789abcdef".to_string(), None));
        assert!(cxlg_serve::proto::parse_request(&line).is_ok());
        let line = submit_request_line(&SubmitAction::Shutdown);
        assert_eq!(line, r#"{"op":"shutdown"}"#);
    }

    #[test]
    fn response_exit_codes_track_ok_and_failure() {
        assert_eq!(response_exit_code(r#"{"ok":true}"#), 0);
        assert_eq!(response_exit_code(r#"{"ok":true,"status":"done"}"#), 0);
        assert_eq!(response_exit_code(r#"{"ok":true,"status":"failed"}"#), 1);
        assert_eq!(response_exit_code(r#"{"ok":false,"error":"boom"}"#), 1);
        assert_eq!(
            response_exit_code(r#"{"ok":true,"status":"running","wait_timed_out":true}"#),
            1
        );
        assert_eq!(response_exit_code("garbage"), 1);
    }

    #[test]
    fn resolve_reports_unknown_names() {
        assert!(resolve(&s(&["fig3", "fig6"])).is_ok());
        let Err(err) = resolve(&s(&["fig3", "fig7"])) else {
            panic!("fig7 must not resolve")
        };
        assert!(err.contains("fig7"), "{err}");
        assert!(err.contains("known:"), "{err}");
    }
}
