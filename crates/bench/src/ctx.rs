//! [`ExperimentCtx`] — the environment an [`Experiment`] runs in.
//!
//! The context owns everything the old figure binaries each re-derived
//! from scratch: the simulation scale and seed, the thread count, the
//! results directory, and a process-wide [`GraphCache`] so a campaign
//! builds each dataset exactly once. Experiments receive `&ExperimentCtx`
//! and must route every graph build and result dump through it.
//!
//! [`Experiment`]: crate::experiment::Experiment

use crate::cache::GraphCache;
use cxlg_graph::spec::GraphSpec;
use cxlg_graph::{CsrStorage, SpillConfig, StorageMode};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Shared run environment: scale, seed, thread count, output directory,
/// and the graph cache.
pub struct ExperimentCtx {
    /// log2 of the vertex count (paper: 27).
    pub scale: u32,
    /// Generator seed shared by every dataset.
    pub seed: u64,
    /// Worker threads parallel sweeps run on.
    pub threads: usize,
    /// Directory result JSON is written to.
    pub results_dir: PathBuf,
    cache: Arc<GraphCache>,
    /// Remaining declared consumers per spec (the eviction plan); empty
    /// when no campaign plan was installed, in which case `release` is
    /// a no-op and graphs live for the whole context. A `BTreeMap` so
    /// any future iteration is spec-ordered, not hash-ordered (D1).
    remaining_consumers: Mutex<BTreeMap<GraphSpec, usize>>,
    written: Mutex<Vec<String>>,
}

impl ExperimentCtx {
    /// Context from the environment: `CXLG_SCALE` (default 16),
    /// `CXLG_SEED` (default `0x5EED`), `CXLG_RESULTS_DIR` (default
    /// `target/paper-results`), `CXLG_GRAPH_STORAGE` (default `mem`),
    /// and the rayon pool size. In spill mode the graph spill files live
    /// under `<results_dir>/graph-spill/` (not `.json`, so the result
    /// byte-diff gates never see them) and are deleted as graphs are
    /// evicted or the process exits.
    pub fn from_env() -> Self {
        Self::from_env_with_storage(crate::graph_storage())
    }

    /// [`from_env`](Self::from_env) with an explicit storage backend —
    /// the `cxlg run --graph-storage=` override, which must beat the
    /// environment without mutating it.
    pub fn from_env_with_storage(mode: StorageMode) -> Self {
        let results_dir = crate::results_dir();
        let cache = Arc::new(GraphCache::with_storage(
            mode,
            SpillConfig::new(results_dir.join("graph-spill")),
        ));
        Self::with_cache(
            crate::bench_scale(),
            crate::bench_seed(),
            // cxlg-lint: allow(D6) -- pool size is read once into ctx.threads and recorded in every result header; results are thread-count invariant by the ci.sh byte-diff gate
            rayon::current_num_threads(),
            results_dir,
            cache,
        )
    }

    /// Context with explicit parameters (tests, embedding).
    pub fn new(scale: u32, seed: u64, threads: usize, results_dir: PathBuf) -> Self {
        Self::with_cache(scale, seed, threads, results_dir, Arc::new(GraphCache::new()))
    }

    /// Context sharing an existing graph cache — the campaign service
    /// creates one context per job but must not rebuild a dataset that
    /// another job on the same service already built.
    pub fn with_cache(
        scale: u32,
        seed: u64,
        threads: usize,
        results_dir: PathBuf,
        cache: Arc<GraphCache>,
    ) -> Self {
        std::fs::create_dir_all(&results_dir).expect("create results dir");
        ExperimentCtx {
            scale,
            seed,
            threads,
            results_dir,
            cache,
            remaining_consumers: Mutex::new(BTreeMap::new()),
            written: Mutex::new(Vec::new()),
        }
    }

    /// Run a sweep on this context's configured worker count — the one
    /// knob that sizes both the cross-point fan-out and the within-run
    /// round shards (`cxlg_core::engine::simulate_shards`). Experiments
    /// should route sweeps through here rather than calling
    /// `runner::sweep` directly, so `ctx.threads` is authoritative and
    /// the manifest's recorded thread count matches what actually ran.
    pub fn sweep<P, R, F>(&self, points: Vec<P>, f: F) -> Vec<R>
    where
        P: Send,
        R: Send,
        F: Fn(P) -> R + Sync + Send,
    {
        cxlg_core::runner::sweep_with_threads(self.threads, points, f)
    }

    /// The three paper datasets at this context's scale and seed, in
    /// Table 1 order.
    pub fn paper_datasets(&self) -> [GraphSpec; 3] {
        [
            GraphSpec::urand(self.scale).seed(self.seed),
            GraphSpec::kron(self.scale).seed(self.seed),
            GraphSpec::friendster_like(self.scale).seed(self.seed),
        ]
    }

    /// The graph for `spec`, via the shared cache (built at most once
    /// per spec per context), in whatever storage backend the cache was
    /// configured with.
    pub fn graph(&self, spec: GraphSpec) -> Arc<CsrStorage> {
        self.cache.get(spec)
    }

    /// The storage backend this context's graphs are built into.
    pub fn graph_storage_mode(&self) -> StorageMode {
        self.cache.storage_mode()
    }

    /// `(resident, on-disk)` byte totals over the currently built graphs
    /// (manifest telemetry).
    pub fn graph_storage_bytes(&self) -> (u64, u64) {
        self.cache.storage_bytes()
    }

    /// Per-spec build counts so far (manifest evidence).
    pub fn graph_build_counts(&self) -> Vec<(String, u64)> {
        self.cache.build_counts()
    }

    /// Install the campaign's eviction plan: how many experiments in
    /// the run list declared each spec (via
    /// [`Experiment::specs`](crate::experiment::Experiment::specs)).
    /// The driver computes this before the first experiment runs;
    /// replacing an existing plan resets all remaining counts.
    pub fn plan_graph_consumers(&self, consumers: BTreeMap<GraphSpec, usize>) {
        *self.remaining_consumers.lock().unwrap() = consumers;
    }

    /// Record that one declared consumer of `spec` has finished. When
    /// the last one does, the graph is dropped from the shared cache —
    /// its memory is freed as soon as the final `Arc` clone goes away —
    /// and `true` is returned. Without an installed plan this is a
    /// no-op (single-experiment shims and tests keep whole-context
    /// caching).
    pub fn release(&self, spec: GraphSpec) -> bool {
        let mut remaining = self.remaining_consumers.lock().unwrap();
        match remaining.get_mut(&spec) {
            Some(count) if *count > 1 => {
                *count -= 1;
                false
            }
            Some(_) => {
                remaining.remove(&spec);
                // Hold the plan lock across the eviction so a
                // concurrent release of the same spec cannot double
                // count.
                self.cache.release(&spec)
            }
            None => false,
        }
    }

    /// Per-spec eviction counts so far (manifest evidence, alongside
    /// the build counts).
    pub fn graph_eviction_counts(&self) -> Vec<(String, u64)> {
        self.cache.eviction_counts()
    }

    /// Print the standard experiment header.
    pub fn banner(&self, experiment: &str, description: &str) {
        println!("==============================================================");
        println!("{experiment} — {description}");
        println!(
            "scale 2^{} vertices, seed {:#x} (paper: scale 2^27)",
            self.scale, self.seed
        );
        println!("==============================================================");
    }

    /// Dump a result as JSON under the results directory.
    ///
    /// The file is `{ "header": {experiment, scale, seed, threads},
    /// "series": <value> }` — the header records the run configuration,
    /// the `series` member keeps the exact shape the legacy binaries
    /// wrote at the top level, so ci.sh can byte-diff everything but the
    /// `"threads"` line across pool sizes.
    pub fn dump_json<T: Serialize>(&self, name: &str, value: &T) {
        let wrapped = Value::Map(vec![
            (
                "header".to_string(),
                Value::Map(vec![
                    ("experiment".to_string(), Value::Str(name.to_string())),
                    ("scale".to_string(), Value::U64(self.scale as u64)),
                    ("seed".to_string(), Value::U64(self.seed)),
                    ("threads".to_string(), Value::U64(self.threads as u64)),
                ]),
            ),
            ("series".to_string(), value.to_value()),
        ]);
        let path = self.results_dir.join(format!("{name}.json"));
        let mut f = std::fs::File::create(&path).expect("create result file");
        let s = serde_json::to_string_pretty(&wrapped).expect("serialize result");
        f.write_all(s.as_bytes()).expect("write result file");
        eprintln!("[saved {}]", path.display());
        self.written
            .lock()
            .unwrap()
            .push(path.display().to_string());
    }

    /// Drain the paths dumped since the last call — the driver collects
    /// them into the finishing experiment's report.
    pub fn take_written(&self) -> Vec<String> {
        std::mem::take(&mut self.written.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_ctx(tag: &str) -> ExperimentCtx {
        let dir = std::env::temp_dir().join(format!("cxlg-ctx-test-{tag}-{}", std::process::id()));
        ExperimentCtx::new(8, 1, 2, dir)
    }

    #[test]
    fn datasets_cover_the_paper_trio_at_ctx_scale() {
        let ctx = tmp_ctx("trio");
        let ds = ctx.paper_datasets();
        assert_eq!(ds[0].name(), "urand8");
        assert_eq!(ds[1].name(), "kron8");
        assert_eq!(ds[2].name(), "friendster8");
        assert!(ds.iter().all(|d| d.seed == 1));
    }

    #[test]
    fn graphs_are_cached_per_spec() {
        let ctx = tmp_ctx("cache");
        let spec = ctx.paper_datasets()[0];
        let a = ctx.graph(spec);
        let b = ctx.graph(spec);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            ctx.graph_build_counts(),
            vec![("urand8(deg32)@0x1".to_string(), 1)]
        );
    }

    #[test]
    fn release_evicts_only_after_the_last_declared_consumer() {
        let ctx = tmp_ctx("evict");
        let spec = ctx.paper_datasets()[0];
        ctx.plan_graph_consumers(BTreeMap::from([(spec, 2)]));
        let _g = ctx.graph(spec);
        assert!(!ctx.release(spec), "first of two consumers must not evict");
        assert!(ctx.graph_eviction_counts().is_empty());
        assert!(ctx.release(spec), "last consumer must evict");
        assert_eq!(
            ctx.graph_eviction_counts(),
            vec![("urand8(deg32)@0x1".to_string(), 1)]
        );
        // Releasing past the plan stays inert.
        assert!(!ctx.release(spec));
    }

    #[test]
    fn release_without_a_plan_is_a_no_op() {
        let ctx = tmp_ctx("noplan");
        let spec = ctx.paper_datasets()[0];
        let a = ctx.graph(spec);
        assert!(!ctx.release(spec));
        let b = ctx.graph(spec);
        assert!(Arc::ptr_eq(&a, &b), "graph must survive unplanned release");
    }

    #[test]
    fn dump_json_wraps_series_under_a_header() {
        let ctx = tmp_ctx("dump");
        ctx.dump_json("unit", &vec![1u64, 2, 3]);
        let written = ctx.take_written();
        assert_eq!(written.len(), 1);
        let text = std::fs::read_to_string(&written[0]).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        let Value::Map(top) = &v else { panic!("top level must be a map") };
        assert_eq!(top[0].0, "header");
        assert_eq!(top[1].0, "series");
        let Value::Map(header) = &top[0].1 else { panic!("header must be a map") };
        assert_eq!(
            header
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["experiment", "scale", "seed", "threads"]
        );
        assert_eq!(header[1].1, Value::U64(8));
        assert_eq!(header[3].1, Value::U64(2));
        assert_eq!(top[1].1, Value::Array(vec![
            Value::U64(1),
            Value::U64(2),
            Value::U64(3),
        ]));
        // Drained: a second take sees nothing.
        assert!(ctx.take_written().is_empty());
    }
}
