//! The campaign service glue: the experiment registry as a
//! [`JobBackend`], the `cxlg run --cached` batch mode, and the
//! `cxlg serve` / `cxlg submit` front ends.
//!
//! [`RegistryBackend`] is what turns a [`Job`] into a real experiment
//! run: it resolves the experiment by name, derives the job's graph
//! fingerprints (memoized in `fingerprints.json` under the CAS root, so
//! replay passes never build a graph just to key a cache hit), executes
//! the experiment against a **per-job** [`ExperimentCtx`] whose results
//! directory is a private staging area, and hands the result bytes back
//! to the scheduler for content-addressed publication. All jobs on one
//! backend share one [`GraphCache`], so concurrent jobs over the same
//! dataset build it once.
//!
//! `run_cached_campaign` is the batch mode: the existing campaign run
//! list, routed job by job through the same scheduler + store the
//! service uses. Submission is sequential (submit → wait per
//! experiment) so the graph-cache eviction plan keeps peak RSS bounded
//! exactly as `cxlg run` does; a re-run with a warm store is all cache
//! hits and builds no graphs at all.

use crate::cache::{spec_label, GraphCache};
use crate::ctx::ExperimentCtx;
use crate::experiment::Experiment;
use cxlg_graph::{GraphKind, GraphSpec, SpillConfig, StorageMode};
use cxlg_serve::fault::{FaultInjector, FaultPlan};
use cxlg_serve::job::{Job, Priority};
use cxlg_serve::scheduler::{JobBackend, JobOutput, JobStatus, Scheduler, SchedulerConfig};
use cxlg_serve::store::ResultStore;
use cxlg_serve::JobKey;
use serde::Value;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// [`JobBackend`] over the experiment registry.
pub struct RegistryBackend {
    cache: Arc<GraphCache>,
    staging_root: PathBuf,
    memo_path: PathBuf,
    memo: Mutex<BTreeMap<String, u64>>,
}

impl RegistryBackend {
    /// Backend rooted at `cas_root` (the memo and per-job staging live
    /// under it), sharing `cache` with the caller.
    pub fn new(cas_root: &Path, cache: Arc<GraphCache>) -> std::io::Result<Self> {
        std::fs::create_dir_all(cas_root)?;
        let memo_path = cas_root.join("fingerprints.json");
        let memo = load_memo(&memo_path);
        Ok(RegistryBackend {
            cache,
            staging_root: cas_root.join(".staging"),
            memo_path,
            memo: Mutex::new(memo),
        })
    }

    /// A context carrying the job's parameters for spec resolution and
    /// (with a per-job results dir) execution.
    fn ctx_for(&self, job: &Job, results_dir: PathBuf) -> ExperimentCtx {
        ExperimentCtx::with_cache(
            job.scale,
            job.seed,
            job.threads,
            results_dir,
            Arc::clone(&self.cache),
        )
    }

    /// The specs `job` will consume (for eviction planning).
    pub fn specs_for(&self, job: &Job) -> Result<Vec<GraphSpec>, String> {
        let exp = crate::registry::find(&job.experiment)
            .ok_or_else(|| format!("unknown experiment `{}`", job.experiment))?;
        let ctx = self.ctx_for(job, self.staging_root.join("probe"));
        Ok(exp.specs(&ctx))
    }

    /// The shared graph cache (eviction hooks for batch mode).
    pub fn cache(&self) -> &Arc<GraphCache> {
        &self.cache
    }
}

/// Estimated working-set bytes for building `spec`'s CSR: ~8 B per
/// directed arc (4 B target + construction slack) plus 8 B per vertex
/// of offsets. Deliberately coarse — the admission gate only needs the
/// right order of magnitude, and over-estimating defers rather than
/// breaks (the gate always admits onto an idle pool).
pub fn spec_admission_bytes(spec: &GraphSpec) -> u64 {
    let vertices = 1u64 << spec.scale.min(63);
    let arcs = match spec.kind {
        GraphKind::Uniform { avg_degree } => vertices.saturating_mul(avg_degree as u64),
        // Kronecker symmetrizes: edge_factor undirected edges per
        // vertex become two directed arcs each.
        GraphKind::Kronecker { edge_factor } => {
            vertices.saturating_mul(2 * edge_factor as u64)
        }
        GraphKind::Social { avg_degree } => vertices.saturating_mul(avg_degree as u64),
    };
    arcs.saturating_mul(8).saturating_add(vertices.saturating_mul(8))
}

/// [`spec_admission_bytes`] generalized over the storage backend. A
/// spill-mode graph keeps only the offsets resident (8 B/vertex) plus
/// the backend's fixed overhead — the page cache and the builder's
/// per-segment working set — so its estimate is independent of the arc
/// count and far below the mem-mode figure for any non-trivial graph.
/// That is the point: a memory budget that would defer a mem-mode job
/// admits the same job in spill mode.
pub fn spec_admission_bytes_for(spec: &GraphSpec, mode: StorageMode, spill: &SpillConfig) -> u64 {
    match mode {
        StorageMode::Mem => spec_admission_bytes(spec),
        StorageMode::Spill => {
            let vertices = 1u64 << spec.scale.min(63);
            vertices
                .saturating_mul(8)
                .saturating_add(spill.resident_overhead_bytes())
        }
    }
}

impl JobBackend for RegistryBackend {
    /// `(spec label, Csr::fingerprint)` per distinct spec the job's
    /// experiment declares. Fingerprints are memoized by spec label —
    /// a fingerprint is a pure function of the (deterministic) spec —
    /// and the memo is persisted beside the CAS entries, so a warm
    /// store resolves keys without building anything.
    fn fingerprints(&self, job: &Job) -> Result<Vec<(String, u64)>, String> {
        let specs = self.specs_for(job)?;
        let mut out: Vec<(String, u64)> = Vec::new();
        let mut memo = self.memo.lock().unwrap();
        let mut dirty = false;
        for spec in specs {
            let label = spec_label(&spec);
            if out.iter().any(|(l, _)| *l == label) {
                continue;
            }
            let fp = match memo.get(&label) {
                Some(fp) => *fp,
                None => {
                    let fp = self.cache.get(spec).fingerprint();
                    memo.insert(label.clone(), fp);
                    dirty = true;
                    fp
                }
            };
            out.push((label, fp));
        }
        if dirty {
            persist_memo(&self.memo_path, &memo)
                .map_err(|e| format!("persist fingerprint memo: {e}"))?;
        }
        Ok(out)
    }

    /// Run the experiment in a private staging directory and return its
    /// result bytes. The staging directory is removed afterwards — the
    /// CAS entry is the only durable copy; clients materialize from it.
    fn execute(&self, key: &JobKey, job: &Job) -> Result<JobOutput, String> {
        let exp = crate::registry::find(&job.experiment)
            .ok_or_else(|| format!("unknown experiment `{}`", job.experiment))?;
        let staging = self.staging_root.join(format!("job-{}", key.as_str()));
        let _ = std::fs::remove_dir_all(&staging);
        let ctx = self.ctx_for(job, staging.clone());
        let report = exp.run(&ctx);
        let mut files = Vec::with_capacity(report.result_files.len());
        for path in &report.result_files {
            let p = PathBuf::from(path);
            let name = p
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| format!("unnameable result file `{path}`"))?
                .to_string();
            let bytes = std::fs::read(&p).map_err(|e| format!("read result `{path}`: {e}"))?;
            files.push((name, bytes));
        }
        let _ = std::fs::remove_dir_all(&staging);
        Ok(JobOutput { files })
    }

    /// Estimated peak working set: the sum over the job's distinct
    /// graph specs (the eviction plan holds each until its last
    /// consumer, so concurrent specs are the honest bound). Jobs whose
    /// experiment does not resolve estimate 0 — they fail at
    /// fingerprint time anyway, before admission matters.
    fn admission_bytes(&self, job: &Job) -> u64 {
        let Ok(specs) = self.specs_for(job) else { return 0 };
        let mode = self.cache.storage_mode();
        let spill = self.cache.spill_config();
        let mut seen: Vec<GraphSpec> = Vec::new();
        let mut total = 0u64;
        for spec in specs {
            if seen.contains(&spec) {
                continue;
            }
            total = total.saturating_add(spec_admission_bytes_for(&spec, mode, spill));
            seen.push(spec);
        }
        total
    }
}

fn load_memo(path: &Path) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    // A damaged memo is discarded wholesale: fingerprints are cheap to
    // recompute and a partial table cannot corrupt keys (they are
    // re-derived from the same pure function either way).
    let Ok(Value::Map(map)) = serde_json::from_str::<Value>(&text) else {
        return out;
    };
    for (label, v) in map {
        match v {
            Value::U64(fp) => {
                out.insert(label, fp);
            }
            Value::I64(fp) if fp >= 0 => {
                out.insert(label, fp as u64);
            }
            _ => return BTreeMap::new(),
        }
    }
    out
}

fn persist_memo(path: &Path, memo: &BTreeMap<String, u64>) -> std::io::Result<()> {
    // BTreeMap iteration gives label-sorted, byte-stable output; the
    // write is staged + renamed like every other service artifact.
    let v = Value::Map(
        memo.iter()
            .map(|(label, fp)| (label.clone(), Value::U64(*fp)))
            .collect(),
    );
    let text = serde_json::to_string_pretty(&v).expect("serialize fingerprint memo");
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
    }
    std::fs::rename(&tmp, path)
}

/// One experiment's outcome in a cached campaign run.
#[derive(Debug, Clone)]
pub struct CachedReport {
    /// Experiment name.
    pub name: String,
    /// The job's content key.
    pub key: String,
    /// Whether the result came from the store.
    pub cache_hit: bool,
    /// Job wall-clock (ms) — telemetry.
    pub wall_ms: f64,
    /// Whether the job failed.
    pub failed: bool,
    /// Backend error for failed jobs.
    pub error: Option<String>,
    /// Result files materialized under the campaign results directory.
    pub result_files: Vec<String>,
}

/// What a cached campaign produced.
#[derive(Debug, Clone)]
pub struct CachedOutcome {
    /// One report per experiment, in run order.
    pub reports: Vec<CachedReport>,
    /// Names of failed experiments.
    pub failed: Vec<String>,
    /// Per-spec graph build counts (empty on a fully warm store).
    pub graph_builds: Vec<(String, u64)>,
    /// Per-spec graph eviction counts.
    pub graph_evictions: Vec<(String, u64)>,
    /// Jobs served from the store.
    pub cache_hits: u64,
    /// Jobs that executed fresh.
    pub cache_misses: u64,
}

/// Robustness knobs for a cached campaign (`cxlg run --cached`).
/// [`Default`] injects no faults, allows one attempt per job, and sets
/// no store budget — exactly the pre-chaos behaviour.
#[derive(Debug, Clone, Default)]
pub struct CachedOptions {
    /// Fault-plan spec ([`FaultPlan::parse`] grammar) for chaos runs;
    /// `None` injects nothing.
    pub fault_plan: Option<String>,
    /// Seed for the injector's deterministic corruption choices.
    pub fault_seed: u64,
    /// Execution attempts per job before `Failed` (clamped to ≥ 1 by
    /// the scheduler).
    pub max_attempts: u64,
    /// Store byte budget: GC after every publication keeps the CAS at
    /// or below this. `None` disables.
    pub cas_max_bytes: Option<u64>,
    /// Graph storage backend override; `None` falls back to
    /// `CXLG_GRAPH_STORAGE` / mem. Result bytes are backend-invariant,
    /// so a warm store primed in one mode stays valid in the other.
    pub graph_storage: Option<StorageMode>,
}

/// How many extra submit rounds `run_cached_campaign` grants a job
/// whose `Done` entry fails materialization (poisoned store entry) or
/// times out: resubmission re-arms the key and re-executes, so one
/// round heals any single corruption and a second absorbs a fault
/// injected into the healing run itself.
const HEAL_ROUNDS: usize = 2;

/// Run `exps` through the scheduler + content-addressed store,
/// materializing each job's result files into `results_dir` (bytes
/// verbatim from the store, so a cached campaign is byte-identical to a
/// fresh one). Jobs run one at a time in list order — the same ordering
/// and graph-eviction behaviour as `cxlg run` — against the store under
/// `cas_root`, which persists across invocations.
///
/// With a fault plan in `opts` the run becomes a chaos campaign: the
/// injector fires the planned faults, the scheduler retries within
/// `max_attempts`, and the heal loop resubmits jobs whose published
/// entry turns out poisoned — the campaign must converge to the same
/// bytes as a fault-free run or report the experiment failed. A
/// `service-stats.json` snapshot (retries, quarantines, faults fired)
/// is left beside the results for the CI replay gate.
pub fn run_cached_campaign(
    scale: u32,
    seed: u64,
    threads: usize,
    results_dir: &Path,
    cas_root: &Path,
    exps: &[&dyn Experiment],
    manifest_path: Option<&Path>,
    opts: &CachedOptions,
) -> Result<CachedOutcome, String> {
    std::fs::create_dir_all(results_dir).map_err(|e| format!("create results dir: {e}"))?;
    let storage = opts.graph_storage.unwrap_or_else(crate::graph_storage);
    let cache = Arc::new(GraphCache::with_storage(
        storage,
        SpillConfig::new(results_dir.join("graph-spill")),
    ));
    let backend = Arc::new(
        RegistryBackend::new(cas_root, Arc::clone(&cache))
            .map_err(|e| format!("open CAS root: {e}"))?,
    );
    let faults = match &opts.fault_plan {
        Some(spec) => {
            let plan = FaultPlan::parse(spec).map_err(|e| format!("fault plan: {e}"))?;
            Some(Arc::new(FaultInjector::new(opts.fault_seed, plan)))
        }
        None => None,
    };
    let mut store = ResultStore::new(cas_root).map_err(|e| format!("open result store: {e}"))?;
    if let Some(f) = &faults {
        store = store.with_faults(Arc::clone(f));
    }

    // Eviction plan, exactly as `run_experiments` computes it: how many
    // experiments in this run list consume each spec.
    let mut remaining: BTreeMap<GraphSpec, usize> = BTreeMap::new();
    let jobs: Vec<Job> = exps
        .iter()
        .map(|exp| Job {
            experiment: exp.name().to_string(),
            scale,
            seed,
            threads,
        })
        .collect();
    for job in &jobs {
        for spec in backend.specs_for(job).unwrap_or_default() {
            *remaining.entry(spec).or_insert(0) += 1;
        }
    }

    let sched = Scheduler::with_config(
        store,
        Arc::clone(&backend) as Arc<dyn JobBackend>,
        SchedulerConfig {
            workers: 1,
            max_attempts: opts.max_attempts,
            cas_max_bytes: opts.cas_max_bytes,
            faults: faults.clone(),
            ..SchedulerConfig::default()
        },
    );
    let mut reports = Vec::with_capacity(exps.len());
    let mut failed = Vec::new();
    for (exp, job) in exps.iter().zip(jobs) {
        println!("\n################ {} ################\n", exp.name());
        let specs = backend.specs_for(&job).unwrap_or_default();
        // The heal loop: a `Done` whose store entry fails its
        // materialization probe is poisoned (e.g. injected corruption
        // landed after publication) — resubmitting re-validates the
        // entry, quarantines it, re-arms the key, and re-executes.
        // Bounded so a hostile fault plan cannot loop forever.
        let mut snap = None;
        let mut hit = None;
        for _round in 0..=HEAL_ROUNDS {
            let outcome = sched.submit(job.clone(), Priority::Normal)?;
            let s = sched
                .wait(&outcome.key)
                .ok_or_else(|| format!("job for `{}` vanished", exp.name()))?;
            let is_done = s.status == JobStatus::Done;
            let timed_out = s.status == JobStatus::TimedOut;
            snap = Some(s);
            if is_done {
                hit = sched.store().probe(&snap.as_ref().unwrap().key);
                if hit.is_some() {
                    break;
                }
                eprintln!("[{}: poisoned store entry, re-executing]", exp.name());
            } else if !timed_out {
                break; // Failed: the retry budget is already spent.
            }
        }
        let snap = snap.expect("at least one heal round ran");
        let healthy = hit.is_some();
        let mut result_files = Vec::new();
        match hit {
            Some(hit) => {
                for (name, bytes) in &hit.files {
                    let path = results_dir.join(name);
                    std::fs::write(&path, bytes)
                        .map_err(|e| format!("materialize `{name}`: {e}"))?;
                    eprintln!(
                        "[{} {}]",
                        if snap.cache_hit { "cache-hit" } else { "saved" },
                        path.display()
                    );
                    result_files.push(path.display().to_string());
                }
            }
            None => {
                eprintln!("[{} FAILED]", exp.name());
                failed.push(exp.name().to_string());
            }
        }
        reports.push(CachedReport {
            name: exp.name().to_string(),
            key: snap.key.as_str().to_string(),
            cache_hit: snap.cache_hit,
            wall_ms: snap.wall_ms,
            failed: !healthy,
            error: snap.error.clone(),
            result_files,
        });
        // This experiment's graphs are done with; evict any whose last
        // consumer this was (cache hits consume no graphs, but the plan
        // counted them — decrement either way so the plan drains).
        for spec in specs {
            let evict = match remaining.get_mut(&spec) {
                Some(count) if *count > 1 => {
                    *count -= 1;
                    false
                }
                Some(_) => {
                    remaining.remove(&spec);
                    true
                }
                None => false,
            };
            if evict && cache.release(&spec) {
                eprintln!("[evicted {} from the graph cache]", spec.name());
            }
        }
    }
    let stats = sched.stats();
    // Byte-stable (modulo the wall-clock / RSS telemetry exemptions)
    // snapshot of the run's service counters: retries, quarantines,
    // faults fired, evictions. ci.sh's chaos gate replays a campaign
    // from the same `(seed, plan)` and diffs this file.
    let stats_path = results_dir.join("service-stats.json");
    std::fs::write(&stats_path, stats.render_json())
        .map_err(|e| format!("write service stats: {e}"))?;
    eprintln!("[service stats {}]", stats_path.display());
    let outcome = CachedOutcome {
        reports,
        failed,
        graph_builds: cache.build_counts(),
        graph_evictions: cache.eviction_counts(),
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
    };
    println!(
        "\n{} of {} experiment(s) done ({} cache hit(s), {} fresh). JSON in {}.",
        outcome.reports.len() - outcome.failed.len(),
        outcome.reports.len(),
        outcome.cache_hits,
        outcome.cache_misses,
        results_dir.display()
    );
    if !outcome.failed.is_empty() {
        eprintln!("\nFAILED: {:?}", outcome.failed);
    }
    if let Some(path) = manifest_path {
        write_cached_manifest(scale, seed, threads, storage, results_dir, cas_root, &outcome, path)
            .map_err(|e| format!("write manifest: {e}"))?;
    }
    Ok(outcome)
}

/// The cached-campaign manifest: run configuration plus, per
/// experiment, the job key and hit/miss evidence — `wall_ms` is the one
/// exempt telemetry field, as in the plain campaign manifest.
#[allow(clippy::too_many_arguments)]
fn write_cached_manifest(
    scale: u32,
    seed: u64,
    threads: usize,
    storage: StorageMode,
    results_dir: &Path,
    cas_root: &Path,
    outcome: &CachedOutcome,
    path: &Path,
) -> std::io::Result<()> {
    let experiments = outcome
        .reports
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("name".to_string(), Value::Str(r.name.clone())),
                ("key".to_string(), Value::Str(r.key.clone())),
                ("cache_hit".to_string(), Value::Bool(r.cache_hit)),
                ("wall_ms".to_string(), Value::F64(r.wall_ms)),
                ("failed".to_string(), Value::Bool(r.failed)),
                (
                    "result_files".to_string(),
                    Value::Array(r.result_files.iter().map(|f| Value::Str(f.clone())).collect()),
                ),
            ];
            if let Some(err) = &r.error {
                fields.push(("error".to_string(), Value::Str(err.clone())));
            }
            Value::Map(fields)
        })
        .collect();
    let count_table = |counts: &[(String, u64)], field: &str| {
        Value::Array(
            counts
                .iter()
                .map(|(spec, n)| {
                    Value::Map(vec![
                        ("spec".to_string(), Value::Str(spec.clone())),
                        (field.to_string(), Value::U64(*n)),
                    ])
                })
                .collect(),
        )
    };
    let manifest = Value::Map(vec![
        ("scale".to_string(), Value::U64(scale as u64)),
        ("seed".to_string(), Value::U64(seed)),
        ("threads".to_string(), Value::U64(threads as u64)),
        (
            "graph_storage".to_string(),
            Value::Str(storage.label().to_string()),
        ),
        (
            "results_dir".to_string(),
            Value::Str(results_dir.display().to_string()),
        ),
        (
            "cas_root".to_string(),
            Value::Str(cas_root.display().to_string()),
        ),
        ("cache_hits".to_string(), Value::U64(outcome.cache_hits)),
        ("cache_misses".to_string(), Value::U64(outcome.cache_misses)),
        ("experiments".to_string(), Value::Array(experiments)),
        (
            "graph_builds".to_string(),
            count_table(&outcome.graph_builds, "builds"),
        ),
        (
            "graph_evictions".to_string(),
            count_table(&outcome.graph_evictions, "evictions"),
        ),
    ]);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let s = serde_json::to_string_pretty(&manifest).expect("serialize cached manifest");
    std::fs::write(path, s.as_bytes())?;
    eprintln!("[manifest {}]", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_round_trips_and_discards_damage() {
        let dir = std::env::temp_dir().join(format!("cxlg-memo-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fingerprints.json");
        let memo = BTreeMap::from([
            ("kron8(ef16)@0x1".to_string(), 0xABCD_u64),
            ("urand8(deg32)@0x1".to_string(), u64::MAX),
        ]);
        persist_memo(&path, &memo).unwrap();
        assert_eq!(load_memo(&path), memo);
        // Byte-stable across rewrites.
        let first = std::fs::read(&path).unwrap();
        persist_memo(&path, &memo).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), first);
        // Damage is discarded wholesale, not half-parsed.
        std::fs::write(&path, "{\"x\": \"nope\"}").unwrap();
        assert!(load_memo(&path).is_empty());
        std::fs::write(&path, "not json").unwrap();
        assert!(load_memo(&path).is_empty());
        assert!(load_memo(&dir.join("missing.json")).is_empty());
    }

    #[test]
    fn backend_memoizes_fingerprints_across_instances() {
        let dir = std::env::temp_dir().join(format!("cxlg-backend-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let job = Job {
            experiment: "fig3".to_string(),
            scale: 8,
            seed: 1,
            threads: 1,
        };
        let cache = Arc::new(GraphCache::new());
        let backend = RegistryBackend::new(&dir, Arc::clone(&cache)).unwrap();
        let fps = backend.fingerprints(&job).unwrap();
        assert!(!fps.is_empty(), "fig3 must declare graph inputs");
        assert!(!cache.build_counts().is_empty(), "cold memo builds to fingerprint");
        // A fresh backend + cache resolves from the persisted memo
        // without building anything.
        let cache2 = Arc::new(GraphCache::new());
        let backend2 = RegistryBackend::new(&dir, Arc::clone(&cache2)).unwrap();
        assert_eq!(backend2.fingerprints(&job).unwrap(), fps);
        assert!(cache2.build_counts().is_empty(), "warm memo must not build");
    }

    #[test]
    fn admission_estimates_scale_with_the_declared_specs() {
        // 2^10 vertices: urand (deg 32) ≈ 32 Ki arcs · 8 B + 8 KiB of
        // offsets; kron (ef 16) symmetrizes to the same arc count.
        let urand = spec_admission_bytes(&GraphSpec::urand(10));
        assert_eq!(urand, (1024 * 32) * 8 + 1024 * 8);
        assert_eq!(spec_admission_bytes(&GraphSpec::kron(10)), urand);
        let social = spec_admission_bytes(&GraphSpec::friendster_like(10));
        assert!(social > urand, "degree 55 must estimate above degree 32");
        // Monotone in scale, and huge scales saturate instead of
        // overflowing.
        assert!(spec_admission_bytes(&GraphSpec::urand(12)) > urand);
        assert_eq!(spec_admission_bytes(&GraphSpec::urand(63)), u64::MAX);

        // The backend sums distinct specs; an unknown experiment
        // estimates 0 (it fails before admission matters).
        let dir = std::env::temp_dir().join(format!("cxlg-admission-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = RegistryBackend::new(&dir, Arc::new(GraphCache::new())).unwrap();
        let job = Job {
            experiment: "fig3".to_string(),
            scale: 8,
            seed: 1,
            threads: 1,
        };
        assert!(backend.admission_bytes(&job) > 0);
        let unknown = Job {
            experiment: "frobnicate".to_string(),
            ..job
        };
        assert_eq!(backend.admission_bytes(&unknown), 0);
    }

    #[test]
    fn spill_admission_estimates_shrink_and_admit_under_mem_budgets() {
        // urand18: mem estimates arcs·8 + vertices·8 ≈ 69 MB; spill
        // estimates vertices·8 + the fixed backend overhead ≈ 28 MB.
        let spec = GraphSpec::urand(18);
        let spill_cfg = SpillConfig::new(std::env::temp_dir().join("unused"));
        let mem = spec_admission_bytes_for(&spec, StorageMode::Mem, &spill_cfg);
        let spill = spec_admission_bytes_for(&spec, StorageMode::Spill, &spill_cfg);
        assert_eq!(mem, spec_admission_bytes(&spec), "mem formula is unchanged");
        assert_eq!(
            spill,
            (1u64 << 18) * 8 + spill_cfg.resident_overhead_bytes(),
            "spill keeps offsets resident plus fixed overhead"
        );
        assert!(
            spill < mem / 2,
            "spill estimate must shrink well below mem ({spill} vs {mem})"
        );
        // A budget between the two estimates defers the mem-mode job
        // but admits the same job in spill mode (the scheduler's
        // admission gate is `estimate <= budget`).
        let budget = (spill + mem) / 2;
        assert!(spill <= budget && mem > budget);

        // The backend reports the shrunken estimate when its shared
        // cache is configured for spill.
        let dir = std::env::temp_dir().join(format!("cxlg-admission-sp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let job = Job {
            experiment: "fig3".to_string(),
            scale: 18,
            seed: 1,
            threads: 1,
        };
        let mem_backend = RegistryBackend::new(&dir, Arc::new(GraphCache::new())).unwrap();
        let spill_backend = RegistryBackend::new(
            &dir,
            Arc::new(GraphCache::with_storage(
                StorageMode::Spill,
                SpillConfig::new(dir.join("graph-spill")),
            )),
        )
        .unwrap();
        let mem_est = mem_backend.admission_bytes(&job);
        let spill_est = spill_backend.admission_bytes(&job);
        assert!(spill_est > 0 && spill_est < mem_est);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_experiments_fail_fingerprinting() {
        let dir = std::env::temp_dir().join(format!("cxlg-backend-unk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = RegistryBackend::new(&dir, Arc::new(GraphCache::new())).unwrap();
        let job = Job {
            experiment: "frobnicate".to_string(),
            scale: 8,
            seed: 1,
            threads: 1,
        };
        assert!(backend.fingerprints(&job).is_err());
    }
}
