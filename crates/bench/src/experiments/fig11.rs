//! Figure 11: BFS and SSSP runtimes on CXL memory with varying added
//! latency, normalized per-dataset by the host-DRAM runtime — the paper's
//! headline result (Observation 2): identical performance while the CXL
//! latency stays under ~2 µs on Gen3.

use crate::ctx::ExperimentCtx;
use crate::good_source;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Figure 11";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "BFS/SSSP on CXL memory vs latency, normalized by host DRAM (Gen3 x16, 5 devices)";

#[derive(Serialize)]
struct Point {
    workload: &'static str,
    dataset: String,
    added_latency_us: f64,
    normalized_runtime: f64,
}

/// Graph specs consumed — all three paper datasets (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    ctx.paper_datasets().to_vec()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let datasets = ctx.paper_datasets();
    let added = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];

    // One host-DRAM baseline per (dataset, workload) pair, hoisted out
    // of the latency sweep — each baseline is a full traversal, and the
    // seven latency points all divide by the same one.
    let pairs: Vec<(usize, &'static str)> = (0..3)
        .flat_map(|i| [(i, "BFS"), (i, "SSSP")])
        .collect();
    let baselines: Vec<f64> = ctx.sweep(pairs.clone(), |(i, workload)| {
        let g = ctx.graph(datasets[i]);
        let src = good_source(&g);
        let trav = match workload {
            "BFS" => Traversal::bfs(src),
            _ => Traversal::sssp(src),
        };
        trav.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen3))
            .metrics
            .runtime
            .as_secs_f64()
    });

    let jobs: Vec<(usize, &'static str, f64, f64)> = pairs
        .into_iter()
        .zip(baselines)
        .flat_map(|((i, w), base)| added.into_iter().map(move |a| (i, w, base, a)))
        .collect();

    let points: Vec<Point> = ctx.sweep(jobs, |(i, workload, base, add)| {
        let spec = datasets[i];
        let g = ctx.graph(spec);
        let src = good_source(&g);
        let trav = match workload {
            "BFS" => Traversal::bfs(src),
            _ => Traversal::sssp(src),
        };
        let cxl = trav.run(
            &g,
            &SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(add),
        );
        Point {
            workload,
            dataset: spec.name(),
            added_latency_us: add,
            normalized_runtime: cxl.metrics.runtime.as_secs_f64() / base,
        }
    });

    for workload in ["BFS", "SSSP"] {
        println!("\n{workload}");
        print!("{:<16}", "added [us]:");
        for a in added {
            print!("{a:>8.1}");
        }
        println!();
        for spec in &datasets {
            print!("{:<16}", spec.name());
            for a in added {
                let p = points
                    .iter()
                    .find(|p| {
                        p.workload == workload
                            && p.dataset == spec.name()
                            && p.added_latency_us == a
                    })
                    .unwrap();
                print!("{:>8.2}", p.normalized_runtime);
            }
            println!();
        }
    }
    println!();
    println!(
        "Paper: normalized runtime ~1.0 while CXL latency stays under \
         ~1.91 us (the Gen3 allowance), rising beyond it."
    );
    ctx.dump_json("fig11", &points);
}
