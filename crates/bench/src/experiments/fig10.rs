//! Figure 10: throughput and outstanding-read count of one CXL memory
//! prototype under CPU-issued 64 B random reads, for varying additional
//! latency (§4.2.2).

use crate::ctx::ExperimentCtx;
use cxlg_core::microbench::{cxl_cpu_random_read, CxlReadResult};
use cxlg_core::runner::sweep;
use cxlg_device::cxl_mem::CxlMemConfig;

/// Banner title.
pub const TITLE: &str = "Figure 10";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "CXL prototype bandwidth & outstanding reads vs additional latency";

/// Graph specs consumed — none; this experiment builds no graphs
/// (cache-eviction planning; see
/// [`crate::experiment::Experiment::specs`]).
pub fn specs(_ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    Vec::new()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let added: Vec<f64> = (0..=10).map(|i| i as f64).collect();
    let results: Vec<CxlReadResult> = sweep(added, |us| {
        cxl_cpu_random_read(
            CxlMemConfig::default().with_added_latency_us(us),
            1 << 30,
            60_000,
            512,
            7,
        )
    });

    println!(
        "{:>12} {:>16} {:>16} {:>14}",
        "Added [us]", "Thruput [MB/s]", "Latency [us]", "Outstanding"
    );
    for r in &results {
        println!(
            "{:>12.0} {:>16.0} {:>16.2} {:>14.1}",
            r.added_latency_us, r.throughput_mb_per_sec, r.latency_us, r.outstanding
        );
    }
    println!();
    println!(
        "Paper: capped at ~5,700 MB/s by the single DRAM channel, decaying \
         once the 128 device tags bind; outstanding saturates at 128."
    );
    ctx.dump_json("fig10", &results);
}
