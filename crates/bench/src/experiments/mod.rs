//! Experiment implementations — one module per paper figure, table, or
//! extension study, each exposing `TITLE`, `DESC`, and
//! `run(&ExperimentCtx)` and registered in [`crate::registry`].
//!
//! These are the bodies of the former standalone binaries under
//! `src/bin/`; the binaries remain as shims that invoke the registry.
//! Stdout and the JSON `series` member are unchanged from the
//! standalone era.

pub mod ablation;
pub mod cc_study;
pub mod device_scaling;
pub mod eqcheck;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig9;
pub mod pagerank_study;
pub mod reorder_study;
pub mod table1;
pub mod table2;
pub mod uvm_compare;
pub mod write_study;
