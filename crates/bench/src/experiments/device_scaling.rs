//! New-workload experiment: CXL device-count scaling past the paper's
//! five-expander configuration.
//!
//! §4.2.2 sizes the prototype at five CXL devices so the pooled device
//! tags exceed the link's Nmax; the ROADMAP asks how far interleaving
//! scales beyond that. This experiment runs BFS/urand on CXL memory at
//! growing device counts on Gen3 and Gen4, normalized per-generation by
//! EMOGI on host DRAM, exposing where extra devices stop buying runtime
//! (the link, not the device pool, becomes the binding constraint).

use crate::ctx::ExperimentCtx;
use cxlg_core::runner::sweep;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Device scaling (extension)";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "BFS/urand on CXL memory vs device count (Gen3 & Gen4), normalized by host DRAM";

/// Device counts: through the paper's 5 and well past it.
const DEVICE_COUNTS: [u32; 8] = [1, 2, 3, 4, 5, 8, 12, 16];

#[derive(Serialize)]
struct Point {
    gen: String,
    devices: u32,
    normalized_runtime: f64,
    runtime_ms: f64,
}

/// Graph specs consumed — the urand dataset only (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    vec![ctx.paper_datasets()[0]]
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let spec = ctx.paper_datasets()[0];
    let g = ctx.graph(spec);
    let bfs = Traversal::bfs(0);

    // One host-DRAM baseline per generation, not per sweep point — at
    // paper scale a single BFS simulation is minutes of work.
    let gens = [PcieGen::Gen3, PcieGen::Gen4];
    let bases: Vec<f64> = sweep(gens.to_vec(), |gen| {
        bfs.run(&g, &SystemConfig::emogi_on_dram(gen))
            .metrics
            .runtime
            .as_secs_f64()
    });

    let jobs: Vec<(PcieGen, f64, u32)> = gens
        .into_iter()
        .zip(bases)
        .flat_map(|(gen, base)| DEVICE_COUNTS.into_iter().map(move |d| (gen, base, d)))
        .collect();
    let points: Vec<Point> = sweep(jobs, |(gen, base, devices)| {
        let r = bfs.run(&g, &SystemConfig::emogi_on_cxl(gen, devices));
        Point {
            gen: format!("{gen:?}"),
            devices,
            normalized_runtime: r.metrics.runtime.as_secs_f64() / base,
            runtime_ms: r.metrics.runtime.as_secs_f64() * 1e3,
        }
    });

    for gen in ["Gen3", "Gen4"] {
        println!("\n{gen} x16 (paper config: 5 devices)");
        println!("{:>10} {:>14} {:>12}", "Devices", "t/t_DRAM", "t [ms]");
        for p in points.iter().filter(|p| p.gen == gen) {
            println!(
                "{:>10} {:>14.2} {:>12.3}",
                p.devices, p.normalized_runtime, p.runtime_ms
            );
        }
    }
    println!();
    println!(
        "Expectation: normalized runtime falls toward 1.0 as pooled tags \
         pass Nmax (paper: five devices suffice), then flattens — the link \
         is the binding constraint, so further devices are headroom, not speed."
    );
    ctx.dump_json("device_scaling", &points);
}
