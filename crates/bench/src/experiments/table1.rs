//! Table 1: graph datasets — vertex/edge counts, edge-list size, and
//! average degree (sublist size) over non-isolated vertices.

use crate::ctx::ExperimentCtx;
use cxlg_graph::stats::DegreeStats;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Table 1";
/// One-line summary (registry + banner).
pub const DESC: &str = "Graph datasets";

#[derive(Serialize)]
struct Row {
    name: String,
    stats: DegreeStats,
}

/// Graph specs consumed — all three paper datasets (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    ctx.paper_datasets().to_vec()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>7} {:>11}",
        "Dataset", "Vertices", "Edges", "(size)", "AvgDeg", "(sublist)"
    );
    let mut rows = Vec::new();
    for spec in ctx.paper_datasets() {
        let g = ctx.graph(spec);
        let stats = DegreeStats::compute(&g);
        println!("{}", stats.table1_row(&spec.name()));
        rows.push(Row {
            name: spec.name(),
            stats,
        });
    }
    println!();
    println!(
        "Paper (scale 27): urand27 32.0 (256.0 B), kron27 67.0 (536.0 B), \
         Friendster 55.1 (440.8 B); shapes should match at scale {}.",
        ctx.scale
    );
    ctx.dump_json("table1", &rows);
}
