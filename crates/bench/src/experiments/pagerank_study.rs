//! New-workload experiment: PageRank through the three access methods.
//!
//! The Discussion section contrasts the paper's fine-grained random
//! access workloads (BFS/SSSP) with sequential-sweep algorithms like
//! PageRank, which Graphene-style systems run well even at large block
//! sizes. This experiment quantifies that contrast on the simulator:
//! full-edge-list PageRank sweeps over the three paper datasets, run
//! through EMOGI zero-copy on host DRAM (baseline), XLFDD direct access
//! at 16 B, and the BaM software cache at 4 kB — the same three access
//! methods as Fig. 6, so the two tables can be read side by side.

use crate::ctx::ExperimentCtx;
use cxlg_core::runner::{geometric_mean, sweep};
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "PageRank study (extension)";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "PageRank via the three access methods, normalized by EMOGI (sequential-sweep contrast to Fig. 6)";

/// Full-edge-list sweeps per run. The access pattern repeats every
/// iteration, so a handful is enough to dominate per-level setup cost.
const ITERATIONS: u32 = 4;

#[derive(Serialize)]
struct Row {
    dataset: String,
    emogi_ms: f64,
    xlfdd_normalized: f64,
    bam_normalized: f64,
    xlfdd_raf: f64,
    bam_raf: f64,
}

/// Graph specs consumed — all three paper datasets (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    ctx.paper_datasets().to_vec()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let datasets = ctx.paper_datasets();
    let pr = Traversal::pagerank(ITERATIONS);

    let rows: Vec<Row> = sweep((0..3).collect(), |i| {
        let spec = datasets[i];
        let g = ctx.graph(spec);
        let emogi = pr.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
        let base = emogi.metrics.runtime.as_secs_f64();
        let xl = pr.run(&g, &SystemConfig::xlfdd(PcieGen::Gen4, 16));
        let bam = pr.run(&g, &SystemConfig::bam_on_nvme(PcieGen::Gen4, 4));
        Row {
            dataset: spec.name(),
            emogi_ms: base * 1e3,
            xlfdd_normalized: xl.metrics.runtime.as_secs_f64() / base,
            bam_normalized: bam.metrics.runtime.as_secs_f64() / base,
            xlfdd_raf: xl.metrics.raf(),
            bam_raf: bam.metrics.raf(),
        }
    });

    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "Dataset", "EMOGI [ms]", "XLFDD", "BaM", "RAF xlfdd", "RAF bam"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12.3} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            r.dataset, r.emogi_ms, r.xlfdd_normalized, r.bam_normalized, r.xlfdd_raf, r.bam_raf
        );
    }
    let xl_geo = geometric_mean(&rows.iter().map(|r| r.xlfdd_normalized).collect::<Vec<_>>());
    let bam_geo = geometric_mean(&rows.iter().map(|r| r.bam_normalized).collect::<Vec<_>>());
    println!();
    println!(
        "Geometric means over the three datasets: XLFDD {xl_geo:.2}x, BaM {bam_geo:.2}x \
         ({ITERATIONS} full sweeps; sequential access amortizes large lines, so BaM \
         closes much of its Fig. 6 gap here)"
    );
    ctx.dump_json("pagerank_study", &rows);
}
