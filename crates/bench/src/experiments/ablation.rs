//! Ablation tables for the design choices DESIGN.md calls out: warp
//! count (§3.5.2), bridge ordering (Appendix A), BaM cache capacity, and
//! CXL device count (§4.2.2). Printed as simulated-runtime tables; the
//! criterion `ablation` bench measures the same points as wall-clock
//! benchmarks.

use crate::ctx::ExperimentCtx;
use cxlg_core::runner::sweep;
use cxlg_core::system::{AccessConfig, BackendConfig, SystemConfig};
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Ablations";
/// One-line summary (registry + banner).
pub const DESC: &str = "Design-choice sensitivity studies";

#[derive(Serialize)]
struct Entry {
    study: &'static str,
    point: String,
    runtime_ms: f64,
}

/// Graph specs consumed — the urand dataset only (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    vec![ctx.paper_datasets()[0]]
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let g = ctx.graph(ctx.paper_datasets()[0]);
    let bfs = Traversal::bfs(0);
    let mut entries: Vec<Entry> = Vec::new();

    // 1. Warp count (§3.5.2: concurrency >= Nmax suffices).
    let warp_points: Vec<u32> = vec![64, 128, 256, 512, 768, 1024, 2048, 3072];
    let warp_runs = sweep(warp_points.clone(), |w| {
        let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4).with_active_warps(w);
        bfs.run(&g, &sys).metrics.runtime.as_secs_f64() * 1e3
    });
    println!("\nWarp count (EMOGI/DRAM, Gen4; Nmax = 768):");
    for (w, ms) in warp_points.iter().zip(&warp_runs) {
        println!("  {w:>5} warps: {ms:>8.3} ms");
        entries.push(Entry {
            study: "warps",
            point: w.to_string(),
            runtime_ms: *ms,
        });
    }

    // 2. Bridge ordering (Appendix A).
    println!("\nLatency-bridge ordering (CXL +2 us, Gen3):");
    for (label, ooo) in [("in-order", false), ("out-of-order", true)] {
        let mut sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(2.0);
        if ooo {
            if let BackendConfig::CxlMem { dev, .. } = &mut sys.backend {
                *dev = dev.out_of_order();
            }
        }
        let ms = bfs.run(&g, &sys).metrics.runtime.as_secs_f64() * 1e3;
        println!("  {label:<14} {ms:>8.3} ms");
        entries.push(Entry {
            study: "bridge",
            point: label.to_string(),
            runtime_ms: ms,
        });
    }

    // 3. BaM cache capacity (fraction of the edge list).
    println!("\nBaM software-cache capacity (NVMe, 4 kB lines):");
    let edge_bytes = g.num_edges() * 8;
    for denom in [32u64, 16, 8, 4, 2, 1] {
        let mut sys = SystemConfig::bam_on_nvme(PcieGen::Gen4, 4);
        if let AccessConfig::SoftwareCache { capacity_bytes, .. } = &mut sys.access {
            *capacity_bytes = Some((edge_bytes / denom).max(4096 * 64));
        }
        let r = bfs.run(&g, &sys);
        let ms = r.metrics.runtime.as_secs_f64() * 1e3;
        println!(
            "  edge/{denom:<3} cache: {ms:>8.3} ms (RAF {:.2})",
            r.metrics.raf()
        );
        entries.push(Entry {
            study: "bam-cache",
            point: format!("edge/{denom}"),
            runtime_ms: ms,
        });
    }

    // 4. CXL device count (§4.2.2: five devices so tags exceed Nmax).
    println!("\nCXL device count (Gen3, +0 latency):");
    for devices in [1u32, 2, 3, 4, 5, 8] {
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, devices);
        let ms = bfs.run(&g, &sys).metrics.runtime.as_secs_f64() * 1e3;
        println!("  {devices:>2} device(s): {ms:>8.3} ms");
        entries.push(Entry {
            study: "cxl-devices",
            point: devices.to_string(),
            runtime_ms: ms,
        });
    }

    ctx.dump_json("ablation", &entries);
}
