//! Extension experiment: mixed read/write streams against each device —
//! the Discussion section's "read-only workloads" caveat, quantified.
//! Flash programs (~100 µs) occupy a plane 25x longer than reads, so even
//! a small write fraction collapses flash read throughput, while DRAM and
//! CXL degrade only mildly.

use crate::ctx::ExperimentCtx;
use cxlg_core::runner::sweep;
use cxlg_device::cxl_mem::{CxlMemConfig, CxlMemDevice};
use cxlg_device::dram::HostDram;
use cxlg_device::target::MemoryTarget;
use cxlg_device::write::WritableTarget;
use cxlg_device::xlfdd::XlfddDrive;
use cxlg_sim::{SimTime, Xoshiro256StarStar};
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Write study (extension)";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "Mixed read/write throughput per device (Discussion: read-only caveat)";

#[derive(Serialize)]
struct Point {
    device: &'static str,
    write_fraction: f64,
    kiops: f64,
}

/// Closed-loop mixed workload against one device; returns achieved kIOPS.
fn run_mixed(device: &mut (impl MemoryTarget + WritableTarget), write_fraction: f64) -> f64 {
    let mut rng = Xoshiro256StarStar::seed_from_u64(17);
    let ops = 20_000u64;
    let depth = 64usize;
    let mut inflight: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>> =
        std::collections::BinaryHeap::new();
    let mut out = Vec::new();
    let mut last = SimTime::ZERO;
    for _ in 0..ops {
        let issue = if inflight.len() >= depth {
            inflight.pop().unwrap().0
        } else {
            SimTime::ZERO
        };
        let addr = (rng.next_below(1 << 16)) * 4096;
        let done = if rng.next_bool(write_fraction) {
            device.write(issue, addr, 256)
        } else {
            out.clear();
            device.read(issue, addr, 256, &mut out)
        };
        inflight.push(std::cmp::Reverse(done));
        last = last.max(done);
    }
    ops as f64 / last.as_secs_f64() / 1e3
}

// XlfddDrive has an inherent write method, not the trait; adapt.
struct XlfddAdapter(XlfddDrive);
impl MemoryTarget for XlfddAdapter {
    fn read(
        &mut self,
        t: SimTime,
        addr: u64,
        bytes: u64,
        out: &mut Vec<cxlg_device::target::ReadSegment>,
    ) -> SimTime {
        self.0.read(t, addr, bytes, out)
    }
    fn alignment(&self) -> u64 {
        self.0.alignment()
    }
    fn kind(&self) -> &'static str {
        self.0.kind()
    }
    fn reads_served(&self) -> u64 {
        self.0.reads_served()
    }
    fn bytes_served(&self) -> u64 {
        self.0.bytes_served()
    }
}
impl WritableTarget for XlfddAdapter {
    fn write(&mut self, t: SimTime, addr: u64, bytes: u64) -> SimTime {
        self.0.write(t, addr, bytes)
    }
}

/// Graph specs consumed — none; this experiment builds no graphs
/// (cache-eviction planning; see
/// [`crate::experiment::Experiment::specs`]).
pub fn specs(_ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    Vec::new()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let fractions = [0.0, 0.01, 0.05, 0.1, 0.25, 0.5];
    let jobs: Vec<(usize, f64)> = (0..3)
        .flat_map(|d| fractions.into_iter().map(move |f| (d, f)))
        .collect();
    let points: Vec<Point> = sweep(jobs, |(d, f)| {
        let kiops = match d {
            0 => run_mixed(&mut HostDram::default(), f),
            1 => run_mixed(&mut CxlMemDevice::new(CxlMemConfig::default()), f),
            _ => run_mixed(&mut XlfddAdapter(XlfddDrive::default()), f),
        };
        Point {
            device: ["host-dram", "cxl-mem", "xlfdd"][d],
            write_fraction: f,
            kiops,
        }
    });

    print!("{:<12}", "write frac");
    for f in fractions {
        print!("{:>10.2}", f);
    }
    println!();
    for dev in ["host-dram", "cxl-mem", "xlfdd"] {
        print!("{dev:<12}");
        for f in fractions {
            let p = points
                .iter()
                .find(|p| p.device == dev && p.write_fraction == f)
                .unwrap();
            print!("{:>10.0}", p.kiops);
        }
        println!("  kIOPS");
    }
    println!(
        "\nDiscussion (§5): flash write asymmetry (tPROG ~ 25x tR) makes \
         write-heavy workloads a different problem; DRAM-backed CXL \
         degrades only via channel sharing."
    );
    ctx.dump_json("write_study", &points);
}
