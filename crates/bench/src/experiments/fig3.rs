//! Figure 3: read-amplification factor vs. address alignment size for
//! BFS and SSSP over the three datasets (software-cache simulation,
//! §3.1).

use crate::ctx::ExperimentCtx;
use crate::good_source;
use cxlg_core::raf::{raf_sweep, RafPoint, FIG3_ALIGNMENTS};
use cxlg_core::traversal::{bfs_trace, sssp_trace};
use rayon::prelude::*;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Figure 3";
/// One-line summary (registry + banner).
pub const DESC: &str = "Read amplification for varying alignment size";

#[derive(Serialize)]
struct Series {
    workload: &'static str,
    dataset: String,
    points: Vec<RafPoint>,
}

/// Graph specs consumed — all three paper datasets (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    ctx.paper_datasets().to_vec()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let datasets = ctx.paper_datasets();

    let jobs: Vec<(usize, &'static str)> = (0..3)
        .flat_map(|i| [(i, "BFS"), (i, "SSSP")])
        .collect();
    let series: Vec<Series> = jobs
        .into_par_iter()
        .map(|(i, workload)| {
            let spec = datasets[i];
            let g = ctx.graph(spec);
            let src = good_source(&g);
            let trace = match workload {
                "BFS" => bfs_trace(&g, src),
                _ => sssp_trace(&g, src, 64),
            };
            let points = raf_sweep(&g, &trace, &FIG3_ALIGNMENTS, None);
            Series {
                workload,
                dataset: spec.name(),
                points,
            }
        })
        .collect();

    print!("{:<22}", "Alignment [B]");
    for a in FIG3_ALIGNMENTS {
        print!("{a:>7}");
    }
    println!();
    for s in &series {
        print!("{:<22}", format!("{} {}", s.workload, s.dataset));
        for p in &s.points {
            print!("{:>7.2}", p.raf);
        }
        println!();
    }
    println!();
    println!(
        "Paper: RAFs are increasing functions of alignment, up to ~4 at 4 kB; \
         32 B is close to optimal (diminishing returns below)."
    );
    ctx.dump_json("fig3", &series);
}
