//! Table 2: BFS frontier size per traversal depth for the uniform random
//! graph — the paper's evidence that the algorithm itself does not limit
//! concurrency (§3.5.1).

use crate::ctx::ExperimentCtx;
use cxlg_core::traversal::bfs_trace;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Table 2";
/// One-line summary (registry + banner).
pub const DESC: &str = "Number of vertices per BFS traversal depth (urand)";

#[derive(Serialize)]
struct Row {
    depth: u32,
    vertices: u64,
}

/// Graph specs consumed — the urand dataset only (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    vec![ctx.paper_datasets()[0]]
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let spec = ctx.paper_datasets()[0];
    let g = ctx.graph(spec);
    let trace = bfs_trace(&g, 0);
    println!("{:>6} {:>14}", "Depth", "Vertices");
    let mut rows = Vec::new();
    for (d, level) in trace.iter().enumerate() {
        println!("{:>6} {:>14}", d + 1, level.len());
        rows.push(Row {
            depth: d as u32 + 1,
            vertices: level.len() as u64,
        });
    }
    let peak = rows.iter().map(|r| r.vertices).max().unwrap_or(0);
    println!();
    println!(
        "Peak frontier: {peak} vertices — {}x the Gen4 Nmax of 768 \
         (paper: most depths have tens of thousands+; concurrency is not \
         algorithm-limited)",
        peak / 768
    );
    ctx.dump_json("table2", &rows);
}
