//! Figure 5: BFS/urand runtimes on XLFDD for varying address alignment,
//! normalized by EMOGI on host DRAM, with BaM (4 kB) for reference
//! (§4.1.2 — the demonstration of Observation 1).

use crate::ctx::ExperimentCtx;
use crate::run_summary;
use cxlg_core::runner::sweep;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Figure 5";
/// One-line summary (registry + banner).
pub const DESC: &str = "BFS/urand on XLFDD vs alignment, normalized by EMOGI";

#[derive(Serialize)]
struct Point {
    alignment: u64,
    normalized_runtime: f64,
    runtime_ms: f64,
    raf: f64,
}

/// Graph specs consumed — the urand dataset only (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    vec![ctx.paper_datasets()[0]]
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let spec = ctx.paper_datasets()[0];
    let g = ctx.graph(spec);
    let trav = Traversal::bfs(0);

    let emogi = trav.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
    println!("EMOGI (host DRAM) baseline: {}", run_summary(&emogi));
    let base = emogi.metrics.runtime.as_secs_f64();

    let alignments: Vec<u64> = vec![16, 32, 64, 128, 256, 512, 4096];
    let points: Vec<Point> = sweep(alignments, |a| {
        let sys = SystemConfig::xlfdd(PcieGen::Gen4, 16).with_alignment(a);
        let r = trav.run(&g, &sys);
        Point {
            alignment: a,
            normalized_runtime: r.metrics.runtime.as_secs_f64() / base,
            runtime_ms: r.metrics.runtime.as_secs_f64() * 1e3,
            raf: r.metrics.raf(),
        }
    });

    let bam = trav.run(&g, &SystemConfig::bam_on_nvme(PcieGen::Gen4, 4));
    let bam_norm = bam.metrics.runtime.as_secs_f64() / base;

    println!();
    println!("{:>12} {:>12} {:>12} {:>8}", "Align [B]", "XLFDD t/t_EMOGI", "t [ms]", "RAF");
    for p in &points {
        println!(
            "{:>12} {:>12.2} {:>12.3} {:>8.2}",
            p.alignment, p.normalized_runtime, p.runtime_ms, p.raf
        );
    }
    println!(
        "{:>12} {:>12.2} {:>12.3} {:>8.2}   <- BaM reference (4 kB)",
        "BaM-4096",
        bam_norm,
        bam.metrics.runtime.as_secs_f64() * 1e3,
        bam.metrics.raf()
    );
    println!();
    println!(
        "Paper: smaller alignments run faster; at 16–32 B XLFDD approaches \
         host-DRAM speed while BaM at 4 kB is ~3x slower."
    );
    #[derive(Serialize)]
    struct Out {
        points: Vec<Point>,
        bam_normalized: f64,
    }
    ctx.dump_json(
        "fig5",
        &Out {
            points,
            bam_normalized: bam_norm,
        },
    );
}
