//! Figure 4: total data `D`, throughput `T`, and runtime `t` as functions
//! of the data transfer size `d` (§3.2/§3.3.2), using the paper's example
//! profile `T = min(100 d, 48 d, 24,000)` and RAF measured on BFS/urand.

use crate::ctx::ExperimentCtx;
use cxlg_core::raf::{raf_sweep, FIG3_ALIGNMENTS};
use cxlg_core::traversal::bfs_trace;
use cxlg_model::eqs::ThroughputParams;
use cxlg_model::fig4::{fig4_series, optimal_transfer_bytes, Fig4Params};

/// Banner title.
pub const TITLE: &str = "Figure 4";
/// One-line summary (registry + banner).
pub const DESC: &str = "Runtime as a function of data transfer size (model)";

/// Graph specs consumed — the urand dataset only (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    vec![ctx.paper_datasets()[0]]
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    // Measure RAF(d) on BFS/urand as the paper does for its D curve.
    let spec = ctx.paper_datasets()[0];
    let g = ctx.graph(spec);
    let trace = bfs_trace(&g, 0);
    let raf = raf_sweep(&g, &trace, &FIG3_ALIGNMENTS, None);
    let useful_mb = raf[0].useful_bytes as f64 / 1e6;

    let params = Fig4Params {
        throughput: ThroughputParams::section32_example(),
        useful_mb,
        raf_points: raf.iter().map(|p| (p.alignment as f64, p.raf)).collect(),
    };
    let series = fig4_series(&params, 4096.0, 25);

    println!(
        "{:>9} {:>12} {:>14} {:>12}",
        "d [B]", "D [MB]", "T [MB/s]", "t [ms]"
    );
    for p in &series {
        println!(
            "{:>9.0} {:>12.2} {:>14.0} {:>12.3}",
            p.d_bytes,
            p.total_mb,
            p.throughput_mb_per_sec,
            p.runtime_sec * 1e3
        );
    }
    let d_opt = optimal_transfer_bytes(&params.throughput);
    let best = series
        .iter()
        .min_by(|a, b| a.runtime_sec.total_cmp(&b.runtime_sec))
        .unwrap();
    println!();
    println!(
        "Optimal d (s·d = W): {:.0} B; measured minimum runtime at d = {:.0} B.",
        d_opt, best.d_bytes
    );
    println!(
        "Paper: best runtime at the minimum transfer size that still \
         saturates W (d_opt = 500 B for the example profile)."
    );
    ctx.dump_json("fig4", &series);
}
