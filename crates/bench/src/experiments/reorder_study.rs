//! Extension experiment: the Discussion section's "tailored graph
//! formats and preprocessing" — how vertex relabeling changes
//! read-amplification and runtime at a large alignment.

use crate::ctx::ExperimentCtx;
use crate::good_source;
use cxlg_core::raf::{default_capacity, raf_for_trace};
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::{bfs_trace, Traversal};
use cxlg_graph::reorder;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Reorder study (extension)";
/// One-line summary (registry + banner).
pub const DESC: &str = "Vertex relabeling vs RAF and BaM runtime at 4 kB lines";

#[derive(Serialize)]
struct Row {
    dataset: String,
    ordering: &'static str,
    raf_4k: f64,
    bam_ms: f64,
}

/// Graph specs consumed — urand and kron (cache-eviction planning;
/// see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    vec![ctx.paper_datasets()[0], ctx.paper_datasets()[1]]
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let mut rows = Vec::new();
    for spec in [ctx.paper_datasets()[0], ctx.paper_datasets()[1]] {
        let base = ctx.graph(spec);
        let variants: Vec<(&'static str, cxlg_graph::Csr)> = vec![
            ("native", base.to_mem()),
            ("degree-sorted", reorder::by_degree(&base)),
            ("bfs-order", reorder::by_bfs(&base, good_source(&base))),
            ("random", reorder::random(&base, ctx.seed)),
        ];
        for (ordering, g) in variants {
            let src = good_source(&g);
            let trace = bfs_trace(&g, src);
            let raf = raf_for_trace(&g, &trace, 4096, default_capacity(&g, 4096)).raf;
            let bam = Traversal::bfs(src)
                .run(&g, &SystemConfig::bam_on_nvme(PcieGen::Gen4, 4))
                .metrics
                .runtime
                .as_secs_f64()
                * 1e3;
            rows.push(Row {
                dataset: spec.name(),
                ordering,
                raf_4k: raf,
                bam_ms: bam,
            });
        }
    }
    println!(
        "{:<16} {:<14} {:>10} {:>12}",
        "Dataset", "Ordering", "RAF@4kB", "BaM [ms]"
    );
    for r in &rows {
        println!(
            "{:<16} {:<14} {:>10.2} {:>12.3}",
            r.dataset, r.ordering, r.raf_4k, r.bam_ms
        );
    }
    println!(
        "\nDiscussion (§5): preprocessing that increases cross-sublist \
         locality lowers the RAF at large transfer sizes, relaxing the \
         external-memory requirements; random ordering is the floor."
    );
    ctx.dump_json("reorder_study", &rows);
}
