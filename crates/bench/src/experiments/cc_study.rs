//! New-workload experiment: connected components through the three
//! access methods.
//!
//! Label-propagation CC starts from an all-vertex frontier (a
//! sequential-looking first round) and narrows to the random-access
//! stragglers of the largest component — a hybrid of the paper's two
//! access regimes. Run over the three paper datasets through EMOGI
//! zero-copy on host DRAM (baseline), XLFDD direct access at 16 B, and
//! the BaM software cache at 4 kB, like Fig. 6.

use crate::ctx::ExperimentCtx;
use cxlg_core::runner::{geometric_mean, sweep};
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Connected-components study (extension)";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "Label-propagation CC via the three access methods, normalized by EMOGI";

#[derive(Serialize)]
struct Row {
    dataset: String,
    components: u64,
    rounds: u64,
    emogi_ms: f64,
    xlfdd_normalized: f64,
    bam_normalized: f64,
}

/// Graph specs consumed — all three paper datasets (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    ctx.paper_datasets().to_vec()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let datasets = ctx.paper_datasets();
    let cc = Traversal::connected_components();

    let rows: Vec<Row> = sweep((0..3).collect(), |i| {
        let spec = datasets[i];
        let g = ctx.graph(spec);
        let emogi = cc.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
        let base = emogi.metrics.runtime.as_secs_f64();
        let xl = cc.run(&g, &SystemConfig::xlfdd(PcieGen::Gen4, 16));
        let bam = cc.run(&g, &SystemConfig::bam_on_nvme(PcieGen::Gen4, 4));
        Row {
            dataset: spec.name(),
            components: emogi.reached,
            rounds: emogi.levels.len() as u64,
            emogi_ms: base * 1e3,
            xlfdd_normalized: xl.metrics.runtime.as_secs_f64() / base,
            bam_normalized: bam.metrics.runtime.as_secs_f64() / base,
        }
    });

    println!(
        "{:<16} {:>12} {:>8} {:>12} {:>10} {:>10}",
        "Dataset", "Components", "Rounds", "EMOGI [ms]", "XLFDD", "BaM"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12} {:>8} {:>12.3} {:>10.2} {:>10.2}",
            r.dataset, r.components, r.rounds, r.emogi_ms, r.xlfdd_normalized, r.bam_normalized
        );
    }
    let xl_geo = geometric_mean(&rows.iter().map(|r| r.xlfdd_normalized).collect::<Vec<_>>());
    let bam_geo = geometric_mean(&rows.iter().map(|r| r.bam_normalized).collect::<Vec<_>>());
    println!();
    println!(
        "Geometric means over the three datasets: XLFDD {xl_geo:.2}x, BaM {bam_geo:.2}x \
         (label propagation mixes one sequential first round with random \
         straggler rounds, landing between PageRank and BFS)"
    );
    ctx.dump_json("cc_study", &rows);
}
