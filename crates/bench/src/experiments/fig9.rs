//! Figure 9: GPU-observed latency of host DRAM and CXL memory, measured
//! by the Appendix-B pointer chase — near vs. far socket, and CXL at
//! +0 … +3 µs added latency.

use crate::ctx::ExperimentCtx;
use cxlg_core::microbench::{pointer_chase_latency, PointerChaseResult};
use cxlg_core::runner::sweep;
use cxlg_core::system::SystemConfig;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Figure 9";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "Measured latency of host DRAM and CXL memory as seen from the GPU";

#[derive(Serialize)]
struct Bar {
    label: String,
    near_socket: bool,
    latency_us: f64,
}

/// Graph specs consumed — none; this experiment builds no graphs
/// (cache-eviction planning; see
/// [`crate::experiment::Experiment::specs`]).
pub fn specs(_ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    Vec::new()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    const HOPS: u64 = 400;
    const REGION: u64 = 1 << 26;

    let mut jobs: Vec<(String, bool, SystemConfig)> = vec![
        (
            "DRAM0".into(),
            false,
            SystemConfig::emogi_on_dram(PcieGen::Gen4).on_far_socket(),
        ),
        (
            "DRAM1".into(),
            true,
            SystemConfig::emogi_on_dram(PcieGen::Gen4),
        ),
    ];
    for (dev, near) in [("CXL0", false), ("CXL3", true)] {
        for add in [0.0, 1.0, 2.0, 3.0] {
            let mut sys =
                SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1).with_added_latency_us(add);
            if !near {
                sys = sys.on_far_socket();
            }
            jobs.push((format!("{dev}(+{add:.0})"), near, sys));
        }
    }

    let bars: Vec<Bar> = sweep(jobs, |(label, near, sys)| {
        let r: PointerChaseResult = pointer_chase_latency(&sys, REGION, HOPS, 1);
        Bar {
            label,
            near_socket: near,
            latency_us: r.latency_us,
        }
    });

    println!("{:<12} {:>8} {:>14}", "Memory", "Socket", "Latency [us]");
    for b in &bars {
        println!(
            "{:<12} {:>8} {:>14.2}",
            b.label,
            if b.near_socket { "near" } else { "far" },
            b.latency_us
        );
    }
    println!();
    println!(
        "Paper: host DRAM ~1+ us from the GPU; CXL adds ~0.5 us; far-socket \
         devices marginally slower; added latency shifts bars accordingly."
    );
    ctx.dump_json("fig9", &bars);
}
