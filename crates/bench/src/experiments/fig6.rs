//! Figure 6: BFS and SSSP runtimes on XLFDD (16 B alignment) and BaM
//! (4 kB) across the three datasets, normalized by EMOGI on host DRAM
//! (§4.1.2).

use crate::ctx::ExperimentCtx;
use crate::good_source;
use cxlg_core::runner::geometric_mean;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "Figure 6";
/// One-line summary (registry + banner).
pub const DESC: &str =
    "XLFDD and BaM runtimes normalized by EMOGI (BFS & SSSP × 3 datasets)";

#[derive(Serialize)]
struct Cell {
    workload: &'static str,
    dataset: String,
    xlfdd_normalized: f64,
    bam_normalized: f64,
}

/// Graph specs consumed — all three paper datasets (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    ctx.paper_datasets().to_vec()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let datasets = ctx.paper_datasets();
    let jobs: Vec<(usize, &'static str)> = (0..3)
        .flat_map(|i| [(i, "BFS"), (i, "SSSP")])
        .collect();

    let cells: Vec<Cell> = ctx.sweep(jobs, |(i, workload)| {
        let spec = datasets[i];
        let g = ctx.graph(spec);
        let src = good_source(&g);
        let trav = match workload {
            "BFS" => Traversal::bfs(src),
            _ => Traversal::sssp(src),
        };
        let emogi = trav.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
        let base = emogi.metrics.runtime.as_secs_f64();
        let xl = trav.run(&g, &SystemConfig::xlfdd(PcieGen::Gen4, 16));
        let bam = trav.run(&g, &SystemConfig::bam_on_nvme(PcieGen::Gen4, 4));
        Cell {
            workload,
            dataset: spec.name(),
            xlfdd_normalized: xl.metrics.runtime.as_secs_f64() / base,
            bam_normalized: bam.metrics.runtime.as_secs_f64() / base,
        }
    });

    println!(
        "{:<6} {:<16} {:>10} {:>10}",
        "Algo", "Dataset", "XLFDD", "BaM"
    );
    for c in &cells {
        println!(
            "{:<6} {:<16} {:>10.2} {:>10.2}",
            c.workload, c.dataset, c.xlfdd_normalized, c.bam_normalized
        );
    }
    let xl_geo = geometric_mean(&cells.iter().map(|c| c.xlfdd_normalized).collect::<Vec<_>>());
    let bam_geo = geometric_mean(&cells.iter().map(|c| c.bam_normalized).collect::<Vec<_>>());
    println!();
    println!(
        "Geometric means over the six pairs: XLFDD {xl_geo:.2}x, BaM {bam_geo:.2}x \
         (paper: 1.13x and 2.76x)"
    );
    ctx.dump_json("fig6", &cells);
}
