//! Equation 4 / Equation 6 checks: the analytical numbers quoted in §3.2,
//! §3.4 and §4.2.2, plus the model-vs-simulation cross-validation.

use crate::ctx::ExperimentCtx;
use cxlg_core::access::DeviceRequest;
use cxlg_core::system::SystemConfig;
use cxlg_link::pcie::{PcieGen, PcieLinkConfig};
use cxlg_model::eqs::{throughput, ThroughputParams};
use cxlg_model::requirements::{emogi_requirements, requirements, D_EMOGI_BYTES};
use cxlg_sim::SimTime;

/// Banner title.
pub const TITLE: &str = "Eq. 4 / Eq. 6";
/// One-line summary (registry + banner).
pub const DESC: &str = "Analytical model checks";

/// Graph specs consumed — none; this experiment builds no graphs
/// (cache-eviction planning; see
/// [`crate::experiment::Experiment::specs`]).
pub fn specs(_ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    Vec::new()
}

/// Run the experiment (print-only; no JSON result).
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);

    println!("Equation 4 — example profile T = min(100d, 48d, 24000):");
    let p = ThroughputParams::section32_example();
    for d in [64.0, 89.6, 256.0, 500.0, 1024.0, 4096.0] {
        println!("  d = {d:>7.1} B -> T = {:>9.1} MB/s", throughput(&p, d));
    }

    println!("\nEquation 6 — requirements to match host-DRAM EMOGI:");
    for gen in [PcieGen::Gen3, PcieGen::Gen4, PcieGen::Gen5] {
        let r = emogi_requirements(gen);
        println!(
            "  {:?} x16 (W = {:>6.0} MB/s, Nmax = {:>3}): S >= {:>6.1} MIOPS, L <= {:.2} us",
            gen, r.bandwidth_mb_per_sec, r.nmax, r.min_miops, r.max_latency_us
        );
    }
    let xl = requirements(&PcieLinkConfig::x16(PcieGen::Gen4), 256.0);
    println!(
        "  XLFDD sublist transfers (d = 256 B): S >= {:.2} MIOPS (16 drives give 176)",
        xl.min_miops
    );

    println!("\nModel vs simulation — saturated zero-copy reads of d̄ = 89.6 B:");
    let sys = SystemConfig::emogi_on_dram(PcieGen::Gen4);
    let mut engine = sys.build_engine();
    let reqs: Vec<DeviceRequest> = (0..40_000)
        .map(|i| DeviceRequest {
            addr: i * 4096,
            bytes: 90, overhead_ps: 0 })
        .collect();
    let batch = engine.run_batch(SimTime::ZERO, &reqs);
    let sim_t = (40_000u64 * 90) as f64 / 1e6 / batch.end.as_secs_f64();
    let model_t = throughput(
        &ThroughputParams {
            iops: f64::INFINITY,
            latency_us: batch.latency.mean(),
            nmax: 768.0,
            bandwidth_mb_per_sec: 24_000.0,
        },
        D_EMOGI_BYTES,
    );
    println!("  simulated T = {sim_t:>8.0} MB/s, model T = {model_t:>8.0} MB/s");
    println!(
        "  agreement: {:.1}% (paper argues both are W-capped)",
        100.0 * sim_t / model_t
    );
}
