//! Extension experiment: EMOGI zero-copy vs the UVM paging baseline it
//! replaced (Related Work, §6: UVM migrates 4 kB pages on fault; EMOGI's
//! fine-grained direct access "significantly reduces the RAF compared
//! with the UVM approach").

use crate::ctx::ExperimentCtx;
use crate::{good_source, run_summary};
use cxlg_core::runner::sweep;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

/// Banner title.
pub const TITLE: &str = "UVM comparison (extension)";
/// One-line summary (registry + banner).
pub const DESC: &str = "Zero-copy (EMOGI) vs unified-virtual-memory paging, BFS";

#[derive(Serialize)]
struct Row {
    dataset: String,
    emogi_ms: f64,
    uvm_ms: f64,
    uvm_over_emogi: f64,
    uvm_raf: f64,
    emogi_raf: f64,
}

/// Graph specs consumed — all three paper datasets (cache-eviction
/// planning; see [`crate::experiment::Experiment::specs`]).
pub fn specs(ctx: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
    ctx.paper_datasets().to_vec()
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) {
    ctx.banner(TITLE, DESC);
    let datasets = ctx.paper_datasets();
    let rows: Vec<Row> = sweep((0..3).collect(), |i| {
        let spec = datasets[i];
        let g = ctx.graph(spec);
        let src = good_source(&g);
        let bfs = Traversal::bfs(src);
        let emogi = bfs.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen4));
        let uvm = bfs.run(&g, &SystemConfig::uvm_on_dram(PcieGen::Gen4));
        eprintln!("[{}] emogi {}", spec.name(), run_summary(&emogi));
        eprintln!("[{}] uvm   {}", spec.name(), run_summary(&uvm));
        Row {
            dataset: spec.name(),
            emogi_ms: emogi.metrics.runtime.as_secs_f64() * 1e3,
            uvm_ms: uvm.metrics.runtime.as_secs_f64() * 1e3,
            uvm_over_emogi: uvm.metrics.runtime.as_secs_f64()
                / emogi.metrics.runtime.as_secs_f64(),
            uvm_raf: uvm.metrics.raf(),
            emogi_raf: emogi.metrics.raf(),
        }
    });

    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "Dataset", "EMOGI [ms]", "UVM [ms]", "UVM/EMOGI", "RAF emogi", "RAF uvm"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>10.2} {:>10.2} {:>10.2}",
            r.dataset, r.emogi_ms, r.uvm_ms, r.uvm_over_emogi, r.emogi_raf, r.uvm_raf
        );
    }
    println!(
        "\nEMOGI's motivation (Related Work): fine-grained zero-copy access \
         beats 4 kB page migration on random-access graph workloads."
    );
    ctx.dump_json("uvm_compare", &rows);
}
