//! Legacy shim: the `uvm_compare` experiment now lives in
//! `cxlg_bench::experiments::uvm_compare` and is registered with the `cxlg`
//! driver (`cxlg run uvm_compare`). This binary is kept so existing scripts and
//! EXPERIMENTS.md commands keep working; stdout and the result JSON are
//! identical to the driver's.

fn main() {
    cxlg_bench::cli::shim_main("uvm_compare");
}
