//! Table 1: graph datasets — vertex/edge counts, edge-list size, and
//! average degree (sublist size) over non-isolated vertices.

use cxlg_bench::{banner, bench_scale, dump_json, paper_datasets};
use cxlg_graph::stats::DegreeStats;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    stats: DegreeStats,
}

fn main() {
    banner("Table 1", "Graph datasets");
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>7} {:>11}",
        "Dataset", "Vertices", "Edges", "(size)", "AvgDeg", "(sublist)"
    );
    let mut rows = Vec::new();
    for spec in paper_datasets() {
        let g = spec.build();
        let stats = DegreeStats::compute(&g);
        println!("{}", stats.table1_row(&spec.name()));
        rows.push(Row {
            name: spec.name(),
            stats,
        });
    }
    println!();
    println!(
        "Paper (scale 27): urand27 32.0 (256.0 B), kron27 67.0 (536.0 B), \
         Friendster 55.1 (440.8 B); shapes should match at scale {}.",
        bench_scale()
    );
    dump_json("table1", &rows);
}
