//! Legacy shim: the `table1` experiment now lives in
//! `cxlg_bench::experiments::table1` and is registered with the `cxlg`
//! driver (`cxlg run table1`). This binary is kept so existing scripts and
//! EXPERIMENTS.md commands keep working; stdout and the result JSON are
//! identical to the driver's.

fn main() {
    cxlg_bench::cli::shim_main("table1");
}
