//! Figure 11: BFS and SSSP runtimes on CXL memory with varying added
//! latency, normalized per-dataset by the host-DRAM runtime — the paper's
//! headline result (Observation 2): identical performance while the CXL
//! latency stays under ~2 µs on Gen3.

use cxlg_bench::{banner, dump_json, good_source, paper_datasets};
use cxlg_core::runner::sweep;
use cxlg_core::system::SystemConfig;
use cxlg_core::traversal::Traversal;
use cxlg_link::pcie::PcieGen;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    workload: &'static str,
    dataset: String,
    added_latency_us: f64,
    normalized_runtime: f64,
}

fn main() {
    banner(
        "Figure 11",
        "BFS/SSSP on CXL memory vs latency, normalized by host DRAM (Gen3 x16, 5 devices)",
    );
    let datasets = paper_datasets();
    let added = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];

    let jobs: Vec<(usize, &'static str, f64)> = (0..3)
        .flat_map(|i| {
            ["BFS", "SSSP"]
                .into_iter()
                .flat_map(move |w| added.into_iter().map(move |a| (i, w, a)))
        })
        .collect();

    let points: Vec<Point> = sweep(jobs, |(i, workload, add)| {
        let spec = datasets[i];
        let g = spec.build();
        let src = good_source(&g);
        let trav = match workload {
            "BFS" => Traversal::bfs(src),
            _ => Traversal::sssp(src),
        };
        let dram = trav.run(&g, &SystemConfig::emogi_on_dram(PcieGen::Gen3));
        let cxl = trav.run(
            &g,
            &SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(add),
        );
        Point {
            workload,
            dataset: spec.name(),
            added_latency_us: add,
            normalized_runtime: cxl.metrics.runtime.as_secs_f64()
                / dram.metrics.runtime.as_secs_f64(),
        }
    });

    for workload in ["BFS", "SSSP"] {
        println!("\n{workload}");
        print!("{:<16}", "added [us]:");
        for a in added {
            print!("{a:>8.1}");
        }
        println!();
        for spec in &datasets {
            print!("{:<16}", spec.name());
            for a in added {
                let p = points
                    .iter()
                    .find(|p| {
                        p.workload == workload
                            && p.dataset == spec.name()
                            && p.added_latency_us == a
                    })
                    .unwrap();
                print!("{:>8.2}", p.normalized_runtime);
            }
            println!();
        }
    }
    println!();
    println!(
        "Paper: normalized runtime ~1.0 while CXL latency stays under \
         ~1.91 us (the Gen3 allowance), rising beyond it."
    );
    dump_json("fig11", &points);
}
