//! Legacy shim: the `reorder_study` experiment now lives in
//! `cxlg_bench::experiments::reorder_study` and is registered with the `cxlg`
//! driver (`cxlg run reorder_study`). This binary is kept so existing scripts and
//! EXPERIMENTS.md commands keep working; stdout and the result JSON are
//! identical to the driver's.

fn main() {
    cxlg_bench::cli::shim_main("reorder_study");
}
