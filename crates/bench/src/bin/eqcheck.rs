//! Legacy shim: the `eqcheck` experiment now lives in
//! `cxlg_bench::experiments::eqcheck` and is registered with the `cxlg`
//! driver (`cxlg run eqcheck`). This binary is kept so existing scripts and
//! EXPERIMENTS.md commands keep working; stdout and the result JSON are
//! identical to the driver's.

fn main() {
    cxlg_bench::cli::shim_main("eqcheck");
}
