//! Legacy shim: regenerate every table and figure. This is `cxlg run
//! --all --json-manifest` under the hood — one process, one shared
//! graph cache (each dataset is built exactly once per invocation, not
//! once per figure), with per-experiment wall-clock recorded in
//! `manifest.json` next to the results.

fn main() {
    cxlg_bench::cli::run_all();
}
