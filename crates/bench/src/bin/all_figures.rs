//! Regenerate every table and figure in sequence. Equivalent to running
//! the individual binaries; results land in `target/paper-results/`.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11", "eqcheck",
        // Extension experiments (DESIGN.md §8).
        "uvm_compare", "reorder_study", "write_study", "ablation",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments regenerated. JSON in target/paper-results/.");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
