//! `cxlg` — the campaign driver: `list` enumerates the experiment
//! registry, `run <names...>` / `run --all` executes experiments against
//! one shared context and graph cache, and `--json-manifest` records the
//! run configuration, per-experiment wall-clock, result paths, and
//! per-spec graph build counts. See `cxlg help`.

fn main() {
    cxlg_bench::cli::cxlg_main();
}
