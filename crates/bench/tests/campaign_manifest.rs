//! The full-campaign properties the `cxlg` driver promises: every
//! registered experiment runs against one shared context, the graph
//! cache builds each paper dataset exactly once for the whole campaign,
//! and the manifest records configuration, per-experiment wall-clock,
//! and every result path.

use cxlg_bench::cli::run_experiments;
use cxlg_bench::ctx::ExperimentCtx;
use cxlg_bench::experiment::Experiment;
use cxlg_bench::registry;
use serde::Value;
use std::path::PathBuf;

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    let Value::Map(m) = v else { panic!("expected map at {key}") };
    &m.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("missing {key}")).1
}

#[test]
fn full_campaign_builds_each_dataset_once_and_manifests_everything() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("campaign");
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = ExperimentCtx::new(8, 0x5EED, 2, dir.clone());
    let manifest_path = dir.join("manifest.json");

    let exps: Vec<&dyn Experiment> = registry::all().collect();
    let outcome = rayon::with_num_threads(2, || {
        run_experiments(&ctx, &exps, Some(&manifest_path))
    });
    assert_eq!(outcome.reports.len(), registry::ALL.len());
    assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);

    // One build per paper dataset across the entire campaign — the
    // property all_figures lost when it spawned one process per figure.
    assert_eq!(
        ctx.graph_build_counts(),
        vec![
            ("friendster8(deg55)@0x5eed".to_string(), 1),
            ("kron8(ef16)@0x5eed".to_string(), 1),
            ("urand8(deg32)@0x5eed".to_string(), 1),
        ]
    );

    let manifest: Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    assert_eq!(field(&manifest, "scale"), &Value::U64(8));
    assert_eq!(field(&manifest, "seed"), &Value::U64(0x5EED));
    assert_eq!(field(&manifest, "threads"), &Value::U64(2));

    let Value::Array(experiments) = field(&manifest, "experiments") else {
        panic!("experiments must be an array")
    };
    assert_eq!(experiments.len(), registry::ALL.len());
    for (entry, exp) in experiments.iter().zip(registry::all()) {
        assert_eq!(field(entry, "name"), &Value::Str(exp.name().to_string()));
        let Value::F64(wall) = field(entry, "wall_ms") else {
            panic!("wall_ms must be f64")
        };
        assert!(*wall >= 0.0);
        assert_eq!(field(entry, "failed"), &Value::Bool(false));
        let Value::Array(files) = field(entry, "result_files") else {
            panic!("result_files must be an array")
        };
        // Every recorded result path exists on disk; eqcheck is the one
        // print-only experiment.
        if exp.name() == "eqcheck" {
            assert!(files.is_empty(), "eqcheck writes no JSON");
        } else {
            assert!(!files.is_empty(), "{} wrote no results", exp.name());
        }
        for f in files {
            let Value::Str(path) = f else { panic!("path must be a string") };
            assert!(std::path::Path::new(path).is_file(), "missing {path}");
        }
    }

    let Value::Array(builds) = field(&manifest, "graph_builds") else {
        panic!("graph_builds must be an array")
    };
    assert_eq!(builds.len(), 3);
    for b in builds {
        assert_eq!(field(b, "builds"), &Value::U64(1));
    }

    // The eviction plan dropped each dataset exactly once, after its
    // last declared consumer — so the cache is empty by campaign end.
    let Value::Array(evictions) = field(&manifest, "graph_evictions") else {
        panic!("graph_evictions must be an array")
    };
    assert_eq!(evictions.len(), 3, "every dataset must be evicted once");
    for e in evictions {
        assert_eq!(field(e, "evictions"), &Value::U64(1));
    }
    assert_eq!(
        ctx.graph_eviction_counts(),
        vec![
            ("friendster8(deg55)@0x5eed".to_string(), 1),
            ("kron8(ef16)@0x5eed".to_string(), 1),
            ("urand8(deg32)@0x5eed".to_string(), 1),
        ]
    );

    // Peak RSS is recorded per experiment (monotone: a process-wide
    // high-water mark) and at the campaign level — on Linux both
    // sources are live; elsewhere the fields exist and hold 0.
    let mut prev = 0u64;
    for entry in experiments {
        let Value::U64(kb) = field(entry, "peak_rss_kb") else {
            panic!("peak_rss_kb must be u64")
        };
        assert!(*kb >= prev, "per-experiment peak RSS decreased");
        prev = *kb;
    }
    let Value::U64(total_kb) = field(&manifest, "peak_rss_kb") else {
        panic!("campaign peak_rss_kb must be u64")
    };
    assert!(*total_kb >= prev);
    #[cfg(target_os = "linux")]
    assert!(*total_kb > 0, "no peak-RSS source found on Linux");
}

#[test]
fn a_panicking_experiment_does_not_abort_the_campaign() {
    use cxlg_bench::experiment::FnExperiment;

    fn boom(_: &ExperimentCtx) {
        panic!("deliberate test panic");
    }
    fn fine(ctx: &ExperimentCtx) {
        ctx.dump_json("fine", &1u64);
    }
    fn no_specs(_: &ExperimentCtx) -> Vec<cxlg_graph::GraphSpec> {
        Vec::new()
    }
    static BOOM: FnExperiment = FnExperiment {
        name: "boom",
        description: "panics on purpose",
        specs: no_specs,
        run: boom,
    };
    static FINE: FnExperiment = FnExperiment {
        name: "fine",
        description: "runs after the panic",
        specs: no_specs,
        run: fine,
    };

    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("campaign-panic");
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = ExperimentCtx::new(8, 1, 1, dir.clone());
    let manifest_path = dir.join("manifest.json");

    let outcome = run_experiments(&ctx, &[&BOOM, &FINE], Some(&manifest_path));

    // The panic is contained: the later experiment still ran, the
    // manifest was still written, and the failure is recorded.
    assert_eq!(outcome.failed, vec!["boom".to_string()]);
    assert_eq!(outcome.reports.len(), 2);
    assert!(dir.join("fine.json").is_file());
    let manifest: Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    let Value::Array(experiments) = field(&manifest, "experiments") else {
        panic!("experiments must be an array")
    };
    assert_eq!(field(&experiments[0], "failed"), &Value::Bool(true));
    assert_eq!(field(&experiments[1], "failed"), &Value::Bool(false));
}
