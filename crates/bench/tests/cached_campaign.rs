//! The cached-campaign properties `cxlg run --cached` promises: a
//! second run over a warm store is all cache hits with byte-identical
//! result files and zero graph builds, job keys are stable across
//! runs, and a tampered CAS entry is re-executed and repaired rather
//! than served.

use cxlg_bench::experiment::Experiment;
use cxlg_bench::registry;
use cxlg_bench::serve_cli::{run_cached_campaign, CachedOptions};
use std::path::{Path, PathBuf};

fn plain() -> CachedOptions {
    CachedOptions::default()
}

fn exps(names: &[&str]) -> Vec<&'static dyn Experiment> {
    names
        .iter()
        .map(|n| registry::find(n).unwrap_or_else(|| panic!("unknown experiment {n}")))
        .collect()
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn second_cached_run_is_all_hits_and_byte_identical() {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cached-campaign");
    let _ = std::fs::remove_dir_all(&base);
    let cas = base.join("cas");
    let list = exps(&["fig3", "fig4", "eqcheck"]);

    let pass1 = base.join("pass1");
    let o1 = rayon::with_num_threads(2, || {
        run_cached_campaign(8, 0x5EED, 2, &pass1, &cas, &list, Some(&pass1.join("manifest.json")), &plain())
    })
    .unwrap();
    assert!(o1.failed.is_empty(), "failed: {:?}", o1.failed);
    assert!(
        o1.reports.iter().all(|r| !r.cache_hit),
        "a cold store has no hits"
    );
    assert_eq!((o1.cache_hits, o1.cache_misses), (0, 3));
    assert!(!o1.graph_builds.is_empty(), "cold run must build graphs");
    // eqcheck is the print-only experiment: cached as done, no files.
    let eq = o1.reports.iter().find(|r| r.name == "eqcheck").unwrap();
    assert!(eq.result_files.is_empty());
    assert!(pass1.join("fig3.json").is_file());
    assert!(pass1.join("manifest.json").is_file());

    let pass2 = base.join("pass2");
    let o2 = rayon::with_num_threads(2, || {
        run_cached_campaign(8, 0x5EED, 2, &pass2, &cas, &list, Some(&pass2.join("manifest.json")), &plain())
    })
    .unwrap();
    assert!(o2.failed.is_empty(), "failed: {:?}", o2.failed);
    assert!(
        o2.reports.iter().all(|r| r.cache_hit),
        "warm store must serve every job: {:?}",
        o2.reports
            .iter()
            .map(|r| (r.name.clone(), r.cache_hit))
            .collect::<Vec<_>>()
    );
    assert_eq!((o2.cache_hits, o2.cache_misses), (3, 0));
    assert!(
        o2.graph_builds.is_empty(),
        "a fully warm run must not build any graph, got {:?}",
        o2.graph_builds
    );

    // Same jobs, same keys — content addressing is stable across runs.
    for (a, b) in o1.reports.iter().zip(&o2.reports) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.key, b.key, "{} key drifted across runs", a.name);
    }

    // The cached result files are byte-identical to the fresh ones.
    for name in ["fig3.json", "fig4.json"] {
        assert_eq!(
            read(&pass1.join(name)),
            read(&pass2.join(name)),
            "{name} differs between fresh and cached runs"
        );
    }

    // A different job (other seed) gets a different key.
    let pass3 = base.join("pass3");
    let o3 = rayon::with_num_threads(2, || {
        run_cached_campaign(8, 0x0BAD, 2, &pass3, &cas, &exps(&["fig3"]), None, &plain())
    })
    .unwrap();
    assert_ne!(o3.reports[0].key, o1.reports[2].key);
    assert!(!o3.reports[0].cache_hit, "a new seed is a distinct job");
}

#[test]
fn tampered_cas_entries_are_reexecuted_and_repaired() {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cached-tamper");
    let _ = std::fs::remove_dir_all(&base);
    let cas = base.join("cas");
    let list = exps(&["fig3"]);

    let pass1 = base.join("pass1");
    let o1 = rayon::with_num_threads(1, || {
        run_cached_campaign(8, 0x5EED, 1, &pass1, &cas, &list, None, &plain())
    })
    .unwrap();
    assert!(o1.failed.is_empty());
    let key = o1.reports[0].key.clone();
    let fresh = read(&pass1.join("fig3.json"));

    // Corrupt the stored payload in place (same length, flipped byte).
    let payload = cas.join(&key).join("fig3.json");
    let mut bytes = read(&payload);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&payload, &bytes).unwrap();

    let pass2 = base.join("pass2");
    let o2 = rayon::with_num_threads(1, || {
        run_cached_campaign(8, 0x5EED, 1, &pass2, &cas, &list, None, &plain())
    })
    .unwrap();
    assert!(o2.failed.is_empty());
    assert!(
        !o2.reports[0].cache_hit,
        "integrity failure must force re-execution, not a serve"
    );
    assert_eq!(o2.reports[0].key, key, "the key is input-derived, unchanged");
    // The re-executed result matches the original bytes, and the store
    // entry is repaired.
    assert_eq!(read(&pass2.join("fig3.json")), fresh);
    assert_eq!(read(&payload), fresh);
}

#[test]
fn a_chaos_campaign_self_heals_to_fault_free_bytes() {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cached-chaos");
    let _ = std::fs::remove_dir_all(&base);
    let list = exps(&["fig3", "fig4"]);

    // The fault-free reference run.
    let clean_dir = base.join("clean");
    let o0 = rayon::with_num_threads(1, || {
        run_cached_campaign(8, 0x5EED, 1, &clean_dir, &base.join("cas-clean"), &list, None, &plain())
    })
    .unwrap();
    assert!(o0.failed.is_empty(), "failed: {:?}", o0.failed);

    // Deterministic event trace (1 worker, sequential submit → wait):
    //   fig3: exec#1 ok → publish#1 TORN  → retry
    //         exec#2 ok → publish#2 CORRUPT → Done but poisoned; the
    //         heal loop's probe quarantines it and resubmits
    //         exec#3 ok → publish#3 ok → healed
    //   fig4: exec#4 PANIC → retry → exec#5 ok → publish#4 ok
    let chaos = CachedOptions {
        fault_plan: Some("torn@1,corrupt@2,panic@4".to_string()),
        fault_seed: 42,
        max_attempts: 4,
        cas_max_bytes: None,
        graph_storage: None,
    };
    let chaos_dir = base.join("chaos");
    let o1 = rayon::with_num_threads(1, || {
        run_cached_campaign(8, 0x5EED, 1, &chaos_dir, &base.join("cas-chaos"), &list, None, &chaos)
    })
    .unwrap();
    assert!(
        o1.failed.is_empty(),
        "the chaos campaign must self-heal, not fail: {:?}",
        o1.failed
    );

    // Every result file converges to the fault-free bytes.
    for name in ["fig3.json", "fig4.json"] {
        assert_eq!(
            read(&chaos_dir.join(name)),
            read(&clean_dir.join(name)),
            "{name} differs from the fault-free run"
        );
    }

    // The stats snapshot records the recovery work the plan forced.
    let text = String::from_utf8(read(&chaos_dir.join("service-stats.json"))).unwrap();
    let Ok(serde::Value::Map(map)) = serde_json::from_str::<serde::Value>(&text) else {
        panic!("service-stats.json must be a JSON map:\n{text}")
    };
    let field = |k: &str| {
        map.iter()
            .find(|(n, _)| n == k)
            .unwrap_or_else(|| panic!("stats must carry `{k}`:\n{text}"))
            .1
            .clone()
    };
    assert_eq!(field("retries"), serde::Value::U64(2), "torn + panic each retry");
    assert_eq!(field("faults_injected"), serde::Value::U64(3));
    assert_eq!(field("failed"), serde::Value::U64(0));
    let serde::Value::Map(store) = field("store") else {
        panic!("store stats must be a map")
    };
    assert!(
        store.iter().any(|(k, v)| k == "quarantined" && *v == serde::Value::U64(1)),
        "the poisoned entry must be quarantined: {text}"
    );
}
