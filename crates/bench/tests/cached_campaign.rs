//! The cached-campaign properties `cxlg run --cached` promises: a
//! second run over a warm store is all cache hits with byte-identical
//! result files and zero graph builds, job keys are stable across
//! runs, and a tampered CAS entry is re-executed and repaired rather
//! than served.

use cxlg_bench::experiment::Experiment;
use cxlg_bench::registry;
use cxlg_bench::serve_cli::run_cached_campaign;
use std::path::{Path, PathBuf};

fn exps(names: &[&str]) -> Vec<&'static dyn Experiment> {
    names
        .iter()
        .map(|n| registry::find(n).unwrap_or_else(|| panic!("unknown experiment {n}")))
        .collect()
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn second_cached_run_is_all_hits_and_byte_identical() {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cached-campaign");
    let _ = std::fs::remove_dir_all(&base);
    let cas = base.join("cas");
    let list = exps(&["fig3", "fig4", "eqcheck"]);

    let pass1 = base.join("pass1");
    let o1 = rayon::with_num_threads(2, || {
        run_cached_campaign(8, 0x5EED, 2, &pass1, &cas, &list, Some(&pass1.join("manifest.json")))
    })
    .unwrap();
    assert!(o1.failed.is_empty(), "failed: {:?}", o1.failed);
    assert!(
        o1.reports.iter().all(|r| !r.cache_hit),
        "a cold store has no hits"
    );
    assert_eq!((o1.cache_hits, o1.cache_misses), (0, 3));
    assert!(!o1.graph_builds.is_empty(), "cold run must build graphs");
    // eqcheck is the print-only experiment: cached as done, no files.
    let eq = o1.reports.iter().find(|r| r.name == "eqcheck").unwrap();
    assert!(eq.result_files.is_empty());
    assert!(pass1.join("fig3.json").is_file());
    assert!(pass1.join("manifest.json").is_file());

    let pass2 = base.join("pass2");
    let o2 = rayon::with_num_threads(2, || {
        run_cached_campaign(8, 0x5EED, 2, &pass2, &cas, &list, Some(&pass2.join("manifest.json")))
    })
    .unwrap();
    assert!(o2.failed.is_empty(), "failed: {:?}", o2.failed);
    assert!(
        o2.reports.iter().all(|r| r.cache_hit),
        "warm store must serve every job: {:?}",
        o2.reports
            .iter()
            .map(|r| (r.name.clone(), r.cache_hit))
            .collect::<Vec<_>>()
    );
    assert_eq!((o2.cache_hits, o2.cache_misses), (3, 0));
    assert!(
        o2.graph_builds.is_empty(),
        "a fully warm run must not build any graph, got {:?}",
        o2.graph_builds
    );

    // Same jobs, same keys — content addressing is stable across runs.
    for (a, b) in o1.reports.iter().zip(&o2.reports) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.key, b.key, "{} key drifted across runs", a.name);
    }

    // The cached result files are byte-identical to the fresh ones.
    for name in ["fig3.json", "fig4.json"] {
        assert_eq!(
            read(&pass1.join(name)),
            read(&pass2.join(name)),
            "{name} differs between fresh and cached runs"
        );
    }

    // A different job (other seed) gets a different key.
    let pass3 = base.join("pass3");
    let o3 = rayon::with_num_threads(2, || {
        run_cached_campaign(8, 0x0BAD, 2, &pass3, &cas, &exps(&["fig3"]), None)
    })
    .unwrap();
    assert_ne!(o3.reports[0].key, o1.reports[2].key);
    assert!(!o3.reports[0].cache_hit, "a new seed is a distinct job");
}

#[test]
fn tampered_cas_entries_are_reexecuted_and_repaired() {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cached-tamper");
    let _ = std::fs::remove_dir_all(&base);
    let cas = base.join("cas");
    let list = exps(&["fig3"]);

    let pass1 = base.join("pass1");
    let o1 = rayon::with_num_threads(1, || {
        run_cached_campaign(8, 0x5EED, 1, &pass1, &cas, &list, None)
    })
    .unwrap();
    assert!(o1.failed.is_empty());
    let key = o1.reports[0].key.clone();
    let fresh = read(&pass1.join("fig3.json"));

    // Corrupt the stored payload in place (same length, flipped byte).
    let payload = cas.join(&key).join("fig3.json");
    let mut bytes = read(&payload);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&payload, &bytes).unwrap();

    let pass2 = base.join("pass2");
    let o2 = rayon::with_num_threads(1, || {
        run_cached_campaign(8, 0x5EED, 1, &pass2, &cas, &list, None)
    })
    .unwrap();
    assert!(o2.failed.is_empty());
    assert!(
        !o2.reports[0].cache_hit,
        "integrity failure must force re-execution, not a serve"
    );
    assert_eq!(o2.reports[0].key, key, "the key is input-derived, unchanged");
    // The re-executed result matches the original bytes, and the store
    // entry is repaired.
    assert_eq!(read(&pass2.join("fig3.json")), fresh);
    assert_eq!(read(&payload), fresh);
}
