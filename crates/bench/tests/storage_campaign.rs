//! Campaign-level differential between graph storage backends: a
//! spill-mode campaign must dump byte-identical result JSON to the
//! mem-mode campaign, and the fidelity report rendered from either
//! capture must be the same document. Storage is an execution strategy;
//! nothing about it may leak into results.

use cxlg_bench::cli::run_experiments;
use cxlg_bench::ctx::ExperimentCtx;
use cxlg_bench::experiment::Experiment;
use cxlg_bench::fidelity::engine::{evaluate, Campaign};
use cxlg_bench::fidelity::report::render_markdown;
use cxlg_bench::{cache::GraphCache, registry};
use cxlg_graph::{SpillConfig, StorageMode};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Every result file a campaign wrote, keyed by file name.
fn result_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read results dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&path).expect("read result file"));
        }
    }
    out
}

#[test]
fn spill_campaign_dumps_byte_identical_results_and_fidelity() {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("storage-campaign");
    let _ = std::fs::remove_dir_all(&base);
    // The full campaign in both modes — the fidelity engine needs the
    // complete result set to load a capture. Scale 8 keeps the doubled
    // run cheap; ci.sh repeats the same byte-diff at scale 10 in
    // release.
    let exps: Vec<&dyn Experiment> = registry::all().collect();
    let run = |mode: StorageMode| {
        let dir = base.join(mode.label());
        let cache = Arc::new(GraphCache::with_storage(
            mode,
            SpillConfig::new(dir.join("graph-spill")),
        ));
        let ctx = ExperimentCtx::with_cache(8, 0x5EED, 1, dir.clone(), cache);
        let outcome =
            rayon::with_num_threads(1, || run_experiments(&ctx, &exps, None));
        assert!(outcome.failed.is_empty(), "{mode:?} failed: {:?}", outcome.failed);
        assert_eq!(ctx.graph_storage_mode(), mode);
        // The eviction plan drains the cache as experiments finish, so
        // by campaign end nothing is resident in either mode.
        assert_eq!(ctx.graph_storage_bytes(), (0, 0));
        dir
    };
    let mem_dir = run(StorageMode::Mem);
    let spill_dir = run(StorageMode::Spill);
    // Evicted spill graphs delete their files: nothing may be left
    // under the spill directory once the campaign context is gone.
    let leftovers = std::fs::read_dir(spill_dir.join("graph-spill"))
        .map(|it| it.count())
        .unwrap_or(0);
    assert_eq!(leftovers, 0, "evicted spill graphs must delete their files");

    let mem = result_bytes(&mem_dir);
    let spill = result_bytes(&spill_dir);
    assert_eq!(
        mem.keys().collect::<Vec<_>>(),
        spill.keys().collect::<Vec<_>>(),
        "both campaigns must dump the same result set"
    );
    assert!(!mem.is_empty(), "the slice must dump result JSON");
    for (name, bytes) in &mem {
        assert_eq!(
            bytes, &spill[name],
            "{name} differs between mem and spill campaigns"
        );
    }

    // The fidelity report over either capture renders the same bytes.
    let report = |dir: &Path| {
        let campaign = Campaign::load(dir).expect("load campaign");
        render_markdown(&evaluate(&campaign))
    };
    assert_eq!(report(&mem_dir), report(&spill_dir), "FIDELITY.md must be unchanged");
}
