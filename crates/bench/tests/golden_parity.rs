//! Golden parity: the legacy shim binaries and the `cxlg` driver must
//! produce byte-identical result JSON for the same environment. This is
//! the guard that keeps the two entry points from drifting apart — the
//! shims exist precisely because EXPERIMENTS.md and external scripts
//! still invoke them.

use std::path::{Path, PathBuf};
use std::process::Command;

const SCALE: &str = "9";
const THREADS: &str = "2";

fn run(bin: &str, args: &[&str], results_dir: &Path) {
    let status = Command::new(bin)
        .args(args)
        .env("CXLG_SCALE", SCALE)
        .env("RAYON_NUM_THREADS", THREADS)
        .env("CXLG_RESULTS_DIR", results_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(status.success(), "{bin} {args:?} exited with {status}");
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    // Stale results from a previous run must not mask a missing dump.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cxlg_run_matches_legacy_shims_byte_for_byte() {
    let legacy_dir = tmp("golden-legacy");
    let driver_dir = tmp("golden-driver");

    run(env!("CARGO_BIN_EXE_fig3"), &[], &legacy_dir);
    run(env!("CARGO_BIN_EXE_fig6"), &[], &legacy_dir);
    run(env!("CARGO_BIN_EXE_cxlg"), &["run", "fig3", "fig6"], &driver_dir);

    for name in ["fig3.json", "fig6.json"] {
        let legacy = std::fs::read(legacy_dir.join(name))
            .unwrap_or_else(|e| panic!("legacy {name} missing: {e}"));
        let driver = std::fs::read(driver_dir.join(name))
            .unwrap_or_else(|e| panic!("driver {name} missing: {e}"));
        assert!(
            legacy == driver,
            "{name} differs between the legacy shim and `cxlg run`"
        );
    }
}

#[test]
fn cxlg_rejects_unknown_experiments() {
    let dir = tmp("golden-unknown");
    let output = Command::new(env!("CARGO_BIN_EXE_cxlg"))
        .args(["run", "fig7"])
        .env("CXLG_SCALE", SCALE)
        .env("CXLG_RESULTS_DIR", &dir)
        .output()
        .expect("launch cxlg");
    assert!(!output.status.success(), "unknown name must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("fig7"), "stderr names the offender: {stderr}");
}

#[test]
fn cxlg_list_enumerates_the_registry() {
    let output = Command::new(env!("CARGO_BIN_EXE_cxlg"))
        .arg("list")
        .output()
        .expect("launch cxlg");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for e in cxlg_bench::registry::all() {
        assert!(
            stdout.contains(e.name()),
            "`cxlg list` omits {}",
            e.name()
        );
    }
    assert!(cxlg_bench::registry::ALL.len() >= 17);
}
