//! Golden-file fidelity: `cxlg validate` over the checked-in scale-20
//! campaign must stay clean (zero FLAG verdicts — the acceptance bar
//! for paper fidelity) and must regenerate the checked-in FIDELITY.md
//! byte for byte. Any change to the reference data, the residual
//! engine, or the report renderer that shifts a verdict or a formatted
//! cell shows up here as a diff against a reviewed artifact.

use cxlg_bench::fidelity::{evaluate, render_markdown, Campaign, Verdict};
use std::path::{Path, PathBuf};
use std::process::Command;

fn campaign_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/campaign-scale20")
}

fn golden_report_path() -> PathBuf {
    // The generated report is checked in at the repo root, where README
    // and EXPERIMENTS.md link it.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../FIDELITY.md")
}

#[test]
fn scale20_campaign_validates_with_zero_flags() {
    let campaign = Campaign::load(&campaign_dir()).expect("load checked-in campaign");
    assert_eq!(campaign.scale, 20);
    assert_eq!(campaign.seed, 0x5EED);
    let report = evaluate(&campaign);
    let flags: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.verdict == Verdict::Flag)
        .map(|f| format!("{}/{}: {} vs {}", f.figure, f.key, f.measured, f.paper))
        .collect();
    assert!(flags.is_empty(), "unexplained FLAGs at scale 20: {flags:#?}");
    // Every reproduced figure/table plus Eq. 6 is covered.
    for figure in cxlg_bench::fidelity::reference::FIGURES {
        assert!(
            report.findings.iter().any(|f| f.figure == *figure),
            "no findings for {figure}"
        );
    }
}

#[test]
fn scale20_report_matches_the_checked_in_fidelity_md() {
    let campaign = Campaign::load(&campaign_dir()).expect("load checked-in campaign");
    let rendered = render_markdown(&evaluate(&campaign));
    let golden = std::fs::read_to_string(golden_report_path()).expect("read FIDELITY.md");
    assert!(
        rendered == golden,
        "FIDELITY.md is stale — regenerate it with\n  cxlg validate \
         --campaign-dir=crates/bench/tests/data/campaign-scale20 \
         --write-report=FIDELITY.md"
    );
}

#[test]
fn cxlg_validate_binary_exits_zero_on_the_golden_campaign() {
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fidelity-golden");
    let _ = std::fs::remove_dir_all(&out_dir);
    std::fs::create_dir_all(&out_dir).unwrap();
    let report = out_dir.join("FIDELITY.md");
    let output = Command::new(env!("CARGO_BIN_EXE_cxlg"))
        .arg("validate")
        .arg(format!("--campaign-dir={}", campaign_dir().display()))
        .arg(format!("--write-report={}", report.display()))
        .output()
        .expect("launch cxlg validate");
    assert!(
        output.status.success(),
        "cxlg validate flagged the golden campaign:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("0 FLAG"), "{stdout}");
    let written = std::fs::read_to_string(&report).expect("report written");
    assert_eq!(
        written,
        std::fs::read_to_string(golden_report_path()).unwrap(),
        "binary-written report differs from the checked-in FIDELITY.md"
    );
}

#[test]
fn cxlg_validate_rejects_bad_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_cxlg"))
        .args(["validate", "--frobnicate"])
        .output()
        .expect("launch cxlg validate");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--frobnicate"), "{stderr}");
}

#[test]
fn a_tampered_campaign_is_flagged() {
    // Copy the golden campaign, corrupt one measured value past its
    // tolerance, and confirm validation turns red.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fidelity-tampered");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(campaign_dir()).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    // Fig. 10's +0 µs throughput is checked against the paper's ~5,700
    // MB/s at ±5%; halving it must FLAG.
    let fig10 = dir.join("fig10.json");
    let text = std::fs::read_to_string(&fig10).unwrap();
    let tampered = text.replacen("5692.768405135352", "2846.0", 1);
    assert_ne!(text, tampered, "expected throughput value not found");
    std::fs::write(&fig10, tampered).unwrap();

    let campaign = Campaign::load(&dir).expect("tampered campaign still parses");
    let report = evaluate(&campaign);
    assert!(!report.clean(), "halved Fig. 10 throughput must flag");
    let status = Command::new(env!("CARGO_BIN_EXE_cxlg"))
        .arg("validate")
        .arg(format!("--campaign-dir={}", dir.display()))
        .status()
        .expect("launch cxlg validate");
    assert_eq!(status.code(), Some(1));
}
