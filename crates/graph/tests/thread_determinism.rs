//! Cross-thread-count determinism of the graph pipeline.
//!
//! The vendored rayon executes on a real thread pool, but chunk
//! boundaries depend only on input length and ordered collection puts
//! every chunk's output back in input order — so the edge lists coming
//! out of every generator, and the CSR built from them, must be
//! **byte-identical** no matter how many workers run. These tests pin
//! that contract at 1, 2, and 8 threads (an undersubscribed, matched,
//! and oversubscribed pool for any CI machine), across a property sweep
//! of seeds and scales.
//!
//! This file covers the *graph* layer only. The workspace-level suite in
//! `tests/determinism.rs` and the differential harness in
//! `crates/core/tests/parallel_differential.rs` extend the same contract
//! to the parallel simulation engine and traversal (round-shard merge,
//! `RunMetrics`, and trace bytes at any worker count).

use cxlg_graph::builder::csr_from_edges;
use cxlg_graph::gen::{kronecker, social, uniform};
use cxlg_graph::{Csr, VertexId};
use proptest::prelude::*;

/// Thread counts compared against the single-threaded reference.
const THREAD_COUNTS: [usize; 2] = [2, 8];

/// Build with 1 thread, rebuild at each other pool size, and require the
/// raw CSR arrays (offsets + targets, i.e. the whole edge list) to match
/// element-for-element — `u64`/`u32` equality is byte equality.
fn assert_thread_count_invariant(label: &str, build: impl Fn() -> Csr) {
    let reference = rayon::with_num_threads(1, &build);
    for threads in THREAD_COUNTS {
        let got = rayon::with_num_threads(threads, &build);
        assert_eq!(
            got.offsets(),
            reference.offsets(),
            "{label}: CSR offsets differ between 1 and {threads} threads"
        );
        assert_eq!(
            got.targets(),
            reference.targets(),
            "{label}: edge list differs between 1 and {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn uniform_generator_is_thread_count_invariant(scale in 7u32..11, seed in 0u64..1_000_000) {
        assert_thread_count_invariant("uniform", || uniform::generate(scale, 16, seed));
    }

    #[test]
    fn kronecker_generator_is_thread_count_invariant(scale in 7u32..11, seed in 0u64..1_000_000) {
        assert_thread_count_invariant("kronecker", || kronecker::generate(scale, 16, seed));
    }

    #[test]
    fn social_generator_is_thread_count_invariant(scale in 7u32..11, seed in 0u64..1_000_000) {
        assert_thread_count_invariant("social", || social::generate(scale, 20, seed));
    }

    #[test]
    fn csr_builder_is_thread_count_invariant(seed in 0u64..1_000_000, n in 16u32..500) {
        // Raw edge pairs (with duplicates and self-loops) through the
        // pack/extend/sort path, both symmetrized and not.
        let mut state = seed | 1;
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..(n as usize * 8) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            edges.push((((state >> 33) % n as u64) as VertexId, ((state >> 13) % n as u64) as VertexId));
        }
        for (symmetrize, dedup) in [(false, false), (true, true)] {
            assert_thread_count_invariant("builder", || {
                csr_from_edges(n as usize, &edges, symmetrize, dedup)
            });
        }
    }
}

/// The generators at the exact sizes where the pool splits unevenly
/// (lengths straddling the chunk-count cap) — a directed regression net
/// under the property sweep.
#[test]
fn generators_deterministic_at_default_bench_shape() {
    assert_thread_count_invariant("urand-bench", || uniform::generate(12, 32, 0x5EED));
    assert_thread_count_invariant("kron-bench", || kronecker::generate(12, 16, 0x5EED));
    assert_thread_count_invariant("social-bench", || social::generate(12, 55, 0x5EED));
}
