//! Differential tests between the two CSR storage backends.
//!
//! The spill backend must be an *exact* stand-in for the in-memory CSR:
//! same fingerprint, same neighbor slices, same degree statistics — for
//! every generator family, at any page/segment granularity, built on
//! any thread count. These tests sweep that space with proptest and pin
//! the negative side of the file format: a corrupted or truncated spill
//! file must fail `open` with an error, never produce wrong neighbors.
//!
//! This is the bottom rung of the scale ladder toward the paper's
//! scale 27: ci.sh extends the same fingerprint gate to scales 18–22
//! through `cxlg graph-mem --storage=`.

use cxlg_graph::stats::DegreeStats;
use cxlg_graph::{Csr, CsrView, GraphSpec, SpillConfig, SpillCsr, StorageMode};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cxlg-storage-diff-{tag}-{}", std::process::id()))
}

fn cfg(tag: &str, page_len: usize, cache_pages: usize, segment_arcs: u64) -> SpillConfig {
    let mut cfg = SpillConfig::new(tmp_dir(tag));
    cfg.page_len = page_len;
    cfg.cache_pages = cache_pages;
    cfg.segment_arcs = segment_arcs;
    cfg
}

/// The full agreement contract: global shape, fingerprint, per-vertex
/// degree and neighbor slice (reassembled across page boundaries), and
/// the derived degree statistics.
fn assert_backends_agree(label: &str, mem: &Csr, spill: &SpillCsr) {
    assert_eq!(spill.num_vertices(), mem.num_vertices(), "{label}: vertex count");
    assert_eq!(spill.num_edges(), mem.num_edges(), "{label}: edge count");
    assert_eq!(spill.fingerprint(), mem.fingerprint(), "{label}: fingerprint");
    for v in 0..mem.num_vertices() as u32 {
        assert_eq!(
            CsrView::degree(spill, v),
            mem.degree(v),
            "{label}: degree of {v}"
        );
        assert_eq!(
            spill.neighbors_vec(v),
            mem.neighbors(v),
            "{label}: neighbor slice of {v}"
        );
    }
    assert_eq!(
        DegreeStats::compute(spill),
        DegreeStats::compute(mem),
        "{label}: degree stats"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random graphs × every family × random page/segment granularity ×
    /// 1/2/8 build threads all agree with the mem-built reference.
    #[test]
    fn spill_matches_mem_across_chunking_and_threads(
        family in 0u8..3,
        scale in 5u32..9,
        seed in 0u64..1_000_000,
        page_pow in 3u32..9,        // 8..=256 targets per page
        segment_arcs in 32u64..4096, // forces multi-segment builds
    ) {
        let spec = match family {
            0 => GraphSpec::urand(scale),
            1 => GraphSpec::kron(scale),
            _ => GraphSpec::friendster_like(scale),
        }
        .seed(seed);
        let mem = spec.build();
        let cfg = cfg("prop", 1 << page_pow, 2, segment_arcs);
        for threads in [1usize, 2, 8] {
            let spill = rayon::with_num_threads(threads, || {
                SpillCsr::build(&spec, &cfg).expect("spill build")
            });
            assert_backends_agree(
                &format!("{} t{threads} p{page_pow} s{segment_arcs}", spec.name()),
                &mem,
                &spill,
            );
        }
    }

    /// The enum front end routes to the same bytes as the backends it
    /// wraps, whichever mode is selected.
    #[test]
    fn storage_enum_is_mode_invariant(scale in 5u32..8, seed in 0u64..1_000_000) {
        let spec = GraphSpec::urand(scale).seed(seed);
        let cfg = cfg("enum", 64, 2, 512);
        let mem = spec.build_with(StorageMode::Mem, &cfg);
        let spill = spec.build_with(StorageMode::Spill, &cfg);
        prop_assert_eq!(mem.fingerprint(), spill.fingerprint());
        prop_assert_eq!(mem.num_vertices(), spill.num_vertices());
        prop_assert_eq!(mem.num_edges(), spill.num_edges());
        // Round-tripping the spill graph back to memory reproduces the
        // mem build exactly.
        let rebuilt = spill.to_mem();
        prop_assert_eq!(mem.as_mem().expect("mem mode holds a Csr"), &rebuilt);
    }
}

/// Every corrupted byte region — magic, header counts, checksums,
/// offsets, targets — and every truncation point must fail `open` with
/// an error. Nothing here may panic or return a graph.
#[test]
fn corrupt_and_truncated_spill_files_error_cleanly() {
    let spec = GraphSpec::urand(6).seed(3);
    let cfg = cfg("neg", 16, 2, 64);
    let dir = tmp_dir("neg");
    let built = SpillCsr::build(&spec, &cfg).expect("spill build");
    let copy = dir.join("copy.spill");
    std::fs::copy(built.path(), &copy).expect("copy spill file");
    drop(built); // deletes the original; the copy persists

    // The pristine copy opens and still matches the mem build.
    let opened = SpillCsr::open(&copy, &cfg).expect("open pristine copy");
    assert_backends_agree("reopened copy", &spec.build(), &opened);
    drop(opened); // opened (not built) spills must NOT delete their file
    assert!(copy.is_file(), "open must not take ownership of the file");

    let pristine = std::fs::read(&copy).expect("read spill bytes");
    let len = pristine.len();
    // Byte flips: magic (0), vertex count (9), header fingerprint (47),
    // first offset (48), somewhere in the offsets, first and last target
    // bytes.
    let offsets_end = 48 + (spec.build().num_vertices() + 1) * 8;
    for pos in [0, 9, 47, 48, offsets_end - 1, offsets_end, len - 1] {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0xFF;
        let bad = dir.join(format!("bad-{pos}.spill"));
        std::fs::write(&bad, &bytes).expect("write corrupted file");
        let err = SpillCsr::open(&bad, &cfg)
            .err()
            .unwrap_or_else(|| panic!("corruption at byte {pos} must fail open"));
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "byte {pos}");
        let _ = std::fs::remove_file(&bad);
    }
    // Truncations (including an empty file) and one extension: the
    // format's length is exact, so every wrong size is rejected.
    let mut extended = pristine.clone();
    extended.push(0);
    let wrong_sizes: Vec<Vec<u8>> = [0usize, 10, 47, 48, len / 2, len - 1]
        .iter()
        .map(|&cut| pristine[..cut].to_vec())
        .chain(std::iter::once(extended))
        .collect();
    for (i, bytes) in wrong_sizes.iter().enumerate() {
        let bad = dir.join(format!("short-{i}.spill"));
        std::fs::write(&bad, bytes).expect("write resized file");
        let err = SpillCsr::open(&bad, &cfg)
            .err()
            .unwrap_or_else(|| panic!("wrong file size {} must fail open", bytes.len()));
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "size {}", bytes.len());
        let _ = std::fs::remove_file(&bad);
    }
    let _ = std::fs::remove_file(&copy);
    let _ = std::fs::remove_dir(&dir);
}
