//! The streaming scatter builder against the sort-based reference.
//!
//! [`csr_from_edges`] routes every edge list through the two-pass
//! streaming builder; [`csr_from_packed_arcs`] is the retained naive
//! sort-based reference. The two must agree **bit for bit** on any
//! input, in every (symmetrize, dedup) combination — and the streaming
//! pipeline (counting, scatter, per-sublist sort) must produce the same
//! fingerprint at any thread count for all three paper generators.

use cxlg_graph::builder::{csr_from_edges, csr_from_packed_arcs, pack_arc};
use cxlg_graph::gen::{kronecker, social, uniform};
use cxlg_graph::VertexId;
use proptest::prelude::*;

/// Sort-based ground truth for an edge list.
fn reference(
    n: usize,
    edges: &[(VertexId, VertexId)],
    symmetrize: bool,
    dedup: bool,
) -> cxlg_graph::Csr {
    let mut arcs: Vec<u64> = edges.iter().map(|&(s, d)| pack_arc(s, d)).collect();
    if symmetrize {
        arcs.extend(edges.iter().map(|&(s, d)| pack_arc(d, s)));
    }
    csr_from_packed_arcs(n, arcs, dedup)
}

/// Random edge list skewed toward collisions (small vertex range,
/// duplicates, self-loops) so dedup and multi-arc handling are
/// exercised, not just the happy path.
fn random_edges(seed: u64, n: u32, len: usize) -> Vec<(VertexId, VertexId)> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (
                ((state >> 33) % n as u64) as VertexId,
                ((state >> 13) % n as u64) as VertexId,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_builder_matches_sort_reference(
        seed in 0u64..1_000_000,
        n in 1u32..400,
        len in 0usize..2000,
    ) {
        let edges = random_edges(seed, n, len);
        for symmetrize in [false, true] {
            for dedup in [false, true] {
                let streamed = csr_from_edges(n as usize, &edges, symmetrize, dedup);
                let sorted = reference(n as usize, &edges, symmetrize, dedup);
                prop_assert_eq!(streamed.offsets(), sorted.offsets());
                prop_assert_eq!(streamed.targets(), sorted.targets());
                prop_assert_eq!(streamed.fingerprint(), sorted.fingerprint());
            }
        }
    }
}

/// Fingerprint invariance across pool sizes for every generator family
/// — the whole streaming pipeline (atomic counting, scatter, sublist
/// sort, dedup compaction) must erase scheduling entirely.
#[test]
fn generator_fingerprints_are_thread_count_invariant() {
    for (label, build) in [
        ("urand", (|| uniform::generate(11, 32, 0x5EED)) as fn() -> cxlg_graph::Csr),
        ("kron", || kronecker::generate(11, 16, 0x5EED)),
        ("social", || social::generate(11, 55, 0x5EED)),
    ] {
        let reference = rayon::with_num_threads(1, build).fingerprint();
        for threads in [2, 8] {
            let got = rayon::with_num_threads(threads, build).fingerprint();
            assert_eq!(
                got, reference,
                "{label}: fingerprint differs between 1 and {threads} threads"
            );
        }
    }
}

#[test]
#[should_panic(expected = "dst 17 out of range")]
fn packed_arcs_builder_rejects_out_of_range_dst() {
    // Regression: only `src` used to be range-checked (via the last
    // sorted arc); a dst past `n` must be caught by the builder itself,
    // with a message naming the bad endpoint.
    csr_from_packed_arcs(4, vec![pack_arc(0, 1), pack_arc(2, 17)], false);
}

#[test]
#[should_panic(expected = "src 9 out of range")]
fn packed_arcs_builder_still_rejects_out_of_range_src() {
    csr_from_packed_arcs(4, vec![pack_arc(9, 1)], false);
}
