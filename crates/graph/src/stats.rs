//! Degree statistics — the quantities reported in Table 1 of the paper:
//! vertex count, edge count (and edge-list size in bytes), and average
//! degree / sublist size computed over non-isolated vertices.

use crate::layout::BYTES_PER_ID;
use crate::storage::CsrView;
use serde::{Deserialize, Serialize};

/// Summary statistics for one dataset (one row of Table 1, plus extras).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of directed edges.
    pub num_edges: u64,
    /// Edge-list size in bytes at 8 bytes per neighbor ID.
    pub edge_list_bytes: u64,
    /// Vertices with degree zero (excluded from the averages, per the
    /// Table 1 footnote).
    pub num_isolated: u64,
    /// Average degree over non-isolated vertices.
    pub avg_degree_nonzero: f64,
    /// Average edge-sublist size in bytes over non-isolated vertices
    /// (`avg_degree_nonzero * 8`).
    pub avg_sublist_bytes: f64,
    /// Largest out-degree.
    pub max_degree: u64,
    /// Median out-degree over non-isolated vertices.
    pub median_degree_nonzero: u64,
}

impl DegreeStats {
    /// Compute statistics for a CSR in any storage backend (only the
    /// resident offsets are consulted — no edge data is paged in).
    pub fn compute<G: CsrView + ?Sized>(g: &G) -> Self {
        let n = g.num_vertices() as u64;
        let m = g.num_edges();
        let mut nonzero: Vec<u64> = (0..g.num_vertices())
            .map(|v| g.degree(v as u32))
            .filter(|&d| d > 0)
            .collect();
        nonzero.sort_unstable();
        let isolated = n - nonzero.len() as u64;
        let avg = if nonzero.is_empty() {
            0.0
        } else {
            m as f64 / nonzero.len() as f64
        };
        let median = if nonzero.is_empty() {
            0
        } else {
            nonzero[nonzero.len() / 2]
        };
        DegreeStats {
            num_vertices: n,
            num_edges: m,
            edge_list_bytes: m * BYTES_PER_ID,
            num_isolated: isolated,
            avg_degree_nonzero: avg,
            avg_sublist_bytes: avg * BYTES_PER_ID as f64,
            max_degree: nonzero.last().copied().unwrap_or(0),
            median_degree_nonzero: median,
        }
    }

    /// Format as a Table 1-style row:
    /// `name | vertices | edges (size) | avg degree (sublist bytes)`.
    pub fn table1_row(&self, name: &str) -> String {
        format!(
            "{:<14} {:>12} {:>14} ({:>9}) {:>7.1} ({:>7.1} B)",
            name,
            self.num_vertices,
            self.num_edges,
            human_bytes(self.edge_list_bytes),
            self.avg_degree_nonzero,
            self.avg_sublist_bytes,
        )
    }
}

/// Render a byte count with a binary-ish decimal suffix as the paper does
/// (GB = 10^9 B).
pub fn human_bytes(b: u64) -> String {
    const UNITS: [(&str, u64); 4] = [
        ("GB", 1_000_000_000),
        ("MB", 1_000_000),
        ("kB", 1_000),
        ("B", 1),
    ];
    for (suffix, div) in UNITS {
        if b >= div {
            return format!("{:.1} {}", b as f64 / div as f64, suffix);
        }
    }
    "0 B".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::spec::GraphSpec;

    #[test]
    fn stats_on_known_graph() {
        // 4 vertices, degrees 4, 5, 1, 1, one isolated would change counts.
        let g = Csr::from_parts(vec![0, 4, 9, 10, 11], vec![3, 1, 2, 1, 3, 1, 2, 0, 2, 3, 0]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 11);
        assert_eq!(s.edge_list_bytes, 88);
        assert_eq!(s.num_isolated, 0);
        assert!((s.avg_degree_nonzero - 11.0 / 4.0).abs() < 1e-12);
        assert!((s.avg_sublist_bytes - 22.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 5);
    }

    #[test]
    fn isolated_vertices_excluded_from_average() {
        // Table 1 footnote: "0-degree vertices are excluded from the average".
        let g = Csr::from_parts(vec![0, 0, 0, 4], vec![0, 1, 2, 0]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_isolated, 2);
        assert!((s.avg_degree_nonzero - 4.0).abs() < 1e-12);
    }

    #[test]
    fn urand_average_sublist_matches_table1_shape() {
        // Table 1: urand has avg degree 32.0 => 256.0 B sublists.
        let g = GraphSpec::urand(12).seed(1).build();
        let s = DegreeStats::compute(&g);
        assert!((s.avg_degree_nonzero - 32.0).abs() < 0.5, "{}", s.avg_degree_nonzero);
        assert!((s.avg_sublist_bytes - 256.0).abs() < 4.0, "{}", s.avg_sublist_bytes);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::empty(5);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.num_isolated, 5);
        assert_eq!(s.avg_degree_nonzero, 0.0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(999), "999.0 B");
        assert_eq!(human_bytes(35_200_000_000), "35.2 GB");
        assert_eq!(human_bytes(268_000_000), "268.0 MB");
    }

    #[test]
    fn table1_row_contains_key_figures() {
        let g = GraphSpec::urand(10).seed(1).build();
        let s = DegreeStats::compute(&g);
        let row = s.table1_row("urand10");
        assert!(row.contains("urand10"));
        assert!(row.contains("1024"));
    }
}
