//! Declarative graph specification: which dataset, at what scale, with
//! what seed. The figure harnesses describe their workloads as
//! [`GraphSpec`] values so every run is reproducible from its printed
//! configuration.

use crate::csr::Csr;
use crate::gen;
use crate::storage::{CsrStorage, SpillConfig, StorageMode};
use serde::{Deserialize, Serialize};

/// Which synthetic dataset family to generate.
///
/// `Ord` is derived (variant order, then parameter) so specs can key
/// `BTreeMap`s: campaign bookkeeping must iterate in a structural
/// order, never in hash order (lint rule D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GraphKind {
    /// Uniform random graph (paper: `urand27`, avg degree 32).
    Uniform {
        /// Average directed degree.
        avg_degree: u32,
    },
    /// Kronecker / RMAT graph (paper: `kron27`, Graph500 parameters).
    Kronecker {
        /// Undirected edges per vertex before symmetrization (Graph500
        /// default 16).
        edge_factor: u32,
    },
    /// Chung–Lu power-law graph (paper: Friendster, avg degree 55).
    Social {
        /// Average directed degree target.
        avg_degree: u32,
    },
}

/// A reproducible graph description.
///
/// Ordered (kind, then scale, then seed) for the same reason as
/// [`GraphKind`]: `BTreeMap<GraphSpec, _>` gives campaign bookkeeping a
/// deterministic iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Dataset family and its degree parameter.
    pub kind: GraphKind,
    /// log2 of the vertex count.
    pub scale: u32,
    /// Generator seed.
    pub seed: u64,
}

impl GraphSpec {
    /// Uniform random graph with `2^scale` vertices.
    pub fn uniform(scale: u32, avg_degree: u32) -> Self {
        GraphSpec {
            kind: GraphKind::Uniform { avg_degree },
            scale,
            seed: 0x5EED,
        }
    }

    /// Kronecker graph with `2^scale` vertices.
    pub fn kronecker(scale: u32, edge_factor: u32) -> Self {
        GraphSpec {
            kind: GraphKind::Kronecker { edge_factor },
            scale,
            seed: 0x5EED,
        }
    }

    /// Power-law social graph with `2^scale` vertices.
    pub fn social(scale: u32, avg_degree: u32) -> Self {
        GraphSpec {
            kind: GraphKind::Social { avg_degree },
            scale,
            seed: 0x5EED,
        }
    }

    /// The paper's `urand` dataset shape (avg degree 32) at a given scale.
    pub fn urand(scale: u32) -> Self {
        Self::uniform(scale, 32)
    }

    /// The paper's `kron` dataset shape (edge factor 16) at a given scale.
    pub fn kron(scale: u32) -> Self {
        Self::kronecker(scale, 16)
    }

    /// A Friendster-like dataset shape (avg degree 55) at a given scale.
    pub fn friendster_like(scale: u32) -> Self {
        Self::social(scale, 55)
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Human-readable dataset name, mirroring the paper's convention
    /// (`urand20`, `kron20`, `friendster20`).
    pub fn name(&self) -> String {
        match self.kind {
            GraphKind::Uniform { .. } => format!("urand{}", self.scale),
            GraphKind::Kronecker { .. } => format!("kron{}", self.scale),
            GraphKind::Social { .. } => format!("friendster{}", self.scale),
        }
    }

    /// Generate the graph.
    pub fn build(&self) -> Csr {
        match self.kind {
            GraphKind::Uniform { avg_degree } => {
                gen::uniform::generate(self.scale, avg_degree, self.seed)
            }
            GraphKind::Kronecker { edge_factor } => {
                gen::kronecker::generate(self.scale, edge_factor, self.seed)
            }
            GraphKind::Social { avg_degree } => {
                gen::social::generate(self.scale, avg_degree, self.seed)
            }
        }
    }

    /// The family's regenerable arc stream — the shared input of the
    /// in-memory scatter builder and the file-backed spill builder.
    pub(crate) fn arc_stream(&self) -> gen::ArcStream {
        match self.kind {
            GraphKind::Uniform { avg_degree } => {
                gen::uniform::arc_stream(self.scale, avg_degree, self.seed)
            }
            GraphKind::Kronecker { edge_factor } => {
                gen::kronecker::arc_stream(self.scale, edge_factor, self.seed)
            }
            GraphKind::Social { avg_degree } => {
                gen::social::arc_stream(self.scale, avg_degree, self.seed)
            }
        }
    }

    /// Generate the graph into the requested storage backend. `spill`
    /// configures the file-backed backend (directory, page cache) and is
    /// ignored in [`StorageMode::Mem`].
    ///
    /// # Panics
    ///
    /// Panics if the spill file cannot be written (I/O errors during
    /// construction are unrecoverable for a campaign, like OOM in mem
    /// mode).
    pub fn build_with(&self, mode: StorageMode, spill: &SpillConfig) -> CsrStorage {
        CsrStorage::build(self, mode, spill)
    }

    /// The three paper datasets at one scale, in Table 1 order.
    pub fn paper_trio(scale: u32) -> [GraphSpec; 3] {
        [
            Self::urand(scale),
            Self::kron(scale),
            Self::friendster_like(scale),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(GraphSpec::urand(27).name(), "urand27");
        assert_eq!(GraphSpec::kron(27).name(), "kron27");
        assert_eq!(GraphSpec::friendster_like(20).name(), "friendster20");
    }

    #[test]
    fn build_dispatches_to_generators() {
        let u = GraphSpec::uniform(8, 8).seed(1).build();
        assert_eq!(u.num_vertices(), 256);
        assert_eq!(u.num_edges(), 256 * 8);
        let k = GraphSpec::kronecker(8, 8).seed(1).build();
        assert_eq!(k.num_vertices(), 256);
        let s = GraphSpec::social(8, 16).seed(1).build();
        assert_eq!(s.num_vertices(), 256);
    }

    #[test]
    fn seed_round_trips() {
        let spec = GraphSpec::urand(10).seed(777);
        assert_eq!(spec.seed, 777);
        assert_eq!(spec.build(), spec.build());
    }

    #[test]
    fn paper_trio_order() {
        let trio = GraphSpec::paper_trio(12);
        assert_eq!(trio[0].name(), "urand12");
        assert_eq!(trio[1].name(), "kron12");
        assert_eq!(trio[2].name(), "friendster12");
    }

    #[test]
    fn serde_round_trip() {
        let spec = GraphSpec::kron(14).seed(9);
        let json = serde_json::to_string(&spec).unwrap();
        let back: GraphSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
