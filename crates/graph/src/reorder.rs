//! Graph preprocessing by vertex relabeling — the Discussion section's
//! "tailored graph formats and preprocessing" direction.
//!
//! The paper notes the average transfer size `d` cannot be raised
//! arbitrarily because "increasing d beyond the average edge sublist size
//! will increase the RAF", and points to preprocessing as the way out.
//! Relabeling changes which sublists are adjacent in the edge list, and
//! with them the cross-sublist locality that the software cache and the
//! Direct block-merge exploit:
//!
//! * [`by_degree`] — hub clustering: high-degree vertices first, packing
//!   the hot sublists into few aligned blocks (GraphReduce/Graphie-style);
//! * [`by_bfs`] — traversal-order relabeling, aligning edge-list order
//!   with frontier order (the locality BFS actually sees);
//! * [`random`] — adversarial shuffling, the locality floor.

use crate::builder::csr_from_packed_arcs;
use crate::csr::Csr;
use crate::storage::CsrView;
use crate::VertexId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Apply a relabeling permutation: vertex `v` becomes `perm[v]`.
/// `perm` must be a permutation of `0..n`. The input may live in any
/// storage backend; the relabeled result is always in-memory.
pub fn relabel<G: CsrView + ?Sized>(g: &G, perm: &[VertexId]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    debug_assert!(is_permutation(perm));
    let mut arcs: Vec<u64> = Vec::with_capacity(g.num_edges() as usize);
    for v in 0..n as VertexId {
        let nv = perm[v as usize];
        g.for_neighbors(v, &mut |u| {
            arcs.push(crate::builder::pack_arc(nv, perm[u as usize]));
        });
    }
    csr_from_packed_arcs(n, arcs, false)
}

fn is_permutation(perm: &[VertexId]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if (p as usize) >= perm.len() || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

/// Relabel so the highest-degree vertices get the lowest IDs (their
/// sublists pack together at the front of the edge list).
pub fn by_degree<G: CsrView + ?Sized>(g: &G) -> Csr {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut perm = vec![0 as VertexId; n];
    for (new_id, &old) in order.iter().enumerate() {
        perm[old as usize] = new_id as VertexId;
    }
    relabel(g, &perm)
}

/// Relabel in BFS discovery order from `source`; unreached vertices keep
/// their relative order after the reached ones.
pub fn by_bfs<G: CsrView + ?Sized>(g: &G, source: VertexId) -> Csr {
    let n = g.num_vertices();
    let mut perm = vec![VertexId::MAX; n];
    let mut next_id: VertexId = 0;
    let mut frontier = vec![source];
    perm[source as usize] = 0;
    next_id += 1;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            g.for_neighbors(v, &mut |u| {
                if perm[u as usize] == VertexId::MAX {
                    perm[u as usize] = next_id;
                    next_id += 1;
                    next.push(u);
                }
            });
        }
        next.sort_unstable();
        frontier = next;
    }
    for p in perm.iter_mut() {
        if *p == VertexId::MAX {
            *p = next_id;
            next_id += 1;
        }
    }
    relabel(g, &perm)
}

/// Random relabeling — destroys any locality (the adversarial baseline).
pub fn random<G: CsrView + ?Sized>(g: &G, seed: u64) -> Csr {
    let n = g.num_vertices();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed));
    relabel(g, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GraphSpec;

    fn degree_multiset(g: &Csr) -> Vec<u64> {
        let mut d: Vec<u64> = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v))
            .collect();
        d.sort_unstable();
        d
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = GraphSpec::kron(9).seed(1).build();
        let r = by_degree(&g);
        assert_eq!(g.num_vertices(), r.num_vertices());
        assert_eq!(g.num_edges(), r.num_edges());
        assert_eq!(degree_multiset(&g), degree_multiset(&r));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn by_degree_sorts_degrees_descending() {
        let g = GraphSpec::kron(9).seed(2).build();
        let r = by_degree(&g);
        for v in 0..(r.num_vertices() as VertexId - 1) {
            assert!(
                r.degree(v) >= r.degree(v + 1),
                "degrees not descending at {v}"
            );
        }
    }

    #[test]
    fn by_bfs_discovery_ids_are_compact() {
        let g = GraphSpec::urand(8).seed(3).build();
        let r = by_bfs(&g, 0);
        assert_eq!(degree_multiset(&g), degree_multiset(&r));
        // Vertex 0 is the relabeled source; its old degree is preserved.
        assert_eq!(r.degree(0), g.degree(0));
    }

    #[test]
    fn random_relabel_preserves_multiset_and_differs() {
        let g = GraphSpec::urand(8).seed(4).build();
        let r = random(&g, 99);
        assert_eq!(degree_multiset(&g), degree_multiset(&r));
        assert_ne!(g, r, "random relabel should change the layout");
        // Deterministic per seed.
        assert_eq!(r, random(&g, 99));
    }

    #[test]
    fn relabel_preserves_adjacency_under_inverse() {
        // perm maps old->new; edge (u,v) exists iff (perm u, perm v) does.
        let g = GraphSpec::urand(7).seed(5).build();
        let n = g.num_vertices();
        let mut perm: Vec<VertexId> = (0..n as VertexId).rev().collect();
        perm.reverse();
        perm.rotate_left(3); // some permutation
        let r = relabel(&g, &perm);
        for v in 0..n as VertexId {
            for &u in g.neighbors(v) {
                assert!(
                    r.neighbors(perm[v as usize]).contains(&perm[u as usize]),
                    "edge ({v},{u}) lost"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn relabel_rejects_bad_permutation_length() {
        let g = GraphSpec::urand(6).seed(1).build();
        relabel(&g, &[0, 1, 2]);
    }
}
