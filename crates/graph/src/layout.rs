//! Byte-level layout of the edge list on external memory, and the
//! alignment arithmetic behind the paper's read-amplification analysis.
//!
//! Per Table 1, every neighbor ID occupies 8 bytes on the external device,
//! so vertex `v`'s *edge sublist* occupies bytes
//! `[8 * offsets[v], 8 * offsets[v+1])` of the edge list. When the device
//! (or cache) enforces an address alignment `a`, fetching that span costs
//! `span_aligned_bytes` — the quantity whose ratio to the useful bytes is
//! the read-amplification factor (RAF, §3.1, Figure 2).

use crate::csr::Csr;
use crate::storage::CsrView;
use crate::VertexId;
use serde::{Deserialize, Serialize};

/// Bytes per neighbor ID on the external device (Table 1 footnote).
pub const BYTES_PER_ID: u64 = 8;

/// A byte range within the external edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteSpan {
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes (may be zero for isolated vertices).
    pub len: u64,
}

impl ByteSpan {
    /// End offset (exclusive).
    #[inline]
    pub fn end(self) -> u64 {
        self.offset + self.len
    }

    /// Is this span empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Round `x` down to a multiple of `align` (power of two).
#[inline]
pub fn align_down(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    x & !(align - 1)
}

/// Round `x` up to a multiple of `align` (power of two).
#[inline]
pub fn align_up(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

/// Bytes actually fetched when reading `span` at alignment `align`
/// (Figure 2: "Read 3a to fetch Edge sublist 1"). Zero-length spans cost
/// nothing.
#[inline]
pub fn span_aligned_bytes(span: ByteSpan, align: u64) -> u64 {
    if span.is_empty() {
        return 0;
    }
    align_up(span.end(), align) - align_down(span.offset, align)
}

/// Index range of aligned blocks covering `span`: block `i` covers bytes
/// `[i * align, (i+1) * align)`.
#[inline]
pub fn span_block_range(span: ByteSpan, align: u64) -> (u64, u64) {
    if span.is_empty() {
        return (span.offset / align, span.offset / align);
    }
    (span.offset / align, (span.end() - 1) / align + 1)
}

/// Maps vertices to edge-sublist byte spans for a given CSR. Generic
/// over the storage backend (the byte math only needs offsets, which
/// every [`CsrView`] keeps resident); the default parameter keeps
/// existing `EdgeListLayout::new(&csr)` call sites unchanged.
#[derive(Debug, Clone)]
pub struct EdgeListLayout<'a, G: ?Sized = Csr> {
    csr: &'a G,
}

impl<'a, G: CsrView + ?Sized> EdgeListLayout<'a, G> {
    /// Layout view over `csr`.
    pub fn new(csr: &'a G) -> Self {
        EdgeListLayout { csr }
    }

    /// Byte span of `v`'s edge sublist.
    #[inline]
    pub fn sublist_span(&self, v: VertexId) -> ByteSpan {
        let (s, e) = self.csr.sublist_range(v);
        ByteSpan {
            offset: s * BYTES_PER_ID,
            len: (e - s) * BYTES_PER_ID,
        }
    }

    /// Total size of the edge list in bytes.
    #[inline]
    pub fn edge_list_bytes(&self) -> u64 {
        self.csr.num_edges() * BYTES_PER_ID
    }

    /// Sum of sublist sizes for a set of vertices — the useful-byte total
    /// `E` of Equation 1 for one traversal step.
    pub fn useful_bytes(&self, frontier: impl IntoIterator<Item = VertexId>) -> u64 {
        frontier
            .into_iter()
            .map(|v| self.sublist_span(v).len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_rounding() {
        assert_eq!(align_down(0, 128), 0);
        assert_eq!(align_down(127, 128), 0);
        assert_eq!(align_down(128, 128), 128);
        assert_eq!(align_up(0, 128), 0);
        assert_eq!(align_up(1, 128), 128);
        assert_eq!(align_up(128, 128), 128);
        assert_eq!(align_up(129, 128), 256);
    }

    #[test]
    fn figure2_three_alignment_blocks() {
        // A sublist spanning just over two alignment boundaries costs 3a.
        let a = 64;
        let span = ByteSpan {
            offset: 60,
            len: 100,
        }; // bytes [60, 160): blocks 0,1,2
        assert_eq!(span_aligned_bytes(span, a), 3 * a);
        assert_eq!(span_block_range(span, a), (0, 3));
    }

    #[test]
    fn aligned_span_costs_exactly_itself() {
        let span = ByteSpan {
            offset: 256,
            len: 128,
        };
        assert_eq!(span_aligned_bytes(span, 128), 128);
        assert_eq!(span_block_range(span, 128), (2, 3));
    }

    #[test]
    fn empty_span_costs_nothing() {
        let span = ByteSpan { offset: 77, len: 0 };
        assert_eq!(span_aligned_bytes(span, 512), 0);
        let (s, e) = span_block_range(span, 512);
        assert_eq!(s, e);
    }

    #[test]
    fn one_byte_span_costs_one_block() {
        let span = ByteSpan {
            offset: 4095,
            len: 1,
        };
        assert_eq!(span_aligned_bytes(span, 4096), 4096);
        assert_eq!(span_block_range(span, 4096), (0, 1));
    }

    #[test]
    fn raf_decreases_with_smaller_alignment() {
        // §3.1: "smaller alignments are better at reducing the RAF".
        let span = ByteSpan {
            offset: 1000,
            len: 256, // the paper's average sublist size for urand
        };
        let mut last = 0u64;
        for a in [8u64, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
            let cost = span_aligned_bytes(span, a);
            assert!(cost >= span.len);
            assert!(cost >= last, "cost not monotone at a={a}");
            last = cost;
        }
        // 8 B alignment on an 8 B-granular layout is exact.
        assert_eq!(
            span_aligned_bytes(ByteSpan { offset: 1000, len: 256 }, 8),
            256
        );
    }

    #[test]
    fn layout_spans_use_8_bytes_per_id() {
        let csr = Csr::from_parts(vec![0, 4, 9, 10, 11], vec![3, 1, 2, 1, 3, 1, 2, 0, 2, 3, 0]);
        let layout = EdgeListLayout::new(&csr);
        // Vertex 1's sublist is edge-list indices 4..9 -> bytes 32..72.
        let span = layout.sublist_span(1);
        assert_eq!(span.offset, 32);
        assert_eq!(span.len, 40);
        assert_eq!(span.end(), 72);
        assert_eq!(layout.edge_list_bytes(), 88);
    }

    #[test]
    fn useful_bytes_sums_frontier_sublists() {
        let csr = Csr::from_parts(vec![0, 4, 9, 10, 11], vec![3, 1, 2, 1, 3, 1, 2, 0, 2, 3, 0]);
        let layout = EdgeListLayout::new(&csr);
        assert_eq!(layout.useful_bytes([0u32, 1]), (4 + 5) * BYTES_PER_ID);
        assert_eq!(layout.useful_bytes([]), 0);
    }
}
