//! Parallel CSR construction from edge lists and regenerable arc streams.
//!
//! Two builders share the sorted-sublist invariant (each vertex's
//! neighbor sublist ascending — the spatial-locality property the
//! read-amplification results of Fig. 3 depend on):
//!
//! * [`csr_from_arc_stream`] — the **two-pass streaming scatter
//!   builder** every generator uses. The arcs are never materialized:
//!   pass 1 streams the chunks to count per-vertex out-degrees, pass 2
//!   regenerates the same chunks (generation is deterministic per
//!   `(seed, chunk)`) and scatters each `dst` directly into its
//!   pre-sized slot of the final targets array, and a parallel
//!   per-sublist sort (+ in-place dedup) restores the invariant. Peak
//!   memory is ≈ 4 B per directed arc plus the offsets/cursors arrays
//!   (16 B per vertex), versus ≈ 24 B/arc for the sort-based path
//!   (packed arcs + merge scratch + the copied-out targets), and the
//!   O(m log m) global comparison sort becomes O(m) counting + scatter
//!   plus small per-sublist sorts.
//! * [`csr_from_packed_arcs`] — the naive sort-based builder, retained
//!   as the reference implementation the property tests cross-check the
//!   streaming builder against, and for callers that already hold a
//!   materialized arc list (e.g. [`crate::reorder`]).
//!
//! Both are **bit-identical** to each other and across any
//! `RAYON_NUM_THREADS`: counting is commutative, scatter order within a
//! sublist is erased by the final per-sublist sort (duplicates are
//! identical values), and dedup of a sorted sublist is order-free.

use crate::csr::Csr;
use crate::gen::{chunk_sizes, CHUNK_EDGES};
use crate::VertexId;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Vertices per parallel work unit in the offsets scan, the per-sublist
/// sort, and the dedup compaction. Boundaries depend on `n` alone, so
/// work splitting never affects results.
const VERTEX_CHUNK: usize = 1 << 16;

/// Pack an arc into a sortable 64-bit key.
#[inline]
pub fn pack_arc(src: VertexId, dst: VertexId) -> u64 {
    (src as u64) << 32 | dst as u64
}

/// Unpack a 64-bit key back into an arc.
#[inline]
pub fn unpack_arc(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, key as VertexId)
}

/// A `*mut` target-array base shared by scatter workers. Safety rests on
/// the slot discipline, not the type: every write lands at a distinct
/// index handed out by an atomic cursor.
struct ScatterPtr(*mut VertexId);
// SAFETY: the pointer is only written through inside pass 2's scatter,
// where every slot index comes from an atomic fetch_add hand-out — two
// threads can never receive the same index, so concurrent `*base.add(slot)`
// writes are to disjoint locations and sharing the base across threads
// (Send) and by reference (Sync) is sound.
unsafe impl Send for ScatterPtr {}
// SAFETY: see the Send argument above — all concurrent access is
// write-only to disjoint, bounds-checked indices of one live Vec.
unsafe impl Sync for ScatterPtr {}

/// Build a CSR with `n` vertices from a **regenerable arc stream** — the
/// two-pass streaming scatter builder.
///
/// `stream(chunk, len, sink)` must emit, via `sink(src, dst)`, exactly
/// the directed arcs of chunk `chunk` (already including any
/// symmetrized reverse arcs), **identically on every invocation**: the
/// builder calls it once per chunk to count degrees and once more to
/// scatter, and panics if the two passes disagree. `chunks` is the
/// `(chunk_index, generator_len)` descriptor list (see
/// [`crate::gen`]); `len` is forwarded to `stream` untouched, so a
/// chunk may emit any number of arcs (symmetrization doubles, filters
/// drop).
///
/// * `dedup` — collapse duplicate arcs (the paper's kron dataset keeps
///   multiplicities out; uniform random keeps whatever the generator
///   drew).
/// * Self-loops are preserved; generators that exclude them do so at
///   drawing time.
///
/// Both endpoints of every arc are range-checked against `n` in the
/// counting pass.
pub fn csr_from_arc_stream<F>(n: usize, chunks: &[(u64, usize)], dedup: bool, stream: F) -> Csr
where
    F: Fn(u64, usize, &mut dyn FnMut(VertexId, VertexId)) + Sync,
{
    // ---- Pass 1: per-vertex out-degree counts (no arc materialization).
    // Atomic increments commute, so the counts — and everything derived
    // from them — are independent of chunk scheduling.
    let counts: Vec<AtomicU64> = std::iter::repeat_with(|| AtomicU64::new(0)).take(n).collect();
    chunks.par_iter().for_each(|&(chunk, len)| {
        stream(chunk, len, &mut |src, dst| {
            assert!((src as usize) < n, "arc with src {src} out of range (n = {n})");
            assert!((dst as usize) < n, "arc with dst {dst} out of range (n = {n})");
            counts[src as usize].fetch_add(1, Ordering::Relaxed);
        });
    });

    // Offsets by prefix sum; then repurpose `counts` as the scatter
    // cursors (each vertex's next free slot), saving an n-word array.
    let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    offsets.push(0);
    for c in &counts {
        let deg = c.swap(acc, Ordering::Relaxed); // cursor := offsets[v]
        acc += deg;
        offsets.push(acc);
    }
    let m = usize::try_from(acc).expect("arc count overflows usize");

    // ---- Pass 2: regenerate and scatter each dst into its sublist.
    // `vec![0; m]` allocates zeroed pages lazily; they are first touched
    // by the scatter writes themselves.
    let mut targets: Vec<VertexId> = vec![0; m];
    let base = ScatterPtr(targets.as_mut_ptr());
    chunks.par_iter().for_each(|&(chunk, len)| {
        let base = &base;
        stream(chunk, len, &mut |src, dst| {
            let slot = counts[src as usize].fetch_add(1, Ordering::Relaxed) as usize;
            // Memory safety even for a misbehaving stream: a slot past
            // the array is a panic, never a wild write.
            assert!(slot < m, "scatter slot {slot} out of bounds (m = {m})");
            // SAFETY: `slot` values are handed out by atomic fetch_add,
            // so no two writes share an index; `slot < m` was checked.
            unsafe { *base.0.add(slot) = dst };
        });
    });
    // Every cursor must have advanced exactly to the next offset —
    // anything else means the stream emitted different arcs in the two
    // passes, and some sublist now holds a neighbor of another vertex.
    // (Violations are gathered, not asserted, inside the parallel scan:
    // a worker-thread panic would reach the caller with its message
    // replaced by the pool's.)
    let mismatched: Vec<u64> = (0..n as u64)
        .into_par_iter()
        .filter(|&v| counts[v as usize].load(Ordering::Relaxed) != offsets[v as usize + 1])
        .collect();
    if let Some(&v) = mismatched.first() {
        panic!(
            "stream emitted different arcs across passes (vertex {v}: \
             cursor {}, expected {}; {} vertices affected)",
            counts[v as usize].load(Ordering::Relaxed),
            offsets[v as usize + 1],
            mismatched.len()
        );
    }
    drop(counts);

    // ---- Pass 3: restore the sorted-sublist invariant.
    let new_degrees = sort_sublists(&offsets, &mut targets, dedup);
    if let Some(new_degrees) = new_degrees {
        let (offsets, targets) = compact_sublists(&offsets, &targets, &new_degrees);
        return Csr::from_parts(offsets, targets);
    }
    Csr::from_parts(offsets, targets)
}

/// Carve `targets` into one `&mut` slice per [`VERTEX_CHUNK`]-sized
/// vertex range, paired with the range's first vertex. Sublist
/// boundaries never split, so the slices are disjoint and segment
/// workers can run in parallel safely; both the sort and the dedup
/// compaction carve with this so their segmentation can never drift
/// apart.
fn carve_segments<'a>(
    offsets: &[u64],
    targets: &'a mut [VertexId],
) -> Vec<(usize, &'a mut [VertexId])> {
    let n = offsets.len() - 1;
    let mut segments: Vec<(usize, &mut [VertexId])> = Vec::with_capacity(n.div_ceil(VERTEX_CHUNK));
    let mut rest = targets;
    let mut consumed = 0u64;
    for first_v in (0..n).step_by(VERTEX_CHUNK) {
        let seg_end = offsets[(first_v + VERTEX_CHUNK).min(n)];
        let (seg, tail) = rest.split_at_mut((seg_end - consumed) as usize);
        segments.push((first_v, seg));
        rest = tail;
        consumed = seg_end;
    }
    segments
}

/// Sort every vertex's sublist in place, in parallel over fixed
/// vertex-range segments. With `dedup`, each sorted sublist is also
/// deduplicated in place — unique values moved to the sublist head —
/// and the per-vertex unique counts are returned for
/// [`compact_sublists`].
fn sort_sublists(offsets: &[u64], targets: &mut [VertexId], dedup: bool) -> Option<Vec<u64>> {
    let n = offsets.len() - 1;
    let unique_counts: Vec<Vec<u64>> = carve_segments(offsets, targets)
        .into_par_iter()
        .map(|(first_v, seg)| {
            let seg_base = offsets[first_v];
            let last_v = (first_v + VERTEX_CHUNK).min(n);
            let mut uniques = Vec::with_capacity(if dedup { last_v - first_v } else { 0 });
            for v in first_v..last_v {
                let lo = (offsets[v] - seg_base) as usize;
                let hi = (offsets[v + 1] - seg_base) as usize;
                let sublist = &mut seg[lo..hi];
                sublist.sort_unstable();
                if dedup {
                    // In-place dedup of a sorted run: unique prefix of
                    // length k, tail left as garbage for the compaction
                    // pass to skip.
                    let mut k = 0;
                    for i in 0..sublist.len() {
                        if i == 0 || sublist[i] != sublist[k - 1] {
                            sublist[k] = sublist[i];
                            k += 1;
                        }
                    }
                    uniques.push(k as u64);
                }
            }
            uniques
        })
        .collect();
    dedup.then(|| unique_counts.into_iter().flatten().collect())
}

/// Rebuild `(offsets, targets)` keeping only each sublist's unique
/// prefix (as recorded by [`sort_sublists`]), in parallel over the same
/// vertex segments.
fn compact_sublists(
    offsets: &[u64],
    targets: &[VertexId],
    new_degrees: &[u64],
) -> (Vec<u64>, Vec<VertexId>) {
    let n = offsets.len() - 1;
    let mut new_offsets: Vec<u64> = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    new_offsets.push(0);
    for &d in new_degrees {
        acc += d;
        new_offsets.push(acc);
    }
    let mut new_targets: Vec<VertexId> = vec![0; acc as usize];
    let segments = carve_segments(&new_offsets, new_targets.as_mut_slice());
    segments.into_par_iter().for_each(|(first_v, seg)| {
        let mut out = 0usize;
        for v in first_v..(first_v + VERTEX_CHUNK).min(n) {
            let lo = offsets[v] as usize;
            let keep = new_degrees[v] as usize;
            seg[out..out + keep].copy_from_slice(&targets[lo..lo + keep]);
            out += keep;
        }
    });
    (new_offsets, new_targets)
}

/// Build a CSR with `n` vertices from packed arcs (see [`pack_arc`]) by
/// a global parallel sort — the **naive sort-based reference builder**.
///
/// The generators no longer use this path (they stream through
/// [`csr_from_arc_stream`]); it remains the ground truth the property
/// tests compare against, and the builder for callers holding an
/// already-materialized arc list. Semantics are identical:
///
/// * `dedup` — remove duplicate arcs.
/// * Self-loops are preserved.
/// * Both endpoints are range-checked against `n`.
pub fn csr_from_packed_arcs(n: usize, mut arcs: Vec<u64>, dedup: bool) -> Csr {
    arcs.par_sort_unstable();
    if dedup {
        arcs.dedup();
    }
    // The arcs are sorted, so the largest src is in the last arc; dst is
    // the low half of the key and is unordered, so every arc is checked.
    if let Some(&last) = arcs.last() {
        let (src, _) = unpack_arc(last);
        assert!((src as usize) < n, "arc with src {src} out of range (n = {n})");
    }
    // (Gathered, not asserted, inside the parallel scan: a worker-thread
    // panic reaches the caller with its message replaced by the pool's.)
    let bad_dsts: Vec<VertexId> = arcs
        .par_iter()
        .map(|&a| unpack_arc(a).1)
        .filter(|&dst| (dst as usize) >= n)
        .collect();
    if let Some(&dst) = bad_dsts.first() {
        panic!("arc with dst {dst} out of range (n = {n})");
    }
    // Offsets from the *sorted* arc list: `offsets[v]` is the number of
    // arcs with src < v. Fixed-size vertex chunks (boundaries depend on
    // `n` alone, keeping the result thread-count-invariant) each locate
    // their arc segment with one binary search, then walk it linearly —
    // O((n + m) / threads) overall.
    let vertex_chunks: Vec<(u64, u64)> = (0..n.div_ceil(VERTEX_CHUNK))
        .map(|i| {
            (
                (i * VERTEX_CHUNK) as u64,
                ((i + 1) * VERTEX_CHUNK).min(n) as u64,
            )
        })
        .collect();
    let mut offsets: Vec<u64> = vertex_chunks
        .par_iter()
        .flat_map_iter(|&(lo, hi)| {
            let arcs = &arcs;
            let mut pos = arcs.partition_point(|&a| (a >> 32) < lo);
            (lo..hi).map(move |v| {
                while pos < arcs.len() && (arcs[pos] >> 32) < v {
                    pos += 1;
                }
                pos as u64
            })
        })
        .collect();
    offsets.push(arcs.len() as u64);
    let targets: Vec<VertexId> = arcs.par_iter().map(|&a| unpack_arc(a).1).collect();
    Csr::from_parts(offsets, targets)
}

/// Build a CSR from `(src, dst)` pairs, optionally symmetrizing (adding
/// the reverse arc for every input arc) as the paper's datasets do for
/// undirected graphs. Routed through the streaming scatter builder —
/// the edge slice plays the role of the regenerable stream.
pub fn csr_from_edges(
    n: usize,
    edges: &[(VertexId, VertexId)],
    symmetrize: bool,
    dedup: bool,
) -> Csr {
    let chunks = chunk_sizes(edges.len() as u64);
    csr_from_arc_stream(n, &chunks, dedup, |chunk, len, sink| {
        let lo = chunk as usize * CHUNK_EDGES;
        for &(s, d) in &edges[lo..lo + len] {
            sink(s, d);
            if symmetrize {
                sink(d, s);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &(s, d) in &[(0, 0), (1, 2), (u32::MAX, 7), (123_456, u32::MAX)] {
            assert_eq!(unpack_arc(pack_arc(s, d)), (s, d));
        }
    }

    #[test]
    fn builds_sorted_sublists() {
        let edges = vec![(2, 1), (0, 3), (2, 0), (0, 1)];
        let g = csr_from_edges(4, &edges, false, false);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn symmetrize_adds_reverse_arcs() {
        let edges = vec![(0, 1), (1, 2)];
        let g = csr_from_edges(3, &edges, true, false);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let edges = vec![(0, 1), (0, 1), (0, 1), (1, 0)];
        let g = csr_from_edges(2, &edges, false, true);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn without_dedup_keeps_multiplicity() {
        let edges = vec![(0, 1), (0, 1)];
        let g = csr_from_edges(2, &edges, false, false);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn symmetrized_self_loop_dedups_to_one() {
        let edges = vec![(1, 1)];
        let g = csr_from_edges(2, &edges, true, true);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn empty_stream_yields_empty_graph() {
        let g = csr_from_arc_stream(5, &[], false, |_, _, _| {});
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn large_random_build_is_consistent() {
        // 100k arcs over 1k vertices; degree sum must equal arc count.
        let mut arcs = Vec::new();
        let mut state = 12345u64;
        for _ in 0..100_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let s = ((state >> 33) % 1000) as VertexId;
            let d = ((state >> 13) % 1000) as VertexId;
            arcs.push(pack_arc(s, d));
        }
        let g = csr_from_packed_arcs(1000, arcs, false);
        assert_eq!(g.num_edges(), 100_000);
        let degree_sum: u64 = (0..1000u32).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 100_000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn streaming_matches_sort_reference_on_a_multichunk_input() {
        // Enough edges for several generator chunks, duplicate-heavy so
        // the dedup path does real work.
        let n = 300usize;
        let mut state = 7u64;
        let edges: Vec<(VertexId, VertexId)> = (0..(3 * CHUNK_EDGES + 1234))
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (
                    ((state >> 33) % n as u64) as VertexId,
                    ((state >> 13) % n as u64) as VertexId,
                )
            })
            .collect();
        for (symmetrize, dedup) in [(false, false), (false, true), (true, false), (true, true)] {
            let streamed = csr_from_edges(n, &edges, symmetrize, dedup);
            let mut arcs: Vec<u64> = edges.iter().map(|&(s, d)| pack_arc(s, d)).collect();
            if symmetrize {
                arcs.extend(edges.iter().map(|&(s, d)| pack_arc(d, s)));
            }
            let reference = csr_from_packed_arcs(n, arcs, dedup);
            assert_eq!(
                streamed, reference,
                "streaming != sort reference (symmetrize={symmetrize}, dedup={dedup})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "src 9 out of range")]
    fn stream_rejects_out_of_range_src() {
        csr_from_arc_stream(5, &[(0, 1)], false, |_, _, sink| sink(9, 0));
    }

    #[test]
    #[should_panic(expected = "dst 9 out of range")]
    fn stream_rejects_out_of_range_dst() {
        csr_from_arc_stream(5, &[(0, 1)], false, |_, _, sink| sink(0, 9));
    }

    #[test]
    #[should_panic(expected = "different arcs across passes")]
    fn stream_rejects_nondeterministic_streams() {
        // Emits fewer arcs in the scatter pass than in the counting
        // pass: the cursor check must catch it before a corrupted CSR
        // escapes. (Emitting *more* trips the slot bounds check instead.)
        let calls = AtomicU64::new(0);
        csr_from_arc_stream(4, &[(0, 1)], false, |_, _, sink| {
            for _ in calls.fetch_add(1, Ordering::Relaxed)..2 {
                sink(1, 2);
            }
        });
    }
}
