//! Parallel CSR construction from edge lists.
//!
//! The generators produce flat `(src, dst)` arc lists; this module turns
//! them into [`Csr`] by a rayon parallel sort on a packed `src << 32 | dst`
//! key followed by a parallel partition-point scan for the per-vertex
//! offsets. Sorting also groups each vertex's
//! sublist contiguously, which is what gives real CSR edge lists their
//! spatial locality — a property the read-amplification results (Fig. 3)
//! depend on.

use crate::csr::Csr;
use crate::VertexId;
use rayon::prelude::*;

/// Pack an arc into a sortable 64-bit key.
#[inline]
pub fn pack_arc(src: VertexId, dst: VertexId) -> u64 {
    (src as u64) << 32 | dst as u64
}

/// Unpack a 64-bit key back into an arc.
#[inline]
pub fn unpack_arc(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, key as VertexId)
}

/// Build a CSR with `n` vertices from packed arcs (see [`pack_arc`]).
///
/// * `dedup` — remove duplicate arcs (the paper's kron dataset keeps
///   multiplicities out; uniform random keeps whatever the generator drew).
/// * Self-loops are preserved; generators that exclude them do so at
///   drawing time.
pub fn csr_from_packed_arcs(n: usize, mut arcs: Vec<u64>, dedup: bool) -> Csr {
    arcs.par_sort_unstable();
    if dedup {
        arcs.dedup();
    }
    // The arcs are sorted, so the largest src is in the last arc.
    if let Some(&last) = arcs.last() {
        let (src, _) = unpack_arc(last);
        assert!((src as usize) < n, "arc with src {src} out of range (n = {n})");
    }
    // Offsets from the *sorted* arc list: `offsets[v]` is the number of
    // arcs with src < v. Fixed-size vertex chunks (boundaries depend on
    // `n` alone, keeping the result thread-count-invariant) each locate
    // their arc segment with one binary search, then walk it linearly —
    // O((n + m) / threads) overall, replacing the old sequential
    // count-and-prefix-sum, which serialized on `&mut offsets`.
    const VERTEX_CHUNK: u64 = 1 << 16;
    let vertex_chunks: Vec<(u64, u64)> = (0..(n as u64).div_ceil(VERTEX_CHUNK))
        .map(|i| (i * VERTEX_CHUNK, ((i + 1) * VERTEX_CHUNK).min(n as u64)))
        .collect();
    let mut offsets: Vec<u64> = vertex_chunks
        .par_iter()
        .flat_map_iter(|&(lo, hi)| {
            let arcs = &arcs;
            let mut pos = arcs.partition_point(|&a| (a >> 32) < lo);
            (lo..hi).map(move |v| {
                while pos < arcs.len() && (arcs[pos] >> 32) < v {
                    pos += 1;
                }
                pos as u64
            })
        })
        .collect();
    offsets.push(arcs.len() as u64);
    let targets: Vec<VertexId> = arcs.par_iter().map(|&a| unpack_arc(a).1).collect();
    Csr::from_parts(offsets, targets)
}

/// Build a CSR from `(src, dst)` pairs, optionally symmetrizing (adding the
/// reverse arc for every input arc) as the paper's datasets do for
/// undirected graphs.
pub fn csr_from_edges(
    n: usize,
    edges: &[(VertexId, VertexId)],
    symmetrize: bool,
    dedup: bool,
) -> Csr {
    let mut arcs: Vec<u64> = Vec::with_capacity(edges.len() * if symmetrize { 2 } else { 1 });
    arcs.par_extend(edges.par_iter().map(|&(s, d)| pack_arc(s, d)));
    if symmetrize {
        arcs.par_extend(edges.par_iter().map(|&(s, d)| pack_arc(d, s)));
    }
    csr_from_packed_arcs(n, arcs, dedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &(s, d) in &[(0, 0), (1, 2), (u32::MAX, 7), (123_456, u32::MAX)] {
            assert_eq!(unpack_arc(pack_arc(s, d)), (s, d));
        }
    }

    #[test]
    fn builds_sorted_sublists() {
        let edges = vec![(2, 1), (0, 3), (2, 0), (0, 1)];
        let g = csr_from_edges(4, &edges, false, false);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn symmetrize_adds_reverse_arcs() {
        let edges = vec![(0, 1), (1, 2)];
        let g = csr_from_edges(3, &edges, true, false);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let edges = vec![(0, 1), (0, 1), (0, 1), (1, 0)];
        let g = csr_from_edges(2, &edges, false, true);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn without_dedup_keeps_multiplicity() {
        let edges = vec![(0, 1), (0, 1)];
        let g = csr_from_edges(2, &edges, false, false);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn symmetrized_self_loop_dedups_to_one() {
        let edges = vec![(1, 1)];
        let g = csr_from_edges(2, &edges, true, true);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn large_random_build_is_consistent() {
        // 100k arcs over 1k vertices; degree sum must equal arc count.
        let mut arcs = Vec::new();
        let mut state = 12345u64;
        for _ in 0..100_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let s = ((state >> 33) % 1000) as VertexId;
            let d = ((state >> 13) % 1000) as VertexId;
            arcs.push(pack_arc(s, d));
        }
        let g = csr_from_packed_arcs(1000, arcs, false);
        assert_eq!(g.num_edges(), 100_000);
        let degree_sum: u64 = (0..1000u32).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 100_000);
        assert!(g.validate().is_ok());
    }
}
