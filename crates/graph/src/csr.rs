//! Compressed Sparse Row representation (Figure 1 of the paper).
//!
//! The vertex list stores, per vertex, the start index of its *edge
//! sublist* in the edge list; vertex `v`'s sublist is
//! `targets[offsets[v] .. offsets[v + 1]]`. Edge weights for SSSP are not
//! stored: they are derived deterministically from the endpoint pair
//! ([`Csr::edge_weight`]), which keeps the external edge-list layout
//! exactly as the paper describes (8 bytes per neighbor ID, nothing else).

use crate::VertexId;
use serde::{Deserialize, Serialize};

/// A directed graph in CSR form. For undirected inputs both arc directions
/// are stored explicitly, matching how GAP/EMOGI materialize their
/// datasets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets`; length `n + 1`.
    offsets: Vec<u64>,
    /// Neighbor IDs, grouped by source vertex.
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build directly from the two arrays. Validates monotonicity and
    /// bounds; panics on malformed input (construction is not a hot path).
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1 >= 1");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "last offset must equal edge count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = offsets.len() - 1;
        assert!(n <= VertexId::MAX as usize, "too many vertices for u32 IDs");
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "target out of range"
        );
        Csr { offsets, targets }
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (arcs).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Edge-list index range of `v`'s sublist.
    #[inline]
    pub fn sublist_range(&self, v: VertexId) -> (u64, u64) {
        (self.offsets[v as usize], self.offsets[v as usize + 1])
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.sublist_range(v);
        &self.targets[s as usize..e as usize]
    }

    /// Raw offsets array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).into_iter()
    }

    /// Number of vertices with degree zero (excluded from the paper's
    /// average-degree figures, per the Table 1 footnote).
    pub fn num_isolated(&self) -> usize {
        (0..self.num_vertices())
            .filter(|&v| self.degree(v as VertexId) == 0)
            .count()
    }

    /// Deterministic edge weight for SSSP, in `[1, max_weight]`. Derived
    /// from the endpoints by a 64-bit mix so the same logical graph always
    /// carries the same weights without storing them.
    #[inline]
    pub fn edge_weight(&self, u: VertexId, v: VertexId, max_weight: u32) -> u32 {
        edge_weight(u, v, max_weight)
    }

    /// FNV-1a hash over the raw offsets and targets arrays — a compact
    /// identity for the whole graph. Two `Csr`s are equal iff their
    /// arrays are equal, so fingerprint equality across builders,
    /// storage backends, or thread counts is (collision-negligible)
    /// evidence of bit-identical construction; the determinism tests,
    /// the spill backend's differential gates, and the `cxlg graph-mem`
    /// probe all rely on it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for &o in &self.offsets {
            h.update(&o.to_le_bytes());
        }
        for &t in &self.targets {
            h.update(&t.to_le_bytes());
        }
        h.finish()
    }

    /// The vertex with the largest out-degree (first such on ties);
    /// `None` for an edgeless graph. Useful as a traversal source that is
    /// guaranteed to reach a large component in power-law graphs.
    pub fn max_degree_vertex(&self) -> Option<VertexId> {
        (0..self.num_vertices() as VertexId)
            .max_by_key(|&v| (self.degree(v), std::cmp::Reverse(v)))
            .filter(|&v| self.degree(v) > 0)
    }

    /// Structural sanity check used by tests and the builders: offsets
    /// monotone, targets in range. Returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("empty offsets".into());
        }
        if *self.offsets.last().unwrap() != self.targets.len() as u64 {
            return Err("last offset != edge count".into());
        }
        for (i, w) in self.offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(format!("offsets decrease at vertex {i}"));
            }
        }
        let n = self.num_vertices();
        for (i, &t) in self.targets.iter().enumerate() {
            if t as usize >= n {
                return Err(format!("target {t} out of range at index {i}"));
            }
        }
        Ok(())
    }
}

/// Deterministic edge weight for SSSP, in `[1, max_weight]` — the free
/// function behind [`Csr::edge_weight`], shared by every storage backend
/// (weights are a pure function of the endpoints, so no backend needs to
/// store them).
#[inline]
pub fn edge_weight(u: VertexId, v: VertexId, max_weight: u32) -> u32 {
    debug_assert!(max_weight >= 1);
    let mut z = ((u as u64) << 32 | v as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    1 + (z % max_weight as u64) as u32
}

/// Incremental FNV-1a 64, the workspace's graph-identity hash. The spill
/// file stores per-array checksums and the whole-graph fingerprint
/// computed with this exact state machine, so a fingerprint streamed
/// from disk is bit-comparable with [`Csr::fingerprint`].
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// Fresh hash state.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorb bytes.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }

    /// Current hash value (the state is usable after finishing).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Figure 1 of the paper: vertex 1 points to
    /// five vertices whose IDs occupy edge-list indices 4..9.
    fn figure1() -> Csr {
        // Vertex list (start indices): 0, 4, 9, 10, ... (we close with 11)
        let offsets = vec![0, 4, 9, 10, 11];
        let targets = vec![3, 1, 2, 1, 3, 1, 2, 0, 2, 3, 0];
        Csr::from_parts(offsets, targets)
    }

    #[test]
    fn figure1_sublists() {
        let g = figure1();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.sublist_range(1), (4, 9));
        assert_eq!(g.degree(1), 5);
        assert_eq!(g.neighbors(1), &[3, 1, 2, 0, 2]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_isolated(), 10);
        assert_eq!(g.max_degree_vertex(), None);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn rejects_mismatched_edge_count() {
        Csr::from_parts(vec![0, 5], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_offsets() {
        Csr::from_parts(vec![0, 3, 1, 3], vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_target() {
        Csr::from_parts(vec![0, 1], vec![5]);
    }

    #[test]
    fn isolated_vertex_count() {
        let g = Csr::from_parts(vec![0, 0, 2, 2, 3], vec![0, 2, 1]);
        assert_eq!(g.num_isolated(), 2);
        assert_eq!(g.max_degree_vertex(), Some(1));
    }

    #[test]
    fn edge_weights_are_deterministic_and_bounded() {
        let g = figure1();
        for u in 0..4u32 {
            for v in 0..4u32 {
                let w = g.edge_weight(u, v, 64);
                assert!((1..=64).contains(&w));
                assert_eq!(w, g.edge_weight(u, v, 64), "non-deterministic");
            }
        }
        // Direction matters.
        assert_ne!(g.edge_weight(0, 1, 1 << 20), g.edge_weight(1, 0, 1 << 20));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let g = figure1();
        assert_eq!(g.fingerprint(), figure1().fingerprint());
        // Any structural change moves the fingerprint.
        let other = Csr::from_parts(vec![0, 4, 9, 10, 11], vec![3, 1, 2, 1, 3, 1, 2, 0, 2, 3, 1]);
        assert_ne!(g.fingerprint(), other.fingerprint());
        assert_ne!(Csr::empty(3).fingerprint(), Csr::empty(4).fingerprint());
    }

    #[test]
    fn validate_spots_corruption() {
        let g = figure1();
        assert!(g.validate().is_ok());
        let bad = Csr {
            offsets: vec![0, 2, 1],
            targets: vec![0],
        };
        assert!(bad.validate().is_err());
    }
}
