//! Uniform random graph generator (the paper's `urand27`, from the GAP
//! benchmark suite \[2\]).
//!
//! `2^scale` vertices; undirected edges with independently uniform
//! endpoints, symmetrized into a directed CSR. `urand27` in Table 1 has
//! average degree 32 (edge factor 16), essentially no isolated vertices,
//! and a tightly concentrated (binomial) degree distribution — the
//! workload with the *least* locality, which is why the paper leads with
//! it in Figures 4 and 5.

use crate::builder::csr_from_arc_stream;
use crate::csr::Csr;
use crate::gen::{chunk_rng, chunk_sizes, ArcStream};
use crate::VertexId;
use rand::Rng;

/// The regenerable arc stream behind [`generate`], shared with the spill
/// builder so both storage backends consume identical arcs.
pub(crate) fn arc_stream(scale: u32, avg_degree: u32, seed: u64) -> ArcStream {
    assert!(scale >= 1 && scale < 32, "scale out of range: {scale}");
    assert!(avg_degree >= 1, "avg_degree must be positive");
    let n = 1usize << scale;
    let undirected = (n as u64 * avg_degree as u64) / 2;

    ArcStream {
        n,
        chunks: chunk_sizes(undirected),
        dedup: false,
        stream: Box::new(move |chunk, count, sink| {
            let mut rng = chunk_rng(seed, chunk);
            let n = n as u64;
            for _ in 0..count {
                let s = rng.gen_range(0..n) as VertexId;
                let mut d = rng.gen_range(0..n) as VertexId;
                while d == s {
                    d = rng.gen_range(0..n) as VertexId;
                }
                sink(s, d);
                sink(d, s);
            }
        }),
    }
}

/// Generate a uniform random graph with `2^scale` vertices and an average
/// *directed* degree of `avg_degree` (so `n * avg_degree / 2` undirected
/// edges before symmetrization). Self-loops are redrawn.
///
/// Edges are never materialized: each chunk's RNG stream is regenerated
/// by both passes of the streaming scatter builder, so peak memory is
/// the final CSR plus the per-vertex offset/cursor arrays.
pub fn generate(scale: u32, avg_degree: u32, seed: u64) -> Csr {
    let parts = arc_stream(scale, avg_degree, seed);
    csr_from_arc_stream(parts.n, &parts.chunks, parts.dedup, |chunk, count, sink| {
        (parts.stream)(chunk, count, sink)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_degree_target() {
        let g = generate(10, 32, 1);
        assert_eq!(g.num_vertices(), 1024);
        // Symmetrized: exactly n * avg_degree directed arcs.
        assert_eq!(g.num_edges(), 1024 * 32);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn no_self_loops() {
        let g = generate(8, 16, 7);
        for v in 0..g.num_vertices() as VertexId {
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(8, 8, 99);
        let b = generate(8, 8, 99);
        assert_eq!(a, b);
        let c = generate(8, 8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn degrees_concentrate_around_mean() {
        // Binomial-ish distribution: nearly all degrees within 3 sigma.
        let g = generate(12, 32, 3);
        let n = g.num_vertices();
        let mean = 32.0f64;
        let sigma = mean.sqrt();
        let outliers = (0..n as VertexId)
            .filter(|&v| (g.degree(v) as f64 - mean).abs() > 4.0 * sigma)
            .count();
        assert!(
            outliers < n / 100,
            "{outliers} of {n} degrees are >4 sigma from the mean"
        );
        // Essentially no isolated vertices at degree 32.
        assert!(g.num_isolated() < n / 1000);
    }

    #[test]
    fn symmetric_adjacency() {
        let g = generate(7, 8, 5);
        for v in 0..g.num_vertices() as VertexId {
            for &u in g.neighbors(v) {
                assert!(
                    g.neighbors(u).contains(&v),
                    "arc {v}->{u} has no reverse"
                );
            }
        }
    }
}
