//! Kronecker (RMAT) generator — the paper's `kron27`, from the GAP
//! benchmark suite / Graph500 reference parameters.
//!
//! Each edge picks one quadrant of the adjacency matrix per scale bit with
//! probabilities (A, B, C, D) = (0.57, 0.19, 0.19, 0.05), producing a
//! heavy-tailed degree distribution in which roughly half the vertices end
//! up isolated — which is why Table 1 reports kron27's average degree (67)
//! over non-isolated vertices only. A random vertex permutation (as in the
//! Graph500 reference implementation) removes the artificial ID locality
//! of the recursive construction.

use crate::builder::csr_from_arc_stream;
use crate::csr::Csr;
use crate::gen::{chunk_rng, chunk_sizes, ArcStream};
use crate::VertexId;
use rand::seq::SliceRandom;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Graph500 RMAT quadrant probabilities.
pub const A: f64 = 0.57;
/// Probability of the upper-right quadrant.
pub const B: f64 = 0.19;
/// Probability of the lower-left quadrant.
pub const C: f64 = 0.19;

/// Draw one RMAT edge for a graph with `scale` levels.
#[inline]
fn rmat_edge(rng: &mut SmallRng, scale: u32) -> (VertexId, VertexId) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < A {
            // upper-left: no bits set
        } else if r < A + B {
            dst |= 1;
        } else if r < A + B + C {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

/// The regenerable arc stream behind [`generate`]; the relabeling
/// permutation is built once and captured by the chunk closure.
pub(crate) fn arc_stream(scale: u32, edge_factor: u32, seed: u64) -> ArcStream {
    assert!(scale >= 1 && scale < 32, "scale out of range: {scale}");
    let n = 1usize << scale;
    let undirected = n as u64 * edge_factor as u64;

    // Random relabeling permutation, shared by all chunks.
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF));

    ArcStream {
        n,
        chunks: chunk_sizes(undirected),
        dedup: true,
        stream: Box::new(move |chunk, count, sink| {
            let mut rng = chunk_rng(seed, chunk);
            for _ in 0..count {
                let (s, d) = rmat_edge(&mut rng, scale);
                let (s, d) = (perm[s as usize], perm[d as usize]);
                sink(s, d);
                sink(d, s);
            }
        }),
    }
}

/// Generate a Kronecker graph with `2^scale` vertices and
/// `edge_factor * 2^scale` undirected edges (Graph500 default edge factor
/// is 16), symmetrized and deduplicated, with vertex IDs randomly
/// permuted.
pub fn generate(scale: u32, edge_factor: u32, seed: u64) -> Csr {
    let parts = arc_stream(scale, edge_factor, seed);
    csr_from_arc_stream(parts.n, &parts.chunks, parts.dedup, |chunk, count, sink| {
        (parts.stream)(chunk, count, sink)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_heavy_tail_and_isolated_vertices() {
        let g = generate(12, 16, 1);
        let n = g.num_vertices();
        // A sizeable fraction of vertices is isolated (paper: kron27's
        // average is computed excluding them).
        let isolated = g.num_isolated();
        assert!(
            isolated > n / 10,
            "expected many isolated vertices, got {isolated}/{n}"
        );
        // Heavy tail: max degree far above the mean.
        let mean = g.num_edges() as f64 / (n - isolated) as f64;
        let max = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max as f64 > 10.0 * mean,
            "max {max} vs mean {mean:.1} — no heavy tail?"
        );
    }

    #[test]
    fn nonzero_average_degree_is_well_above_overall() {
        // Table 1: kron27 avg degree 67 (excluding isolated) vs 31 overall.
        let g = generate(14, 16, 2);
        let n = g.num_vertices();
        let overall = g.num_edges() as f64 / n as f64;
        let nonzero = g.num_edges() as f64 / (n - g.num_isolated()) as f64;
        // At scale 27 the paper's ratio is ~2.1x; the isolated fraction
        // shrinks at small scales, so require a conservative 1.2x here.
        assert!(nonzero > 1.2 * overall, "nonzero {nonzero:.1} overall {overall:.1}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(generate(8, 8, 5), generate(8, 8, 5));
        assert_ne!(generate(8, 8, 5), generate(8, 8, 6));
    }

    #[test]
    fn symmetric_and_valid() {
        let g = generate(9, 8, 3);
        assert!(g.validate().is_ok());
        for v in 0..g.num_vertices() as VertexId {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn dedup_applied() {
        // RMAT at small scale produces many duplicate edges; after dedup
        // each (src, dst) pair appears at most once.
        let g = generate(7, 16, 9);
        for v in 0..g.num_vertices() as VertexId {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                assert!(w[0] < w[1], "duplicate or unsorted neighbor at {v}");
            }
        }
    }

    #[test]
    fn permutation_destroys_low_id_bias() {
        // Without the permutation, RMAT concentrates edges on low IDs.
        // With it, the top-degree vertex should not be vertex 0 most of
        // the time (spot check on one seed).
        let g = generate(12, 16, 4);
        let hub = g.max_degree_vertex().unwrap();
        // The hub can land anywhere; just verify edges are not all in the
        // first 1/8 of the ID space.
        let n = g.num_vertices() as u64;
        let early: u64 = (0..(n / 8) as VertexId).map(|v| g.degree(v)).sum();
        assert!(
            early < g.num_edges() / 2,
            "edges still concentrated on low IDs (hub={hub})"
        );
    }
}
