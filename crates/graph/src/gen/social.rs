//! Power-law social graph generator — the stand-in for Friendster.
//!
//! We cannot ship the 31 GB SNAP Friendster dump, so the harness uses a
//! Chung–Lu random graph whose expected-degree sequence follows a bounded
//! power law calibrated to Friendster's average degree (55.1 in Table 1).
//! Endpoints are drawn from the weight distribution via an alias table
//! (O(1) per sample), generation is chunk-parallel, and the result is
//! symmetrized and deduplicated like the real dataset. This preserves the
//! properties the paper's experiments actually exercise: a few-hundred-byte
//! average sublist, a heavy-tailed sublist-size distribution, and
//! small-world BFS frontier growth.

use crate::builder::csr_from_arc_stream;
use crate::csr::Csr;
use crate::gen::{chunk_rng, chunk_sizes, ArcStream};
use rand::Rng;

/// Walker alias table for O(1) sampling from a discrete distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized). Panics on
    /// an empty or all-zero input.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let n = weights.len();
        // cxlg-lint: allow(D4) -- sequential index-order sum over the caller's fixed weight slice; no parallel or hash-order source
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certain draws.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Draw one index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (cannot happen post-`new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

/// Expected-degree sequence: bounded power law `w_i ∝ (i + i0)^(-mu)`,
/// rescaled to hit `avg_degree` and capped to keep the Chung–Lu edge
/// probabilities sane.
fn degree_weights(n: usize, avg_degree: u32, exponent: f64) -> Vec<f64> {
    // P(deg > k) ~ k^-(exponent - 1) corresponds to w_i ~ i^(-1/(exponent-1)).
    let mu = 1.0 / (exponent - 1.0);
    let i0 = 10.0; // flattens the head so the hub is not absurdly large
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-mu)).collect();
    // cxlg-lint: allow(D4) -- sequential index-order sum over the just-built weight table; order is structural
    let sum: f64 = w.iter().sum();
    let scale = avg_degree as f64 * n as f64 / sum;
    let cap = (avg_degree as f64 * (n as f64).sqrt()).max(avg_degree as f64 * 4.0);
    for x in &mut w {
        *x = (*x * scale).min(cap);
    }
    w
}

/// Generate a Friendster-like power-law graph with `2^scale` vertices and
/// an average directed degree close to `avg_degree` (slightly lower after
/// deduplication, as in real social graphs). `exponent` is the power-law
/// exponent of the complementary degree CDF; 2.5 matches measured social
/// networks reasonably well.
pub fn generate(scale: u32, avg_degree: u32, seed: u64) -> Csr {
    generate_with_exponent(scale, avg_degree, 2.5, seed)
}

/// [`generate`] with an explicit power-law exponent.
pub fn generate_with_exponent(scale: u32, avg_degree: u32, exponent: f64, seed: u64) -> Csr {
    let parts = arc_stream_with_exponent(scale, avg_degree, exponent, seed);
    csr_from_arc_stream(parts.n, &parts.chunks, parts.dedup, |chunk, count, sink| {
        (parts.stream)(chunk, count, sink)
    })
}

/// The regenerable arc stream behind [`generate`]; the alias table is
/// built once and captured by the chunk closure.
pub(crate) fn arc_stream(scale: u32, avg_degree: u32, seed: u64) -> ArcStream {
    arc_stream_with_exponent(scale, avg_degree, 2.5, seed)
}

pub(crate) fn arc_stream_with_exponent(
    scale: u32,
    avg_degree: u32,
    exponent: f64,
    seed: u64,
) -> ArcStream {
    assert!(scale >= 1 && scale < 32, "scale out of range: {scale}");
    assert!(exponent > 1.5, "exponent too heavy: {exponent}");
    let n = 1usize << scale;
    let weights = degree_weights(n, avg_degree, exponent);
    let table = AliasTable::new(&weights);
    let undirected = (n as u64 * avg_degree as u64) / 2;

    ArcStream {
        n,
        chunks: chunk_sizes(undirected),
        dedup: true,
        stream: Box::new(move |chunk, count, sink| {
            let mut rng = chunk_rng(seed, chunk);
            for _ in 0..count {
                let s = table.sample(&mut rng);
                let mut d = table.sample(&mut rng);
                let mut tries = 0;
                while d == s && tries < 16 {
                    d = table.sample(&mut rng);
                    tries += 1;
                }
                if d == s {
                    // Pathological weight concentration; drop the edge.
                    continue;
                }
                sink(s, d);
                sink(d, s);
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn alias_table_matches_weights() {
        let weights = vec![1.0, 2.0, 4.0, 1.0];
        let t = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u64; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "category {i}: got {got:.3}, want {expected:.3}"
            );
        }
    }

    #[test]
    fn alias_table_single_category() {
        let t = AliasTable::new(&[3.0]);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn alias_table_rejects_zero_weights() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn average_degree_near_target() {
        let g = generate(12, 55, 1);
        let n = g.num_vertices();
        let avg = g.num_edges() as f64 / n as f64;
        // Dedup removes some multi-edges; expect within 25% of target.
        assert!(
            avg > 55.0 * 0.75 && avg <= 55.0 * 1.05,
            "avg degree {avg:.1}"
        );
    }

    #[test]
    fn heavy_tailed_degrees() {
        let g = generate(12, 55, 3);
        let n = g.num_vertices();
        let mean = g.num_edges() as f64 / n as f64;
        let max = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap();
        assert!(max as f64 > 8.0 * mean, "max {max} mean {mean:.1}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(8, 16, 11), generate(8, 16, 11));
        assert_ne!(generate(8, 16, 11), generate(8, 16, 12));
    }

    #[test]
    fn symmetric_and_valid() {
        let g = generate(9, 20, 4);
        assert!(g.validate().is_ok());
        for v in 0..g.num_vertices() as VertexId {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v));
            }
        }
    }
}
