//! Synthetic graph generators reproducing the degree structure of the
//! paper's datasets (Table 1) at configurable scale.
//!
//! | Paper dataset | Generator | Degree structure |
//! |---|---|---|
//! | `urand27` | [`uniform`] | uniform endpoints, avg degree 32 |
//! | `kron27` | [`kronecker`] | Graph500 RMAT (A=.57,B=.19,C=.19), heavy tail, many isolated vertices |
//! | Friendster | [`social`] | Chung–Lu power law calibrated to avg degree 55 |
//!
//! All generators are deterministic per `(seed, scale)` and parallelized
//! with rayon: edges are produced in independent chunks whose RNG streams
//! are derived from the master seed and the chunk index. That per-chunk
//! determinism is what the two-pass streaming builder
//! ([`crate::builder::csr_from_arc_stream`]) exploits — chunks are
//! *regenerated* for the counting and scatter passes instead of being
//! materialized as arc vectors, which is why graph construction peaks at
//! ≈ 4 B per directed arc instead of ≈ 24.

pub mod kronecker;
pub mod social;
pub mod uniform;

use crate::VertexId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A regenerable arc stream plus the metadata both CSR builders need:
/// the vertex count, the chunk descriptor list, and the family's dedup
/// policy. Each generator family packages its chunk closure (including
/// any per-build state such as the Kronecker permutation or the
/// Chung–Lu alias table) into one of these, so the in-memory scatter
/// builder ([`crate::builder::csr_from_arc_stream`]) and the file-backed
/// spill builder ([`crate::storage`]) consume byte-identical streams.
pub(crate) struct ArcStream {
    /// Number of vertices (`2^scale`).
    pub n: usize,
    /// `(chunk_index, generator_len)` descriptors (see [`chunk_sizes`]).
    pub chunks: Vec<(u64, usize)>,
    /// Whether duplicate arcs collapse (kron/social yes, urand no).
    pub dedup: bool,
    /// Emits chunk `chunk`'s arcs via the sink, identically on every call.
    pub stream: Box<dyn Fn(u64, usize, &mut dyn FnMut(VertexId, VertexId)) + Sync + Send>,
}

/// Edges generated per parallel chunk. Large enough to amortize thread
/// dispatch, small enough to balance across cores.
pub(crate) const CHUNK_EDGES: usize = 1 << 16;

/// Derive a chunk-local RNG from the master seed. SplitMix-style mixing of
/// the chunk index keeps streams independent.
pub(crate) fn chunk_rng(seed: u64, chunk: u64) -> SmallRng {
    let mut z = seed ^ chunk.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

/// Split a total edge count into chunk sizes.
pub(crate) fn chunk_sizes(total: u64) -> Vec<(u64, usize)> {
    let mut out = Vec::with_capacity((total / CHUNK_EDGES as u64 + 1) as usize);
    let mut remaining = total;
    let mut idx = 0u64;
    while remaining > 0 {
        let take = remaining.min(CHUNK_EDGES as u64) as usize;
        out.push((idx, take));
        remaining -= take as u64;
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn chunk_sizes_cover_total() {
        for total in [0u64, 1, 1000, CHUNK_EDGES as u64, CHUNK_EDGES as u64 * 3 + 17] {
            let chunks = chunk_sizes(total);
            let sum: u64 = chunks.iter().map(|&(_, n)| n as u64).sum();
            assert_eq!(sum, total);
            // Chunk indices are consecutive from zero.
            for (i, &(idx, _)) in chunks.iter().enumerate() {
                assert_eq!(idx, i as u64);
            }
        }
    }

    #[test]
    fn chunk_rngs_are_independent_streams() {
        let mut a = chunk_rng(42, 0);
        let mut b = chunk_rng(42, 1);
        let mut a2 = chunk_rng(42, 0);
        assert_eq!(a.next_u64(), a2.next_u64(), "same chunk must repeat");
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(collisions < 2, "streams look correlated");
    }
}
