//! Storage backends for CSR graphs — in-memory arrays or a file-backed
//! spill with demand paging — behind the [`CsrView`] accessor trait.
//!
//! The paper's headline workloads are graphs whose edge lists exceed
//! host DRAM (scale 27 ≈ 30 GB), so holding `targets` resident caps the
//! reachable scale long before the simulator does. [`SpillCsr`] keeps
//! only the offsets array (8 B/vertex) and a small page cache resident;
//! the targets live in a spill file written segment-by-segment by the
//! same two-pass streaming builder discipline as
//! [`crate::builder::csr_from_arc_stream`], so peak build RSS is bounded
//! by one segment (≈ `segment_arcs` arcs) instead of the whole edge
//! list.
//!
//! ## Spill file layout (`CXLGSPL1`)
//!
//! ```text
//! offset  size        field
//! 0       8           magic  b"CXLGSPL1"
//! 8       8           n      vertex count           (u64 LE)
//! 16      8           m      arc count              (u64 LE)
//! 24      8           offsets checksum  (FNV-1a 64 over offsets LE bytes)
//! 32      8           targets checksum  (FNV-1a 64 over targets LE bytes)
//! 40      8           fingerprint       (== Csr::fingerprint)
//! 48      (n+1)*8     offsets, u64 LE each
//! 48+(n+1)*8  m*4     targets, u32 LE each
//! ```
//!
//! Invariants enforced by [`SpillCsr::open`] (corruption is an
//! [`std::io::Error`], never UB): exact file length, monotone offsets
//! ending at `m`, every target `< n`, and all three checksums. The
//! fingerprint is computed with the byte-for-byte same FNV-1a state
//! machine as [`Csr::fingerprint`], which is what makes cross-backend
//! fingerprint equality a meaningful differential gate.

use crate::builder::{pack_arc, unpack_arc};
use crate::csr::{edge_weight, Csr, Fnv1a};
use crate::spec::GraphSpec;
use crate::VertexId;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Spill file magic bytes (version 1).
const MAGIC: [u8; 8] = *b"CXLGSPL1";
/// Fixed header size before the offsets region.
const HEADER_BYTES: u64 = 48;

/// Read-side accessor every graph consumer is written against: the
/// traversal planners, trace generators, validators, and statistics all
/// take `G: CsrView` instead of `&Csr`, so the in-memory and spill
/// backends are interchangeable at every layer.
///
/// `with_neighbors` is the streaming replacement for
/// [`Csr::neighbors`]'s whole-array borrow: the callback receives one or
/// more consecutive windows that concatenate to exactly vertex `v`'s
/// sublist (the in-memory backend yields a single zero-copy window; the
/// spill backend yields one window per cached page the sublist spans).
pub trait CsrView: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Number of directed edges (arcs).
    fn num_edges(&self) -> u64;
    /// Edge-list index range of `v`'s sublist.
    fn sublist_range(&self, v: VertexId) -> (u64, u64);
    /// Stream `v`'s neighbor sublist as consecutive windows.
    fn with_neighbors(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId]));
    /// FNV-1a identity over offsets then targets (see [`Csr::fingerprint`]).
    fn fingerprint(&self) -> u64;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> u64 {
        let (s, e) = self.sublist_range(v);
        e - s
    }

    /// Visit each neighbor of `v` in sublist order.
    fn for_neighbors(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.with_neighbors(v, &mut |w| {
            for &u in w {
                f(u);
            }
        });
    }

    /// Materialize `v`'s sublist (convenience for call sites that need a
    /// contiguous slice regardless of backend).
    fn neighbors_vec(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v) as usize);
        self.with_neighbors(v, &mut |w| out.extend_from_slice(w));
        out
    }

    /// Number of vertices with degree zero.
    fn num_isolated(&self) -> usize {
        (0..self.num_vertices())
            .filter(|&v| self.degree(v as VertexId) == 0)
            .count()
    }

    /// The vertex with the largest out-degree (first such on ties);
    /// `None` for an edgeless graph.
    fn max_degree_vertex(&self) -> Option<VertexId> {
        (0..self.num_vertices() as VertexId)
            .max_by_key(|&v| (self.degree(v), std::cmp::Reverse(v)))
            .filter(|&v| self.degree(v) > 0)
    }

    /// Deterministic SSSP edge weight (pure function of the endpoints,
    /// identical across backends — see [`crate::csr::edge_weight`]).
    fn edge_weight(&self, u: VertexId, v: VertexId, max_weight: u32) -> u32 {
        edge_weight(u, v, max_weight)
    }
}

impl CsrView for Csr {
    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        Csr::num_edges(self)
    }

    fn sublist_range(&self, v: VertexId) -> (u64, u64) {
        Csr::sublist_range(self, v)
    }

    fn with_neighbors(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) {
        f(self.neighbors(v));
    }

    fn fingerprint(&self) -> u64 {
        Csr::fingerprint(self)
    }

    fn degree(&self, v: VertexId) -> u64 {
        Csr::degree(self, v)
    }

    fn num_isolated(&self) -> usize {
        Csr::num_isolated(self)
    }

    fn max_degree_vertex(&self) -> Option<VertexId> {
        Csr::max_degree_vertex(self)
    }
}

macro_rules! forward_csr_view {
    () => {
        fn num_vertices(&self) -> usize {
            (**self).num_vertices()
        }
        fn num_edges(&self) -> u64 {
            (**self).num_edges()
        }
        fn sublist_range(&self, v: VertexId) -> (u64, u64) {
            (**self).sublist_range(v)
        }
        fn with_neighbors(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) {
            (**self).with_neighbors(v, f)
        }
        fn fingerprint(&self) -> u64 {
            (**self).fingerprint()
        }
        fn degree(&self, v: VertexId) -> u64 {
            (**self).degree(v)
        }
        fn for_neighbors(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
            (**self).for_neighbors(v, f)
        }
        fn neighbors_vec(&self, v: VertexId) -> Vec<VertexId> {
            (**self).neighbors_vec(v)
        }
        fn num_isolated(&self) -> usize {
            (**self).num_isolated()
        }
        fn max_degree_vertex(&self) -> Option<VertexId> {
            (**self).max_degree_vertex()
        }
    };
}

impl<T: CsrView + ?Sized> CsrView for &T {
    forward_csr_view!();
}

impl<T: CsrView + Send + ?Sized> CsrView for Arc<T> {
    forward_csr_view!();
}

/// Which storage backend a graph build should target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum StorageMode {
    /// Offsets and targets fully resident (the historical behavior).
    #[default]
    Mem,
    /// Offsets resident, targets demand-paged from a spill file.
    Spill,
}

impl StorageMode {
    /// Parse a CLI/env value (`mem` | `spill`).
    pub fn parse(s: &str) -> Option<StorageMode> {
        match s {
            "mem" => Some(StorageMode::Mem),
            "spill" => Some(StorageMode::Spill),
            _ => None,
        }
    }

    /// Stable lower-case label (`mem` | `spill`).
    pub fn label(self) -> &'static str {
        match self {
            StorageMode::Mem => "mem",
            StorageMode::Spill => "spill",
        }
    }
}

/// Configuration of the file-backed spill backend.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory the spill (and transient bucket) files live in; created
    /// on demand.
    pub dir: PathBuf,
    /// Targets per demand-paged cache page (bytes per page = 4×this).
    pub page_len: usize,
    /// Maximum resident pages; the cache evicts least-recently-used
    /// beyond this.
    pub cache_pages: usize,
    /// Build-time segment size in counted arcs — the spill builder's
    /// peak working set is one segment (≈ 12 B per arc: the 8 B packed
    /// arc buffer plus the 4 B scatter buffer). A single vertex whose
    /// degree exceeds this gets a segment of its own.
    pub segment_arcs: u64,
}

impl SpillConfig {
    /// Defaults: 64 Ki targets per page (256 KB), 8 cached pages (2 MB),
    /// 1 Mi-arc build segments (≈ 12 MB working set) — sized so a
    /// scale-18 spill build fits the CI gate's 4 B/arc peak-RSS budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            page_len: 1 << 16,
            cache_pages: 8,
            segment_arcs: 1 << 20,
        }
    }

    /// Resident budget of the page cache when full.
    pub fn page_cache_bytes(&self) -> u64 {
        self.cache_pages as u64 * self.page_len as u64 * 4
    }

    /// Estimated peak transient working set of the spill builder.
    pub fn build_working_bytes(&self) -> u64 {
        self.segment_arcs.saturating_mul(12)
    }

    /// Resident overhead beyond the offsets array — what an admission
    /// gate should budget for a spill-mode graph in addition to
    /// 8 B/vertex.
    pub fn resident_overhead_bytes(&self) -> u64 {
        self.page_cache_bytes()
            .saturating_add(self.build_working_bytes())
    }
}

/// Process-unique suffix for spill filenames, so concurrent builds of
/// the same spec (e.g. parallel tests in one process) never collide.
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// One LRU-tracked page of decoded targets.
#[derive(Debug)]
struct CacheEntry {
    tick: u64,
    data: Arc<Vec<VertexId>>,
}

/// A CSR whose targets array lives in a spill file, demand-paged through
/// a bounded LRU cache. Offsets stay resident (8 B/vertex); the resident
/// footprint is therefore `8(n+1) + 4·page_len·cache_pages` bytes
/// regardless of edge count.
#[derive(Debug)]
pub struct SpillCsr {
    /// Resident offsets, length `n + 1`.
    offsets: Vec<u64>,
    file: Mutex<File>,
    path: PathBuf,
    /// Byte offset of the targets region.
    data_start: u64,
    num_targets: u64,
    fingerprint: u64,
    page_len: usize,
    cache_pages: usize,
    cache: Mutex<BTreeMap<u64, CacheEntry>>,
    tick: AtomicU64,
    /// Built spills own (and delete) their file; opened ones do not.
    owns_file: bool,
}

impl SpillCsr {
    /// Build `spec`'s graph directly into a spill file under
    /// `cfg.dir`, never materializing the full targets array. The file
    /// is deleted when the returned value drops.
    pub fn build(spec: &GraphSpec, cfg: &SpillConfig) -> io::Result<SpillCsr> {
        let parts = spec.arc_stream();
        fs::create_dir_all(&cfg.dir)?;
        let path = cfg.dir.join(format!(
            "{}-s{:x}-p{}-{}.spill",
            spec.name(),
            spec.seed,
            std::process::id(),
            SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        spill_from_arc_stream(
            parts.n,
            &parts.chunks,
            parts.dedup,
            parts.stream.as_ref(),
            cfg,
            path,
        )
    }

    /// Open and fully verify an existing spill file (magic, exact
    /// length, monotone offsets, in-range targets, all checksums).
    /// Corruption and truncation are reported as errors — an opened
    /// `SpillCsr` is as trustworthy as a freshly built one. The file is
    /// *not* deleted on drop.
    pub fn open(path: &Path, cfg: &SpillConfig) -> io::Result<SpillCsr> {
        let mut f = File::open(path)?;
        let file_len = f.metadata()?.len();
        let mut header = [0u8; HEADER_BYTES as usize];
        f.read_exact(&mut header)
            .map_err(|_| bad_data("spill file shorter than its header"))?;
        if header[..8] != MAGIC {
            return Err(bad_data("not a cxlg spill file (bad magic)"));
        }
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().unwrap());
        let (n, m) = (word(1), word(2));
        let (offsets_fnv, targets_fnv, fingerprint) = (word(3), word(4), word(5));
        if n > VertexId::MAX as u64 {
            return Err(bad_data("implausible vertex count in spill header"));
        }
        let expected_len = (n + 1)
            .checked_mul(8)
            .and_then(|o| m.checked_mul(4).map(|t| (o, t)))
            .and_then(|(o, t)| HEADER_BYTES.checked_add(o)?.checked_add(t))
            .ok_or_else(|| bad_data("implausible sizes in spill header"))?;
        if file_len != expected_len {
            return Err(bad_data(&format!(
                "spill file truncated or oversized: {file_len} bytes, expected {expected_len}"
            )));
        }

        // Offsets region: monotone, closing at m, checksummed.
        let mut reader = BufReader::with_capacity(1 << 20, &mut f);
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut fp = Fnv1a::new();
        let mut off_h = Fnv1a::new();
        let mut word_buf = [0u8; 8];
        let mut prev = 0u64;
        for i in 0..=n {
            reader.read_exact(&mut word_buf)?;
            fp.update(&word_buf);
            off_h.update(&word_buf);
            let o = u64::from_le_bytes(word_buf);
            if i > 0 && o < prev {
                return Err(bad_data("spill offsets are not non-decreasing"));
            }
            prev = o;
            offsets.push(o);
        }
        if prev != m {
            return Err(bad_data("last spill offset does not equal the arc count"));
        }
        if off_h.finish() != offsets_fnv {
            return Err(bad_data("spill offsets checksum mismatch"));
        }

        // Targets region: in-range, checksummed, fingerprint-closing.
        let tgt_fnv = hash_targets(&mut reader, m, n, &mut fp)?;
        if tgt_fnv != targets_fnv {
            return Err(bad_data("spill targets checksum mismatch"));
        }
        if fp.finish() != fingerprint {
            return Err(bad_data("spill fingerprint mismatch"));
        }
        drop(reader);

        Ok(SpillCsr {
            offsets,
            file: Mutex::new(f),
            path: path.to_path_buf(),
            data_start: HEADER_BYTES + (n + 1) * 8,
            num_targets: m,
            fingerprint,
            page_len: cfg.page_len.max(1),
            cache_pages: cfg.cache_pages.max(1),
            cache: Mutex::new(BTreeMap::new()),
            tick: AtomicU64::new(0),
            owns_file: false,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (arcs).
    pub fn num_edges(&self) -> u64 {
        self.num_targets
    }

    /// Edge-list index range of `v`'s sublist.
    pub fn sublist_range(&self, v: VertexId) -> (u64, u64) {
        (self.offsets[v as usize], self.offsets[v as usize + 1])
    }

    /// The fingerprint computed (and verified) at build/open time —
    /// byte-identical to [`Csr::fingerprint`] of the same graph.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Resident footprint: offsets plus the full page-cache budget.
    pub fn resident_bytes(&self) -> u64 {
        self.offsets.len() as u64 * 8 + self.cache_pages as u64 * self.page_len as u64 * 4
    }

    /// Size of the spill file on disk.
    pub fn on_disk_bytes(&self) -> u64 {
        self.data_start + self.num_targets * 4
    }

    /// Path of the spill file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fully materialize into an in-memory [`Csr`]. This deliberately
    /// defeats the point of spilling — it is for preprocessing paths
    /// (relabeling studies) that need resident arrays, not for
    /// traversal.
    pub fn to_mem(&self) -> Csr {
        let mut targets: Vec<VertexId> = Vec::with_capacity(self.num_targets as usize);
        let pages = self.num_targets.div_ceil(self.page_len as u64);
        for p in 0..pages {
            targets.extend_from_slice(&self.page(p));
        }
        Csr::from_parts(self.offsets.clone(), targets)
    }

    /// Fetch (or page in) one cache page of targets.
    ///
    /// # Panics
    ///
    /// Panics on a post-open read failure: the file was fully verified
    /// at build/open, so a failing read mid-traversal is an environment
    /// failure (file deleted, disk gone), unrecoverable like OOM.
    fn page(&self, idx: u64) -> Arc<Vec<VertexId>> {
        {
            let mut cache = self.cache.lock().unwrap();
            if let Some(e) = cache.get_mut(&idx) {
                e.tick = self.tick.fetch_add(1, Ordering::Relaxed);
                return e.data.clone();
            }
        }
        // Read outside the cache lock; a concurrent miss on the same
        // page just reads it twice and both insert identical data.
        let start = idx * self.page_len as u64;
        let len = (self.num_targets.min(start + self.page_len as u64) - start) as usize;
        let mut bytes = vec![0u8; len * 4];
        {
            let mut f = self.file.lock().unwrap();
            f.seek(SeekFrom::Start(self.data_start + start * 4))
                .unwrap_or_else(|e| panic!("seek in spill file {}: {e}", self.path.display()));
            f.read_exact(&mut bytes)
                .unwrap_or_else(|e| panic!("read from spill file {}: {e}", self.path.display()));
        }
        let data: Arc<Vec<VertexId>> = Arc::new(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        );
        let mut cache = self.cache.lock().unwrap();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        cache.insert(
            idx,
            CacheEntry {
                tick,
                data: data.clone(),
            },
        );
        while cache.len() > self.cache_pages {
            // LRU eviction by explicit tick; BTreeMap iteration order is
            // structural and the tie-break is the page index (D1-safe).
            let victim = cache
                .iter()
                .min_by_key(|(k, e)| (e.tick, **k))
                .map(|(k, _)| *k)
                .expect("non-empty cache");
            cache.remove(&victim);
        }
        data
    }
}

impl Drop for SpillCsr {
    fn drop(&mut self) {
        if self.owns_file {
            let _ = fs::remove_file(&self.path);
        }
    }
}

impl CsrView for SpillCsr {
    fn num_vertices(&self) -> usize {
        SpillCsr::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        SpillCsr::num_edges(self)
    }

    fn sublist_range(&self, v: VertexId) -> (u64, u64) {
        SpillCsr::sublist_range(self, v)
    }

    fn with_neighbors(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) {
        let (s, e) = self.sublist_range(v);
        let mut pos = s;
        while pos < e {
            let page_idx = pos / self.page_len as u64;
            let page = self.page(page_idx);
            let page_base = page_idx * self.page_len as u64;
            let lo = (pos - page_base) as usize;
            let hi = ((e - page_base) as usize).min(page.len());
            f(&page[lo..hi]);
            pos = page_base + hi as u64;
        }
    }

    fn fingerprint(&self) -> u64 {
        SpillCsr::fingerprint(self)
    }
}

/// A graph in either storage backend. This is what the campaign cache
/// holds; every consumer goes through [`CsrView`] (or the mirroring
/// inherent methods) and never sees which backend it got.
#[derive(Debug)]
pub enum CsrStorage {
    /// Fully resident arrays.
    Mem(Csr),
    /// File-backed demand-paged targets.
    Spill(SpillCsr),
}

impl CsrStorage {
    /// Build `spec` into the requested backend.
    ///
    /// # Panics
    ///
    /// Panics if the spill build hits an I/O error (unrecoverable for a
    /// campaign, like OOM in mem mode).
    pub fn build(spec: &GraphSpec, mode: StorageMode, spill: &SpillConfig) -> CsrStorage {
        match mode {
            StorageMode::Mem => CsrStorage::Mem(spec.build()),
            StorageMode::Spill => CsrStorage::Spill(
                SpillCsr::build(spec, spill)
                    .unwrap_or_else(|e| panic!("spill build for {} failed: {e}", spec.name())),
            ),
        }
    }

    /// Which backend this graph lives in.
    pub fn storage_mode(&self) -> StorageMode {
        match self {
            CsrStorage::Mem(_) => StorageMode::Mem,
            CsrStorage::Spill(_) => StorageMode::Spill,
        }
    }

    /// The in-memory CSR, if this is the mem backend.
    pub fn as_mem(&self) -> Option<&Csr> {
        match self {
            CsrStorage::Mem(g) => Some(g),
            CsrStorage::Spill(_) => None,
        }
    }

    /// Fully materialize into an in-memory [`Csr`] (a clone for the mem
    /// backend, a streaming read-back for spill). For preprocessing
    /// paths that need resident arrays; traversal should stay on the
    /// [`CsrView`] accessors.
    pub fn to_mem(&self) -> Csr {
        match self {
            CsrStorage::Mem(g) => g.clone(),
            CsrStorage::Spill(s) => s.to_mem(),
        }
    }

    /// Resident footprint in bytes: full arrays for mem, offsets plus
    /// the page-cache budget for spill.
    pub fn resident_bytes(&self) -> u64 {
        match self {
            CsrStorage::Mem(g) => (g.num_vertices() as u64 + 1) * 8 + g.num_edges() * 4,
            CsrStorage::Spill(s) => s.resident_bytes(),
        }
    }

    /// Bytes on disk: 0 for mem, the spill file size for spill.
    pub fn on_disk_bytes(&self) -> u64 {
        match self {
            CsrStorage::Mem(_) => 0,
            CsrStorage::Spill(s) => s.on_disk_bytes(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        match self {
            CsrStorage::Mem(g) => g.num_vertices(),
            CsrStorage::Spill(s) => s.num_vertices(),
        }
    }

    /// Number of directed edges (arcs).
    pub fn num_edges(&self) -> u64 {
        match self {
            CsrStorage::Mem(g) => g.num_edges(),
            CsrStorage::Spill(s) => s.num_edges(),
        }
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u64 {
        let (s, e) = self.sublist_range(v);
        e - s
    }

    /// Edge-list index range of `v`'s sublist.
    pub fn sublist_range(&self, v: VertexId) -> (u64, u64) {
        match self {
            CsrStorage::Mem(g) => g.sublist_range(v),
            CsrStorage::Spill(s) => s.sublist_range(v),
        }
    }

    /// Backend-verified graph fingerprint (== [`Csr::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        match self {
            CsrStorage::Mem(g) => g.fingerprint(),
            CsrStorage::Spill(s) => s.fingerprint(),
        }
    }

    /// The vertex with the largest out-degree (ties broken low).
    pub fn max_degree_vertex(&self) -> Option<VertexId> {
        match self {
            CsrStorage::Mem(g) => g.max_degree_vertex(),
            CsrStorage::Spill(s) => CsrView::max_degree_vertex(s),
        }
    }

    /// Number of vertices with degree zero.
    pub fn num_isolated(&self) -> usize {
        match self {
            CsrStorage::Mem(g) => g.num_isolated(),
            CsrStorage::Spill(s) => CsrView::num_isolated(s),
        }
    }

    /// Materialized neighbor sublist of `v`.
    pub fn neighbors_vec(&self, v: VertexId) -> Vec<VertexId> {
        match self {
            CsrStorage::Mem(g) => g.neighbors(v).to_vec(),
            CsrStorage::Spill(s) => CsrView::neighbors_vec(s, v),
        }
    }

    /// Deterministic SSSP edge weight (see [`crate::csr::edge_weight`]).
    pub fn edge_weight(&self, u: VertexId, v: VertexId, max_weight: u32) -> u32 {
        edge_weight(u, v, max_weight)
    }
}

impl CsrView for CsrStorage {
    fn num_vertices(&self) -> usize {
        CsrStorage::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        CsrStorage::num_edges(self)
    }

    fn sublist_range(&self, v: VertexId) -> (u64, u64) {
        CsrStorage::sublist_range(self, v)
    }

    fn with_neighbors(&self, v: VertexId, f: &mut dyn FnMut(&[VertexId])) {
        match self {
            CsrStorage::Mem(g) => f(g.neighbors(v)),
            CsrStorage::Spill(s) => s.with_neighbors(v, f),
        }
    }

    fn fingerprint(&self) -> u64 {
        CsrStorage::fingerprint(self)
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Stream `m` targets out of `reader`, feeding both the standalone
/// targets checksum and the running whole-graph fingerprint, and
/// rejecting any target `>= n`. Shared by the build finalizer and
/// [`SpillCsr::open`] so they enforce identical invariants.
fn hash_targets(reader: &mut impl Read, m: u64, n: u64, fp: &mut Fnv1a) -> io::Result<u64> {
    let mut tgt_h = Fnv1a::new();
    let mut buf = [0u8; 1 << 16];
    let mut remaining = m * 4;
    while remaining > 0 {
        let take = (buf.len() as u64).min(remaining) as usize;
        reader.read_exact(&mut buf[..take])?;
        for c in buf[..take].chunks_exact(4) {
            if u32::from_le_bytes(c.try_into().unwrap()) as u64 >= n {
                return Err(bad_data("spill target out of range"));
            }
        }
        tgt_h.update(&buf[..take]);
        fp.update(&buf[..take]);
        remaining -= take as u64;
    }
    Ok(tgt_h.finish())
}

/// The spill builder — the out-of-core sibling of
/// [`crate::builder::csr_from_arc_stream`], with the same stream
/// contract (identical arcs on every invocation, panics on drift) and
/// the same sorted-sublist/dedup semantics, but bounded peak memory:
///
/// 1. **Count** — stream all chunks in parallel, atomic per-vertex
///    out-degrees (identical to the in-memory pass 1).
/// 2. **Partition** — carve vertices into contiguous segments of at
///    most `segment_arcs` counted arcs, then stream all chunks again,
///    appending each packed arc to its segment's bucket file. Bucket
///    write order is thread-dependent; the per-sublist sort erases it.
/// 3. **Collate** — per segment in vertex order: read the bucket back,
///    scatter into a segment-local buffer (auditing the counts from
///    pass 1), sort each sublist (+ dedup), append the surviving
///    targets to the spill file, delete the bucket.
///
/// The fingerprint is then computed by hashing the final offsets and
/// re-reading the written targets region — the same verification
/// [`SpillCsr::open`] performs, so a freshly built spill is already
/// checked end to end.
fn spill_from_arc_stream(
    n: usize,
    chunks: &[(u64, usize)],
    dedup: bool,
    stream: &(dyn Fn(u64, usize, &mut dyn FnMut(VertexId, VertexId)) + Sync),
    cfg: &SpillConfig,
    path: PathBuf,
) -> io::Result<SpillCsr> {
    // ---- Pass 1: per-vertex out-degree counts (identical to the
    // in-memory builder's counting pass).
    let counts: Vec<AtomicU64> = std::iter::repeat_with(|| AtomicU64::new(0)).take(n).collect();
    chunks.par_iter().for_each(|&(chunk, len)| {
        stream(chunk, len, &mut |src, dst| {
            assert!((src as usize) < n, "arc with src {src} out of range (n = {n})");
            assert!((dst as usize) < n, "arc with dst {dst} out of range (n = {n})");
            counts[src as usize].fetch_add(1, Ordering::Relaxed);
        });
    });
    let mut counted_offsets: Vec<u64> = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    counted_offsets.push(0);
    for c in &counts {
        acc += c.load(Ordering::Relaxed);
        counted_offsets.push(acc);
    }
    drop(counts);

    // Segment boundaries: contiguous vertex ranges of at most
    // `segment_arcs` counted arcs (an over-budget vertex gets its own
    // segment). Boundaries depend only on the counts, never on thread
    // scheduling.
    let segment_arcs = cfg.segment_arcs.max(1);
    let mut seg_bounds: Vec<usize> = vec![0];
    let mut v = 0usize;
    while v < n {
        let limit = counted_offsets[v].saturating_add(segment_arcs);
        let w = counted_offsets
            .partition_point(|&o| o <= limit)
            .saturating_sub(1)
            .clamp(v + 1, n);
        seg_bounds.push(w);
        v = w;
    }
    let num_segs = seg_bounds.len() - 1;
    let seg_of = |src: VertexId| seg_bounds.partition_point(|&b| b <= src as usize) - 1;

    // ---- Pass 2: partition the regenerated arcs into per-segment
    // bucket files (packed u64 LE). Per-chunk local buffers keep bucket
    // writes large and the writer locks uncontended.
    fs::create_dir_all(&cfg.dir)?;
    let bucket_paths: Vec<PathBuf> = (0..num_segs)
        .map(|s| path.with_extension(format!("bucket{s}")))
        .collect();
    let writers: Vec<Mutex<BufWriter<File>>> = bucket_paths
        .iter()
        .map(|p| File::create(p).map(|f| Mutex::new(BufWriter::with_capacity(1 << 16, f))))
        .collect::<io::Result<_>>()?;
    let io_fail: Mutex<Option<io::Error>> = Mutex::new(None);
    chunks.par_iter().for_each(|&(chunk, len)| {
        let mut local: Vec<Vec<u8>> = vec![Vec::new(); num_segs];
        stream(chunk, len, &mut |src, dst| {
            assert!((src as usize) < n, "arc with src {src} out of range (n = {n})");
            assert!((dst as usize) < n, "arc with dst {dst} out of range (n = {n})");
            local[seg_of(src)].extend_from_slice(&pack_arc(src, dst).to_le_bytes());
        });
        for (s, buf) in local.iter().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let mut w = writers[s].lock().unwrap();
            if let Err(e) = w.write_all(buf) {
                io_fail.lock().unwrap().get_or_insert(e);
            }
        }
    });
    for w in writers {
        w.into_inner()
            .unwrap()
            .into_inner()
            .map_err(|e| e.into_error())?
            .sync_data()
            .or(Ok::<(), io::Error>(()))?;
    }
    if let Some(e) = io_fail.into_inner().unwrap() {
        return Err(e);
    }

    // ---- Pass 3: collate each segment in vertex order and append the
    // sorted (and optionally deduplicated) sublists to the spill file.
    let data_start = HEADER_BYTES + (n as u64 + 1) * 8;
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    file.set_len(data_start)?;
    file.seek(SeekFrom::Start(data_start))?;
    let mut out = BufWriter::with_capacity(1 << 20, &mut file);
    let mut final_degrees: Vec<u64> = vec![0; n];
    for s in 0..num_segs {
        let (first, last) = (seg_bounds[s], seg_bounds[s + 1]);
        let seg_base = counted_offsets[first];
        let seg_len = (counted_offsets[last] - seg_base) as usize;
        let bytes = fs::read(&bucket_paths[s])?;
        if bytes.len() != seg_len * 8 {
            panic!(
                "stream emitted different arcs across passes (segment {s}: \
                 {} arcs on disk, counted {seg_len})",
                bytes.len() / 8
            );
        }
        let mut cursors: Vec<u64> = counted_offsets[first..last]
            .iter()
            .map(|&o| o - seg_base)
            .collect();
        let mut seg_targets: Vec<VertexId> = vec![0; seg_len];
        for a in bytes.chunks_exact(8) {
            let (src, dst) = unpack_arc(u64::from_le_bytes(a.try_into().unwrap()));
            let sv = src as usize;
            assert!(
                (first..last).contains(&sv),
                "stream emitted different arcs across passes \
                 (arc source {src} outside segment {first}..{last})"
            );
            let slot = cursors[sv - first];
            assert!(
                slot < counted_offsets[sv + 1] - seg_base,
                "stream emitted different arcs across passes \
                 (vertex {src}: more arcs than counted)"
            );
            cursors[sv - first] += 1;
            seg_targets[slot as usize] = dst;
        }
        for v in first..last {
            if cursors[v - first] != counted_offsets[v + 1] - seg_base {
                panic!(
                    "stream emitted different arcs across passes \
                     (vertex {v}: fewer arcs than counted)"
                );
            }
        }
        drop(bytes);
        for v in first..last {
            let lo = (counted_offsets[v] - seg_base) as usize;
            let hi = (counted_offsets[v + 1] - seg_base) as usize;
            let sublist = &mut seg_targets[lo..hi];
            sublist.sort_unstable();
            let keep = if dedup {
                // In-place dedup of a sorted run, as in the in-memory
                // builder's pass 3.
                let mut k = 0;
                for i in 0..sublist.len() {
                    if i == 0 || sublist[i] != sublist[k - 1] {
                        sublist[k] = sublist[i];
                        k += 1;
                    }
                }
                k
            } else {
                sublist.len()
            };
            final_degrees[v] = keep as u64;
            for &t in &sublist[..keep] {
                out.write_all(&t.to_le_bytes())?;
            }
        }
        fs::remove_file(&bucket_paths[s])?;
    }
    out.flush()?;
    drop(out);

    // ---- Finalize: offsets from the post-dedup degrees, then checksums
    // and the fingerprint by re-reading what was just written (the same
    // verification `open` performs).
    let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    offsets.push(0);
    for &d in &final_degrees {
        acc += d;
        offsets.push(acc);
    }
    let m = acc;
    let mut fp = Fnv1a::new();
    let mut off_h = Fnv1a::new();
    for &o in &offsets {
        let b = o.to_le_bytes();
        fp.update(&b);
        off_h.update(&b);
    }
    file.seek(SeekFrom::Start(data_start))?;
    let mut reader = BufReader::with_capacity(1 << 20, &mut file);
    let targets_fnv = hash_targets(&mut reader, m, n as u64, &mut fp)?;
    drop(reader);
    let fingerprint = fp.finish();

    file.seek(SeekFrom::Start(0))?;
    let mut head = BufWriter::with_capacity(1 << 20, &mut file);
    head.write_all(&MAGIC)?;
    head.write_all(&(n as u64).to_le_bytes())?;
    head.write_all(&m.to_le_bytes())?;
    head.write_all(&off_h.finish().to_le_bytes())?;
    head.write_all(&targets_fnv.to_le_bytes())?;
    head.write_all(&fingerprint.to_le_bytes())?;
    for &o in &offsets {
        head.write_all(&o.to_le_bytes())?;
    }
    head.flush()?;
    drop(head);

    Ok(SpillCsr {
        offsets,
        file: Mutex::new(file),
        path,
        data_start,
        num_targets: m,
        fingerprint,
        page_len: cfg.page_len.max(1),
        cache_pages: cfg.cache_pages.max(1),
        cache: Mutex::new(BTreeMap::new()),
        tick: AtomicU64::new(0),
        owns_file: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(tag: &str) -> SpillConfig {
        let dir = std::env::temp_dir().join(format!("cxlg-spill-test-{}-{tag}", std::process::id()));
        SpillConfig::new(dir)
    }

    fn tiny_cfg(tag: &str) -> SpillConfig {
        // Pathologically small pages/segments so every code path
        // (multi-window sublists, eviction, multi-segment builds) runs
        // even on small graphs.
        let mut cfg = test_cfg(tag);
        cfg.page_len = 8;
        cfg.cache_pages = 2;
        cfg.segment_arcs = 64;
        cfg
    }

    #[test]
    fn spill_build_matches_mem_build_exactly() {
        for spec in [
            GraphSpec::urand(8).seed(3),
            GraphSpec::kron(8).seed(3),
            GraphSpec::friendster_like(8).seed(3),
        ] {
            let mem = spec.build();
            let spill = SpillCsr::build(&spec, &tiny_cfg("match")).expect("spill build");
            assert_eq!(spill.num_vertices(), mem.num_vertices(), "{}", spec.name());
            assert_eq!(spill.num_edges(), mem.num_edges(), "{}", spec.name());
            assert_eq!(spill.fingerprint(), mem.fingerprint(), "{}", spec.name());
            for v in 0..mem.num_vertices() as VertexId {
                assert_eq!(
                    CsrView::neighbors_vec(&spill, v),
                    mem.neighbors(v),
                    "{} vertex {v}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn storage_enum_mirrors_either_backend() {
        let spec = GraphSpec::urand(7).seed(1);
        let mem = CsrStorage::build(&spec, StorageMode::Mem, &test_cfg("enum"));
        let spill = CsrStorage::build(&spec, StorageMode::Spill, &tiny_cfg("enum"));
        assert_eq!(mem.storage_mode(), StorageMode::Mem);
        assert_eq!(spill.storage_mode(), StorageMode::Spill);
        assert!(mem.as_mem().is_some());
        assert!(spill.as_mem().is_none());
        assert_eq!(mem.fingerprint(), spill.fingerprint());
        assert_eq!(mem.num_edges(), spill.num_edges());
        assert_eq!(mem.max_degree_vertex(), spill.max_degree_vertex());
        assert_eq!(mem.num_isolated(), spill.num_isolated());
        assert!(
            spill.resident_bytes() < mem.resident_bytes(),
            "tiny page cache must undercut the fully resident arrays"
        );
        assert_eq!(mem.on_disk_bytes(), 0);
        assert!(spill.on_disk_bytes() > 0);
        for v in [0u32, 1, 63, 127] {
            assert_eq!(mem.neighbors_vec(v), spill.neighbors_vec(v));
            assert_eq!(mem.degree(v), spill.degree(v));
            assert_eq!(mem.edge_weight(v, v + 1, 64), spill.edge_weight(v, v + 1, 64));
        }
    }

    #[test]
    fn open_round_trips_a_built_spill() {
        let spec = GraphSpec::kron(7).seed(9);
        let cfg = tiny_cfg("roundtrip");
        let built = SpillCsr::build(&spec, &cfg).expect("build");
        // `open` must re-verify and agree; keep `built` alive (it owns
        // and would otherwise delete the file).
        let opened = SpillCsr::open(built.path(), &cfg).expect("open");
        assert_eq!(opened.fingerprint(), built.fingerprint());
        assert_eq!(opened.num_edges(), built.num_edges());
        for v in 0..opened.num_vertices() as VertexId {
            assert_eq!(
                CsrView::neighbors_vec(&opened, v),
                CsrView::neighbors_vec(&built, v)
            );
        }
    }

    #[test]
    fn built_spill_deletes_its_file_on_drop() {
        let spec = GraphSpec::urand(6).seed(2);
        let cfg = test_cfg("drop");
        let built = SpillCsr::build(&spec, &cfg).expect("build");
        let path = built.path().to_path_buf();
        assert!(path.is_file());
        drop(built);
        assert!(!path.exists(), "owned spill file must be removed on drop");
    }

    #[test]
    fn open_rejects_corruption_and_truncation() {
        let spec = GraphSpec::urand(6).seed(4);
        let cfg = test_cfg("corrupt");
        let built = SpillCsr::build(&spec, &cfg).expect("build");
        let bytes = fs::read(built.path()).expect("read spill");

        let dir = cfg.dir.clone();
        let write_variant = |name: &str, data: &[u8]| {
            let p = dir.join(name);
            fs::write(&p, data).expect("write variant");
            p
        };

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        let p = write_variant("bad-magic.spill", &bad);
        assert!(SpillCsr::open(&p, &cfg).is_err(), "bad magic must not open");

        // Flipped target byte: targets checksum catches it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let p = write_variant("bad-target.spill", &bad);
        let err = SpillCsr::open(&p, &cfg).expect_err("corrupt target must not open");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncated file.
        let p = write_variant("truncated.spill", &bytes[..bytes.len() - 5]);
        let err = SpillCsr::open(&p, &cfg).expect_err("truncated file must not open");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncated to mid-header.
        let p = write_variant("header-only.spill", &bytes[..20]);
        assert!(SpillCsr::open(&p, &cfg).is_err(), "mid-header truncation");
    }

    #[test]
    fn storage_mode_parses_and_labels() {
        assert_eq!(StorageMode::parse("mem"), Some(StorageMode::Mem));
        assert_eq!(StorageMode::parse("spill"), Some(StorageMode::Spill));
        assert_eq!(StorageMode::parse("mmap"), None);
        assert_eq!(StorageMode::Mem.label(), "mem");
        assert_eq!(StorageMode::Spill.label(), "spill");
        assert_eq!(StorageMode::default(), StorageMode::Mem);
    }

    /// Generic consumers must accept any backend by reference, by `Arc`,
    /// or as a trait object — this is what lets the traversal and
    /// statistics layers stay backend-agnostic.
    fn sum_degrees<G: CsrView + ?Sized>(g: &G) -> u64 {
        (0..g.num_vertices() as VertexId).map(|v| g.degree(v)).sum()
    }

    #[test]
    fn csr_view_is_object_and_arc_compatible() {
        let spec = GraphSpec::urand(6).seed(8);
        let mem = spec.build();
        let spill = SpillCsr::build(&spec, &tiny_cfg("object")).expect("build");
        let m = mem.num_edges();
        assert_eq!(sum_degrees(&mem), m);
        assert_eq!(sum_degrees(&spill), m);
        let arc: Arc<CsrStorage> = Arc::new(CsrStorage::Spill(spill));
        assert_eq!(sum_degrees(&arc), m);
        let dyn_view: &dyn CsrView = arc.as_ref();
        assert_eq!(sum_degrees(dyn_view), m);
        assert_eq!(dyn_view.fingerprint(), mem.fingerprint());
    }
}
