//! Binary serialization of CSR graphs.
//!
//! Generating the larger benchmark graphs takes seconds; persisting them
//! lets harnesses and downstream users reload in milliseconds. The format
//! is a fixed little-endian header (magic, version, counts) followed by
//! the raw offsets and targets arrays — deliberately trivial, so other
//! tools can parse it.

use crate::csr::Csr;
use crate::VertexId;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: "CXLG" + format version 1.
const MAGIC: [u8; 8] = *b"CXLGv001";

/// Serialize a CSR to a writer.
pub fn write_csr<W: Write>(g: &Csr, mut w: W) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&g.num_edges().to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in g.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    Ok(())
}

/// Deserialize a CSR from a reader. Validates structure on load.
pub fn read_csr<R: Read>(mut r: R) -> io::Result<Csr> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic {magic:?}"),
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    if n > (1 << 34) || m > (1 << 40) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible graph dimensions",
        ));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut buf8)?;
        offsets.push(u64::from_le_bytes(buf8));
    }
    let mut buf4 = [0u8; 4];
    let mut targets: Vec<VertexId> = Vec::with_capacity(m);
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        targets.push(VertexId::from_le_bytes(buf4));
    }
    // from_parts validates monotonicity and ranges but panics; convert to
    // an IO error for corrupt files.
    if offsets.last().copied() != Some(m as u64)
        || offsets.windows(2).any(|w| w[0] > w[1])
        || targets.iter().any(|&t| (t as usize) >= n)
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "structurally invalid CSR",
        ));
    }
    Ok(Csr::from_parts(offsets, targets))
}

/// Save to a file path.
pub fn save(g: &Csr, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_csr(g, io::BufWriter::new(f))
}

/// Load from a file path.
pub fn load(path: impl AsRef<Path>) -> io::Result<Csr> {
    let f = std::fs::File::open(path)?;
    read_csr(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GraphSpec;

    #[test]
    fn round_trip_in_memory() {
        let g = GraphSpec::kron(9).seed(7).build();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn round_trip_via_file() {
        let g = GraphSpec::urand(8).seed(3).build();
        let dir = std::env::temp_dir().join("cxlg-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csr");
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_csr(&b"NOTAGRAPH graph"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_file() {
        let g = GraphSpec::urand(6).seed(1).build();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(read_csr(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupted_offsets() {
        let g = GraphSpec::urand(6).seed(1).build();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        // Corrupt an offset in the middle (bytes 24..32 = offsets[1]).
        buf[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_csr(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Csr::empty(5);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        assert_eq!(read_csr(buf.as_slice()).unwrap(), g);
    }
}
