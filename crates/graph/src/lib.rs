//! # cxlg-graph — graph substrate
//!
//! Compressed Sparse Row storage, synthetic graph generators matching the
//! paper's datasets (Table 1), degree statistics, and the byte-level
//! edge-list layout that external-memory access methods operate on.
//!
//! The paper evaluates three graphs — `urand27` (uniform random, average
//! degree 32), `kron27` (Kronecker/RMAT, average degree 67 over non-isolated
//! vertices), and Friendster (real-world social graph, average degree 55.1).
//! The generators here reproduce those degree structures at configurable
//! scale: [`gen::uniform`], [`gen::kronecker`] (Graph500 parameters) and
//! [`gen::social`] (Chung–Lu power law calibrated to Friendster's mean
//! degree). Generation is deterministic per seed and parallelized with
//! rayon.
//!
//! Vertex IDs occupy **8 bytes** in the external edge list (Table 1
//! footnote) regardless of the in-memory representation; [`layout`] owns
//! that byte math, including the alignment arithmetic behind the paper's
//! read-amplification analysis (§3.1).

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod layout;
pub mod reorder;
pub mod spec;
pub mod stats;
pub mod storage;

pub use csr::Csr;
pub use layout::EdgeListLayout;
pub use spec::{GraphKind, GraphSpec};
pub use stats::DegreeStats;
pub use storage::{CsrStorage, CsrView, SpillConfig, SpillCsr, StorageMode};

/// In-memory vertex identifier. The paper's graphs have fewer than 2^32
/// vertices, and so do all configurable scales here; the *external* layout
/// still uses 8 bytes per ID (see [`layout::BYTES_PER_ID`]).
pub type VertexId = u32;
