//! The content-addressed result store.
//!
//! One directory per [`JobKey`] under the store root:
//!
//! ```text
//! <root>/<jobkey>/manifest.json   job identity, integrity table, telemetry
//! <root>/<jobkey>/<name>          one file per result payload (verbatim bytes)
//! <root>/.quarantine/<key>.<n>    entries that failed verification (forensics)
//! ```
//!
//! **Atomic publication.** A result is staged into a hidden
//! `.tmp-<key>-<pid>` directory and `rename`d into place, so a reader
//! never observes a half-written entry: either `<root>/<jobkey>` exists
//! with its complete manifest and payloads, or it does not exist. When
//! two publishers race (possible across processes — in-process the
//! scheduler's singleflight already collapses them), the first rename
//! wins and the loser discards its staging directory; both executions
//! produced byte-identical payloads by the determinism contract, so
//! which one lands is unobservable.
//!
//! **Crash recovery on open.** A process that dies mid-publish leaves
//! its `.tmp-<key>-<pid>` staging directory behind. [`ResultStore::new`]
//! reaps every staging directory whose embedded pid is no longer alive
//! (or is this process — our own litter from a previous open), and
//! moves entries whose manifest is unreadable or names the wrong key
//! into `.quarantine/` instead of serving them. Staging directories of
//! *live* foreign publishers are left untouched.
//!
//! **Integrity on read.** [`ResultStore::probe`] re-hashes every
//! payload against the manifest's FNV-64 + length table and
//! cross-checks the recorded key. Any mismatch — truncation, bit rot,
//! a manually edited file — quarantines the entry and reports a miss,
//! so a corrupted cache entry is re-executed, never served.
//!
//! **Bounded growth.** Every published manifest carries a monotone
//! publication sequence number (`seq`); [`ResultStore::gc`] evicts
//! entries in ascending-`seq` order (LRU by publication) until the
//! store fits the requested byte/entry budget. Eviction is safe under
//! concurrent readers because `probe` copies payload bytes out before
//! returning.
//!
//! **Fault injection.** When a [`FaultInjector`] is attached
//! ([`ResultStore::with_faults`]), the publish path consults it: a
//! `torn` fault aborts mid-stage leaving partial `.tmp-*` litter, a
//! `corrupt` fault lands the entry then flips one deterministic payload
//! byte. Both exercise exactly the recovery paths above.

use crate::fault::{FaultInjector, PublishFault};
use crate::job::{fnv64, Job, JobKey};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One graph input binding recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FingerprintEntry {
    /// Dataset label (name, degree parameter, seed).
    pub spec: String,
    /// `Csr::fingerprint` of the built graph.
    pub fingerprint: u64,
}

/// Integrity record for one stored payload file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Plain file name inside the entry directory.
    pub name: String,
    /// Payload length in bytes.
    pub bytes: u64,
    /// FNV-64 of the payload bytes.
    pub fnv64: u64,
}

/// The per-entry manifest. Everything except the telemetry block
/// (`wall_ms`, `rss_*`) is byte-stable for a given job — the same
/// exemption the campaign manifest's wall-clock fields carry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredManifest {
    /// The entry's own key (cross-checked on read).
    pub key: String,
    /// Human-auditable canonical string the key hashes.
    pub canonical: String,
    /// Publication sequence number, monotone per store lineage —
    /// orders LRU eviction ([`ResultStore::gc`]). Assigned by
    /// [`ResultStore::publish`].
    pub seq: u64,
    /// The job this result answers.
    pub job: Job,
    /// Graph inputs the key binds, sorted by label.
    pub fingerprints: Vec<FingerprintEntry>,
    /// Integrity table, sorted by name. Filled in by
    /// [`ResultStore::publish`].
    pub files: Vec<FileEntry>,
    /// Whether this entry was produced by a cache hit replay (always
    /// `false` in the store; the scheduler reports hit/miss per run).
    pub cache_hit: bool,
    /// Execution wall-clock in milliseconds — telemetry, exempt from
    /// byte-stability.
    pub wall_ms: f64,
    /// RSS attribution semantics: `"process-peak-delta"`. The numbers
    /// below are growth of the *process-wide* high-water mark during
    /// this job — an upper bound on the job's own footprint when other
    /// jobs run concurrently, and 0 when the process peak predates the
    /// job (see `cxlg_core::mem::rss_span`).
    pub rss_semantics: String,
    /// Process peak RSS (kB) when the job finished — telemetry.
    pub rss_peak_kb: u64,
    /// Growth of the process high-water mark during the job (kB) —
    /// telemetry.
    pub rss_delta_kb: u64,
}

/// A verified cache hit: the manifest plus every payload, bytes copied
/// out of the store (eviction-safe).
#[derive(Debug, Clone)]
pub struct StoredResult {
    /// The entry's manifest.
    pub manifest: StoredManifest,
    /// `(name, verbatim bytes)` per payload, in manifest order.
    pub files: Vec<(String, Vec<u8>)>,
}

/// Monotone counters of the store's recovery machinery, surfaced in
/// `serve --stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Stale `.tmp-*` staging directories reaped on open.
    pub staging_reaped: u64,
    /// Entries moved to `.quarantine/` (bad manifest, wrong key, failed
    /// payload checksum).
    pub quarantined: u64,
    /// Entries evicted by [`ResultStore::gc`].
    pub evicted: u64,
}

/// What one [`ResultStore::gc`] pass did.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Evicted keys, in eviction (ascending publication `seq`) order.
    pub evicted: Vec<JobKey>,
    /// Entry bytes before the pass.
    pub bytes_before: u64,
    /// Entry bytes after the pass.
    pub bytes_after: u64,
    /// Entry count before the pass.
    pub entries_before: usize,
}

/// Content-addressed store rooted at one directory.
pub struct ResultStore {
    root: PathBuf,
    next_seq: AtomicU64,
    staging_reaped: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
    faults: Option<Arc<FaultInjector>>,
}

/// Pid embedded in a `.tmp-<key>-<pid>` staging-directory name, if the
/// name parses.
fn staging_pid(name: &str) -> Option<u32> {
    name.strip_prefix(".tmp-")?.rsplit_once('-')?.1.parse().ok()
}

/// Whether a staging directory's owner may still be publishing. Our own
/// pid counts as dead: any `.tmp-*` of ours that survives to the next
/// `open` is litter (publish removes its staging dir on every path).
fn staging_owner_live(name: &str) -> bool {
    match staging_pid(name) {
        None => false, // malformed name: no live publisher writes these
        Some(pid) if pid == std::process::id() => false,
        #[cfg(target_os = "linux")]
        Some(pid) => Path::new("/proc").join(pid.to_string()).exists(),
        #[cfg(not(target_os = "linux"))]
        Some(_) => true, // no liveness oracle: be conservative
    }
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `root`, running
    /// crash recovery: stale staging directories are reaped, entries
    /// with unreadable or key-mismatched manifests are quarantined, and
    /// the publication sequence resumes past the highest stored `seq`.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let store = ResultStore {
            root,
            next_seq: AtomicU64::new(1),
            staging_reaped: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            faults: None,
        };
        store.recover();
        Ok(store)
    }

    /// Attach a fault injector to the publish path (chaos testing).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of the recovery counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            staging_reaped: self.staging_reaped.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            evicted: self.evicted.load(Ordering::SeqCst),
        }
    }

    fn entry_dir(&self, key: &JobKey) -> PathBuf {
        self.root.join(key.as_str())
    }

    /// Crash recovery, run once from [`ResultStore::new`].
    fn recover(&self) {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        let mut max_seq = 0u64;
        for e in entries.flatten() {
            let Some(name) = e.file_name().to_str().map(str::to_string) else {
                continue;
            };
            let path = e.path();
            if name.starts_with(".tmp-") {
                if !staging_owner_live(&name) {
                    let removed = if path.is_dir() {
                        std::fs::remove_dir_all(&path).is_ok()
                    } else {
                        std::fs::remove_file(&path).is_ok()
                    };
                    if removed {
                        self.staging_reaped.fetch_add(1, Ordering::SeqCst);
                    }
                }
                continue;
            }
            if JobKey::parse(&name).is_err() || !path.is_dir() {
                continue;
            }
            let manifest = std::fs::read_to_string(path.join("manifest.json"))
                .ok()
                .and_then(|text| serde_json::from_str::<StoredManifest>(&text).ok())
                .filter(|m| m.key == name);
            match manifest {
                Some(m) => max_seq = max_seq.max(m.seq),
                None => self.quarantine(&path, &name),
            }
        }
        self.next_seq
            .store(max_seq.saturating_add(1), Ordering::SeqCst);
    }

    /// Move a failed entry aside for forensics instead of serving it.
    /// Falls back to deletion if the rename fails (e.g. cross-device).
    fn quarantine(&self, dir: &Path, key_name: &str) {
        let n = self.quarantined.fetch_add(1, Ordering::SeqCst) + 1;
        let qroot = self.root.join(".quarantine");
        let moved = std::fs::create_dir_all(&qroot).is_ok()
            && std::fs::rename(dir, qroot.join(format!("{key_name}.{n}"))).is_ok();
        if !moved {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// Stage and atomically publish an entry. Returns `Ok(false)` when
    /// the entry already exists (first writer won a race); the staged
    /// copy is discarded. Payload names must be plain file names and
    /// must not collide with `manifest.json`.
    pub fn publish(
        &self,
        mut manifest: StoredManifest,
        files: &[(String, Vec<u8>)],
    ) -> std::io::Result<bool> {
        let key = JobKey::parse(&manifest.key)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        for (name, _) in files {
            if name.is_empty()
                || name == "manifest.json"
                || name.contains('/')
                || name.contains('\\')
                || name.starts_with('.')
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("illegal payload name `{name}`"),
                ));
            }
        }
        manifest.seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        manifest.files = files
            .iter()
            .map(|(name, bytes)| FileEntry {
                name: name.clone(),
                bytes: bytes.len() as u64,
                fnv64: fnv64(bytes),
            })
            .collect();
        manifest.files.sort_by(|a, b| a.name.cmp(&b.name));

        let fault = match &self.faults {
            Some(f) => f.on_publish(),
            None => PublishFault::None,
        };

        let dest = self.entry_dir(&key);
        if dest.exists() {
            return Ok(false);
        }
        let tmp = self
            .root
            .join(format!(".tmp-{}-{}", key.as_str(), std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp)?;
        let write = |path: &Path, bytes: &[u8]| -> std::io::Result<()> {
            let mut f = std::fs::File::create(path)?;
            f.write_all(bytes)
        };
        let manifest_json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        write(&tmp.join("manifest.json"), manifest_json.as_bytes())?;
        if fault == PublishFault::Torn {
            // Injected mid-publish crash: the manifest is staged but no
            // payload is, and the staging directory is left behind —
            // exactly what a process death between the writes produces.
            return Err(std::io::Error::new(
                std::io::ErrorKind::Other,
                "injected fault: torn publish",
            ));
        }
        for (name, bytes) in files {
            write(&tmp.join(name), bytes)?;
        }
        let published = match std::fs::rename(&tmp, &dest) {
            Ok(()) => true,
            Err(_) if dest.exists() => {
                // Lost the publication race: keep the winner's entry.
                let _ = std::fs::remove_dir_all(&tmp);
                false
            }
            Err(e) => {
                let _ = std::fs::remove_dir_all(&tmp);
                return Err(e);
            }
        };
        if published && fault == PublishFault::Corrupt {
            // Injected bit rot: flip one deterministic payload byte
            // post-publication. Discovered by the next probe's checksum
            // pass, which quarantines and forces re-execution.
            self.corrupt_entry(&dest, &manifest);
        }
        Ok(published)
    }

    /// Apply an injected corruption to a freshly published entry: one
    /// byte of the first payload (or of the manifest, for payload-less
    /// entries) is XOR-flipped at a seed-deterministic offset.
    fn corrupt_entry(&self, dir: &Path, manifest: &StoredManifest) {
        let Some(f) = &self.faults else { return };
        let target = match manifest.files.first() {
            Some(entry) => dir.join(&entry.name),
            None => dir.join("manifest.json"),
        };
        let Ok(mut bytes) = std::fs::read(&target) else {
            return;
        };
        if bytes.is_empty() {
            return;
        }
        let (offset, mask) = f.corrupt_pick(bytes.len() as u64);
        bytes[offset as usize] ^= mask;
        let _ = std::fs::write(&target, bytes);
    }

    /// Look a key up, verifying integrity. A verified entry comes back
    /// with its payload bytes copied out; a missing entry is `None`; a
    /// corrupted entry (bad manifest, wrong key, truncated or altered
    /// payload, missing file) is **quarantined** and reported as
    /// `None`, so the caller re-executes instead of serving bad bytes.
    pub fn probe(&self, key: &JobKey) -> Option<StoredResult> {
        let dir = self.entry_dir(key);
        if !dir.is_dir() {
            return None;
        }
        match self.read_verified(key, &dir) {
            Some(hit) => Some(hit),
            None => {
                // Quarantine: a later submit re-executes, and the bad
                // bytes stay available for postmortem.
                self.quarantine(&dir, key.as_str());
                None
            }
        }
    }

    fn read_verified(&self, key: &JobKey, dir: &Path) -> Option<StoredResult> {
        let manifest_text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
        let manifest: StoredManifest = serde_json::from_str(&manifest_text).ok()?;
        if manifest.key != key.as_str() {
            return None;
        }
        let mut files = Vec::with_capacity(manifest.files.len());
        for entry in &manifest.files {
            let bytes = std::fs::read(dir.join(&entry.name)).ok()?;
            if bytes.len() as u64 != entry.bytes || fnv64(&bytes) != entry.fnv64 {
                return None;
            }
            files.push((entry.name.clone(), bytes));
        }
        Some(StoredResult { manifest, files })
    }

    /// Remove an entry. Returns whether one existed. Safe under
    /// concurrent readers: previously probed results keep their copies.
    pub fn evict(&self, key: &JobKey) -> bool {
        let dir = self.entry_dir(key);
        dir.is_dir() && std::fs::remove_dir_all(&dir).is_ok()
    }

    /// Number of (directory-level) entries currently in the store.
    /// Staging and quarantine directories are excluded.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entry keys, sorted (deterministic listing order).
    pub fn keys(&self) -> Vec<JobKey> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for e in entries.flatten() {
                if let Some(name) = e.file_name().to_str() {
                    if let Ok(key) = JobKey::parse(name) {
                        if e.path().is_dir() {
                            out.push(key);
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// On-disk bytes of one entry (manifest + payloads), 0 if absent.
    fn entry_bytes(&self, key: &JobKey) -> u64 {
        let mut total = 0;
        if let Ok(entries) = std::fs::read_dir(self.entry_dir(key)) {
            for e in entries.flatten() {
                if let Ok(meta) = e.metadata() {
                    if meta.is_file() {
                        total += meta.len();
                    }
                }
            }
        }
        total
    }

    /// On-disk bytes across all entries (staging/quarantine excluded).
    pub fn total_bytes(&self) -> u64 {
        self.keys().iter().map(|k| self.entry_bytes(k)).sum()
    }

    /// Evict entries in ascending publication-`seq` order (LRU by
    /// publication; key order breaks seq ties deterministically) until
    /// the store fits `max_bytes` / `max_entries`. `None` bounds are
    /// unlimited. Safe under concurrent readers — see [`Self::evict`].
    pub fn gc(&self, max_bytes: Option<u64>, max_entries: Option<usize>) -> GcReport {
        // (seq, key, bytes) per entry; an unreadable manifest sorts
        // first (seq 0) — it would be quarantined on probe anyway.
        let mut entries: Vec<(u64, JobKey, u64)> = self
            .keys()
            .into_iter()
            .map(|key| {
                let seq = std::fs::read_to_string(self.entry_dir(&key).join("manifest.json"))
                    .ok()
                    .and_then(|text| serde_json::from_str::<StoredManifest>(&text).ok())
                    .map_or(0, |m| m.seq);
                let bytes = self.entry_bytes(&key);
                (seq, key, bytes)
            })
            .collect();
        entries.sort();
        let bytes_before: u64 = entries.iter().map(|(_, _, b)| b).sum();
        let entries_before = entries.len();
        let mut report = GcReport {
            evicted: Vec::new(),
            bytes_before,
            bytes_after: bytes_before,
            entries_before,
        };
        let mut count = entries_before;
        for (_, key, bytes) in entries {
            let over_bytes = max_bytes.is_some_and(|max| report.bytes_after > max);
            let over_count = max_entries.is_some_and(|max| count > max);
            if !over_bytes && !over_count {
                break;
            }
            if self.evict(&key) {
                self.evicted.fetch_add(1, Ordering::SeqCst);
                report.bytes_after = report.bytes_after.saturating_sub(bytes);
                count -= 1;
                report.evicted.push(key);
            }
        }
        report
    }
}

/// A manifest with empty telemetry, ready for [`ResultStore::publish`]
/// to fill the integrity table and publication sequence.
pub fn manifest_for(
    key: &JobKey,
    canonical: String,
    job: Job,
    fingerprints: Vec<FingerprintEntry>,
) -> StoredManifest {
    StoredManifest {
        key: key.as_str().to_string(),
        canonical,
        seq: 0,
        job,
        fingerprints,
        files: Vec::new(),
        cache_hit: false,
        wall_ms: 0.0,
        rss_semantics: "process-peak-delta".to_string(),
        rss_peak_kb: 0,
        rss_delta_kb: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultPlan};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cxlg-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tmp_store(tag: &str) -> ResultStore {
        ResultStore::new(tmp_root(tag)).unwrap()
    }

    fn job() -> Job {
        Job {
            experiment: "fig3".to_string(),
            scale: 8,
            seed: 1,
            threads: 1,
        }
    }

    fn job_n(seed: u64) -> Job {
        Job {
            experiment: "fig3".to_string(),
            scale: 8,
            seed,
            threads: 1,
        }
    }

    fn key() -> JobKey {
        JobKey::derive(&job(), &[("urand8".to_string(), 7)])
    }

    fn publish_one(store: &ResultStore) -> JobKey {
        let k = key();
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        let files = vec![("fig3.json".to_string(), b"{\"x\":1}".to_vec())];
        assert!(store.publish(m, &files).unwrap());
        k
    }

    fn publish_n(store: &ResultStore, seed: u64) -> JobKey {
        let j = job_n(seed);
        let k = JobKey::derive(&j, &[("urand8".to_string(), 7)]);
        let m = manifest_for(&k, format!("canon-{seed}"), j, Vec::new());
        let files = vec![("fig3.json".to_string(), format!("{{\"x\":{seed}}}").into_bytes())];
        assert!(store.publish(m, &files).unwrap());
        k
    }

    #[test]
    fn publish_then_probe_round_trips_bytes() {
        let store = tmp_store("roundtrip");
        let k = publish_one(&store);
        let hit = store.probe(&k).expect("published entry must probe");
        assert_eq!(hit.manifest.key, k.as_str());
        assert_eq!(hit.files, vec![("fig3.json".to_string(), b"{\"x\":1}".to_vec())]);
        assert_eq!(hit.manifest.files[0].bytes, 7);
        assert_eq!(hit.manifest.seq, 1, "first publication takes seq 1");
        assert_eq!(store.keys(), vec![k]);
    }

    #[test]
    fn double_publish_keeps_the_first_entry() {
        let store = tmp_store("firstwins");
        let k = publish_one(&store);
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        let other = vec![("fig3.json".to_string(), b"{\"x\":2}".to_vec())];
        assert!(!store.publish(m, &other).unwrap(), "second publish must lose");
        let hit = store.probe(&k).unwrap();
        assert_eq!(hit.files[0].1, b"{\"x\":1}".to_vec());
        // No staging litter left behind.
        let tmp_left = std::fs::read_dir(store.root())
            .unwrap()
            .flatten()
            .any(|e| e.file_name().to_string_lossy().starts_with(".tmp-"));
        assert!(!tmp_left, "staging directory leaked");
    }

    #[test]
    fn corrupted_payload_is_detected_and_quarantined() {
        let store = tmp_store("corrupt");
        let k = publish_one(&store);
        let payload = store.root().join(k.as_str()).join("fig3.json");
        std::fs::write(&payload, b"{\"x\":9}").unwrap(); // same length, wrong bytes
        assert!(store.probe(&k).is_none(), "altered payload must miss");
        assert!(!store.root().join(k.as_str()).exists(), "corrupt entry must be removed");
        assert_eq!(store.counters().quarantined, 1);
        let qdir = store.root().join(".quarantine").join(format!("{}.1", k.as_str()));
        assert!(qdir.is_dir(), "corrupt entry must move to quarantine");
        // Re-publication after quarantine works.
        publish_one(&store);
        assert!(store.probe(&k).is_some());
    }

    #[test]
    fn truncated_payload_is_detected_and_dropped() {
        let store = tmp_store("truncate");
        let k = publish_one(&store);
        let payload = store.root().join(k.as_str()).join("fig3.json");
        std::fs::write(&payload, b"{\"x\"").unwrap();
        assert!(store.probe(&k).is_none());
        assert!(!store.root().join(k.as_str()).exists());
    }

    #[test]
    fn mangled_manifest_is_detected_and_dropped() {
        let store = tmp_store("manifest");
        let k = publish_one(&store);
        std::fs::write(store.root().join(k.as_str()).join("manifest.json"), b"not json").unwrap();
        assert!(store.probe(&k).is_none());
        assert!(!store.root().join(k.as_str()).exists());
    }

    #[test]
    fn missing_payload_is_detected_and_dropped() {
        let store = tmp_store("missing");
        let k = publish_one(&store);
        std::fs::remove_file(store.root().join(k.as_str()).join("fig3.json")).unwrap();
        assert!(store.probe(&k).is_none());
    }

    #[test]
    fn eviction_is_safe_under_a_reader() {
        let store = tmp_store("evict");
        let k = publish_one(&store);
        let held = store.probe(&k).unwrap();
        assert!(store.evict(&k), "entry must evict");
        // The reader's copy is intact after eviction…
        assert_eq!(held.files[0].1, b"{\"x\":1}".to_vec());
        // …and the store misses cleanly.
        assert!(store.probe(&k).is_none());
        assert!(!store.evict(&k), "double eviction reports absence");
        assert!(store.is_empty());
    }

    #[test]
    fn publish_rejects_illegal_payload_names() {
        let store = tmp_store("names");
        let k = key();
        for bad in ["", "manifest.json", "a/b.json", "..", ".hidden"] {
            let m = manifest_for(&k, "canon".into(), job(), Vec::new());
            let files = vec![(bad.to_string(), Vec::new())];
            assert!(store.publish(m, &files).is_err(), "name `{bad}` must be rejected");
        }
    }

    #[test]
    fn probe_of_unknown_key_is_a_plain_miss() {
        let store = tmp_store("unknown");
        assert!(store.probe(&key()).is_none());
    }

    #[test]
    fn stale_staging_dirs_are_reaped_on_open() {
        let root = tmp_root("reap");
        std::fs::create_dir_all(&root).unwrap();
        // Plant litter from this process (a simulated earlier crash)
        // and from a pid that cannot be alive.
        let mine = root.join(format!(".tmp-{}-{}", key().as_str(), std::process::id()));
        std::fs::create_dir_all(&mine).unwrap();
        std::fs::write(mine.join("manifest.json"), b"{partial").unwrap();
        let dead = root.join(format!(".tmp-{}-4294967294", key().as_str()));
        std::fs::create_dir_all(&dead).unwrap();
        let malformed = root.join(".tmp-garbage");
        std::fs::create_dir_all(&malformed).unwrap();

        let store = ResultStore::new(&root).unwrap();
        assert!(!mine.exists(), "own-pid staging litter must be reaped");
        assert!(!dead.exists(), "dead-pid staging litter must be reaped");
        assert!(!malformed.exists(), "malformed staging names must be reaped");
        assert_eq!(store.counters().staging_reaped, 3);
        assert!(store.is_empty(), "staging litter must not surface as entries");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_foreign_staging_dirs_survive_open() {
        let root = tmp_root("reap-live");
        std::fs::create_dir_all(&root).unwrap();
        // pid 1 is always alive on Linux.
        let live = root.join(format!(".tmp-{}-1", key().as_str()));
        std::fs::create_dir_all(&live).unwrap();
        let store = ResultStore::new(&root).unwrap();
        assert!(live.exists(), "a live publisher's staging dir must survive");
        assert_eq!(store.counters().staging_reaped, 0);
    }

    #[test]
    fn bad_manifests_are_quarantined_on_open() {
        let root = tmp_root("openq");
        {
            let store = ResultStore::new(&root).unwrap();
            publish_one(&store);
        }
        // Mangle the manifest between store lifetimes.
        let k = key();
        std::fs::write(root.join(k.as_str()).join("manifest.json"), b"junk").unwrap();
        let store = ResultStore::new(&root).unwrap();
        assert_eq!(store.counters().quarantined, 1);
        assert!(store.is_empty());
        assert!(store.probe(&k).is_none());
    }

    #[test]
    fn sequence_numbers_resume_across_lifetimes() {
        let root = tmp_root("seq");
        {
            let store = ResultStore::new(&root).unwrap();
            publish_n(&store, 1);
            publish_n(&store, 2);
        }
        let store = ResultStore::new(&root).unwrap();
        let k3 = publish_n(&store, 3);
        assert_eq!(
            store.probe(&k3).unwrap().manifest.seq,
            3,
            "seq must resume past the highest stored value"
        );
    }

    #[test]
    fn gc_evicts_in_publication_order_until_bounds_fit() {
        let store = tmp_store("gc");
        let k1 = publish_n(&store, 1);
        let k2 = publish_n(&store, 2);
        let k3 = publish_n(&store, 3);
        // Hold a reader on the oldest entry across its eviction.
        let held = store.probe(&k1).unwrap();

        // Count bound: keep 2 entries → the oldest publication goes.
        let report = store.gc(None, Some(2));
        assert_eq!(report.evicted, vec![k1.clone()]);
        assert_eq!(report.entries_before, 3);
        assert!(store.probe(&k1).is_none());
        assert!(store.probe(&k2).is_some());
        assert!(store.probe(&k3).is_some());
        assert_eq!(held.files[0].1, b"{\"x\":1}".to_vec(), "reader copy survives");

        // Byte bound: shrink to one entry's size → k2 (now oldest) goes.
        let one = store.total_bytes() / 2;
        let report = store.gc(Some(one), None);
        assert_eq!(report.evicted, vec![k2]);
        assert!(report.bytes_after <= one);
        assert_eq!(store.keys(), vec![k3]);
        assert_eq!(store.counters().evicted, 2);

        // Within bounds: a no-op.
        let report = store.gc(Some(u64::MAX), Some(10));
        assert!(report.evicted.is_empty());
    }

    #[test]
    fn injected_torn_publish_leaves_reapable_litter() {
        let root = tmp_root("torn");
        let faults = Arc::new(FaultInjector::new(7, FaultPlan::parse("torn@1").unwrap()));
        let store = ResultStore::new(&root).unwrap().with_faults(Arc::clone(&faults));
        let k = key();
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        let files = vec![("fig3.json".to_string(), b"{\"x\":1}".to_vec())];
        let err = store.publish(m, &files).unwrap_err();
        assert!(err.to_string().contains("torn"), "torn fault must surface: {err}");
        assert!(store.probe(&k).is_none(), "no entry may land");
        let tmp = root.join(format!(".tmp-{}-{}", k.as_str(), std::process::id()));
        assert!(tmp.is_dir(), "torn publish must leave staging litter");

        // A retry through the same store (fault spent) self-heals: the
        // publish path clears its own stale staging dir first.
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        assert!(store.publish(m, &files).unwrap());
        assert!(store.probe(&k).is_some());
        assert!(!tmp.exists());
    }

    #[test]
    fn injected_corruption_is_caught_by_the_next_probe() {
        let root = tmp_root("inj-corrupt");
        let faults = Arc::new(FaultInjector::new(7, FaultPlan::parse("corrupt@1").unwrap()));
        let store = ResultStore::new(&root).unwrap().with_faults(faults);
        let k = key();
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        let files = vec![("fig3.json".to_string(), b"{\"x\":1}".to_vec())];
        assert!(store.publish(m, &files).unwrap(), "corrupt publish still lands");
        assert!(store.probe(&k).is_none(), "flipped byte must fail verification");
        assert_eq!(store.counters().quarantined, 1);
        // Re-publish (fault spent) heals.
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        assert!(store.publish(m, &files).unwrap());
        assert_eq!(store.probe(&k).unwrap().files[0].1, b"{\"x\":1}".to_vec());
    }
}
