//! The content-addressed result store.
//!
//! One directory per [`JobKey`] under the store root:
//!
//! ```text
//! <root>/<jobkey>/manifest.json   job identity, integrity table, telemetry
//! <root>/<jobkey>/<name>          one file per result payload (verbatim bytes)
//! ```
//!
//! **Atomic publication.** A result is staged into a hidden
//! `.tmp-<key>-<pid>` directory and `rename`d into place, so a reader
//! never observes a half-written entry: either `<root>/<jobkey>` exists
//! with its complete manifest and payloads, or it does not exist. When
//! two publishers race (possible across processes — in-process the
//! scheduler's singleflight already collapses them), the first rename
//! wins and the loser discards its staging directory; both executions
//! produced byte-identical payloads by the determinism contract, so
//! which one lands is unobservable.
//!
//! **Integrity on read.** [`ResultStore::probe`] re-hashes every
//! payload against the manifest's FNV-64 + length table and
//! cross-checks the recorded key. Any mismatch — truncation, bit rot,
//! a manually edited file — removes the entry and reports a miss, so a
//! corrupted cache entry is re-executed, never served.
//!
//! **Eviction under readers.** `probe` copies payload bytes out of the
//! store before returning, so evicting an entry while a previous reader
//! still holds its [`StoredResult`] is safe: the reader keeps its
//! verified copy; the next probe simply misses.

use crate::job::{fnv64, Job, JobKey};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One graph input binding recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FingerprintEntry {
    /// Dataset label (name, degree parameter, seed).
    pub spec: String,
    /// `Csr::fingerprint` of the built graph.
    pub fingerprint: u64,
}

/// Integrity record for one stored payload file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Plain file name inside the entry directory.
    pub name: String,
    /// Payload length in bytes.
    pub bytes: u64,
    /// FNV-64 of the payload bytes.
    pub fnv64: u64,
}

/// The per-entry manifest. Everything except the telemetry block
/// (`wall_ms`, `rss_*`) is byte-stable for a given job — the same
/// exemption the campaign manifest's wall-clock fields carry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredManifest {
    /// The entry's own key (cross-checked on read).
    pub key: String,
    /// Human-auditable canonical string the key hashes.
    pub canonical: String,
    /// The job this result answers.
    pub job: Job,
    /// Graph inputs the key binds, sorted by label.
    pub fingerprints: Vec<FingerprintEntry>,
    /// Integrity table, sorted by name. Filled in by
    /// [`ResultStore::publish`].
    pub files: Vec<FileEntry>,
    /// Whether this entry was produced by a cache hit replay (always
    /// `false` in the store; the scheduler reports hit/miss per run).
    pub cache_hit: bool,
    /// Execution wall-clock in milliseconds — telemetry, exempt from
    /// byte-stability.
    pub wall_ms: f64,
    /// RSS attribution semantics: `"process-peak-delta"`. The numbers
    /// below are growth of the *process-wide* high-water mark during
    /// this job — an upper bound on the job's own footprint when other
    /// jobs run concurrently, and 0 when the process peak predates the
    /// job (see `cxlg_core::mem::rss_span`).
    pub rss_semantics: String,
    /// Process peak RSS (kB) when the job finished — telemetry.
    pub rss_peak_kb: u64,
    /// Growth of the process high-water mark during the job (kB) —
    /// telemetry.
    pub rss_delta_kb: u64,
}

/// A verified cache hit: the manifest plus every payload, bytes copied
/// out of the store (eviction-safe).
#[derive(Debug, Clone)]
pub struct StoredResult {
    /// The entry's manifest.
    pub manifest: StoredManifest,
    /// `(name, verbatim bytes)` per payload, in manifest order.
    pub files: Vec<(String, Vec<u8>)>,
}

/// Content-addressed store rooted at one directory.
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(ResultStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_dir(&self, key: &JobKey) -> PathBuf {
        self.root.join(key.as_str())
    }

    /// Stage and atomically publish an entry. Returns `Ok(false)` when
    /// the entry already exists (first writer won a race); the staged
    /// copy is discarded. Payload names must be plain file names and
    /// must not collide with `manifest.json`.
    pub fn publish(
        &self,
        mut manifest: StoredManifest,
        files: &[(String, Vec<u8>)],
    ) -> std::io::Result<bool> {
        let key = JobKey::parse(&manifest.key)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        for (name, _) in files {
            if name.is_empty()
                || name == "manifest.json"
                || name.contains('/')
                || name.contains('\\')
                || name.starts_with('.')
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("illegal payload name `{name}`"),
                ));
            }
        }
        manifest.files = files
            .iter()
            .map(|(name, bytes)| FileEntry {
                name: name.clone(),
                bytes: bytes.len() as u64,
                fnv64: fnv64(bytes),
            })
            .collect();
        manifest.files.sort_by(|a, b| a.name.cmp(&b.name));

        let dest = self.entry_dir(&key);
        if dest.exists() {
            return Ok(false);
        }
        let tmp = self
            .root
            .join(format!(".tmp-{}-{}", key.as_str(), std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp)?;
        let write = |path: &Path, bytes: &[u8]| -> std::io::Result<()> {
            let mut f = std::fs::File::create(path)?;
            f.write_all(bytes)
        };
        let manifest_json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        write(&tmp.join("manifest.json"), manifest_json.as_bytes())?;
        for (name, bytes) in files {
            write(&tmp.join(name), bytes)?;
        }
        match std::fs::rename(&tmp, &dest) {
            Ok(()) => Ok(true),
            Err(_) if dest.exists() => {
                // Lost the publication race: keep the winner's entry.
                let _ = std::fs::remove_dir_all(&tmp);
                Ok(false)
            }
            Err(e) => {
                let _ = std::fs::remove_dir_all(&tmp);
                Err(e)
            }
        }
    }

    /// Look a key up, verifying integrity. A verified entry comes back
    /// with its payload bytes copied out; a missing entry is `None`; a
    /// corrupted entry (bad manifest, wrong key, truncated or altered
    /// payload, missing file) is **removed** and reported as `None`, so
    /// the caller re-executes instead of serving bad bytes.
    pub fn probe(&self, key: &JobKey) -> Option<StoredResult> {
        let dir = self.entry_dir(key);
        if !dir.is_dir() {
            return None;
        }
        match self.read_verified(key, &dir) {
            Some(hit) => Some(hit),
            None => {
                // Quarantine-by-deletion: a later submit re-executes.
                let _ = std::fs::remove_dir_all(&dir);
                None
            }
        }
    }

    fn read_verified(&self, key: &JobKey, dir: &Path) -> Option<StoredResult> {
        let manifest_text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
        let manifest: StoredManifest = serde_json::from_str(&manifest_text).ok()?;
        if manifest.key != key.as_str() {
            return None;
        }
        let mut files = Vec::with_capacity(manifest.files.len());
        for entry in &manifest.files {
            let bytes = std::fs::read(dir.join(&entry.name)).ok()?;
            if bytes.len() as u64 != entry.bytes || fnv64(&bytes) != entry.fnv64 {
                return None;
            }
            files.push((entry.name.clone(), bytes));
        }
        Some(StoredResult { manifest, files })
    }

    /// Remove an entry. Returns whether one existed. Safe under
    /// concurrent readers: previously probed results keep their copies.
    pub fn evict(&self, key: &JobKey) -> bool {
        let dir = self.entry_dir(key);
        dir.is_dir() && std::fs::remove_dir_all(&dir).is_ok()
    }

    /// Number of (directory-level) entries currently in the store.
    /// Staging directories are excluded.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entry keys, sorted (deterministic listing order).
    pub fn keys(&self) -> Vec<JobKey> {
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for e in entries.flatten() {
                if let Some(name) = e.file_name().to_str() {
                    if let Ok(key) = JobKey::parse(name) {
                        if e.path().is_dir() {
                            out.push(key);
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }
}

/// A manifest with empty telemetry, ready for [`ResultStore::publish`]
/// to fill the integrity table.
pub fn manifest_for(
    key: &JobKey,
    canonical: String,
    job: Job,
    fingerprints: Vec<FingerprintEntry>,
) -> StoredManifest {
    StoredManifest {
        key: key.as_str().to_string(),
        canonical,
        job,
        fingerprints,
        files: Vec::new(),
        cache_hit: false,
        wall_ms: 0.0,
        rss_semantics: "process-peak-delta".to_string(),
        rss_peak_kb: 0,
        rss_delta_kb: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!(
            "cxlg-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::new(dir).unwrap()
    }

    fn job() -> Job {
        Job {
            experiment: "fig3".to_string(),
            scale: 8,
            seed: 1,
            threads: 1,
        }
    }

    fn key() -> JobKey {
        JobKey::derive(&job(), &[("urand8".to_string(), 7)])
    }

    fn publish_one(store: &ResultStore) -> JobKey {
        let k = key();
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        let files = vec![("fig3.json".to_string(), b"{\"x\":1}".to_vec())];
        assert!(store.publish(m, &files).unwrap());
        k
    }

    #[test]
    fn publish_then_probe_round_trips_bytes() {
        let store = tmp_store("roundtrip");
        let k = publish_one(&store);
        let hit = store.probe(&k).expect("published entry must probe");
        assert_eq!(hit.manifest.key, k.as_str());
        assert_eq!(hit.files, vec![("fig3.json".to_string(), b"{\"x\":1}".to_vec())]);
        assert_eq!(hit.manifest.files[0].bytes, 7);
        assert_eq!(store.keys(), vec![k]);
    }

    #[test]
    fn double_publish_keeps_the_first_entry() {
        let store = tmp_store("firstwins");
        let k = publish_one(&store);
        let m = manifest_for(&k, "canon".into(), job(), Vec::new());
        let other = vec![("fig3.json".to_string(), b"{\"x\":2}".to_vec())];
        assert!(!store.publish(m, &other).unwrap(), "second publish must lose");
        let hit = store.probe(&k).unwrap();
        assert_eq!(hit.files[0].1, b"{\"x\":1}".to_vec());
        // No staging litter left behind.
        let tmp_left = std::fs::read_dir(store.root())
            .unwrap()
            .flatten()
            .any(|e| e.file_name().to_string_lossy().starts_with(".tmp-"));
        assert!(!tmp_left, "staging directory leaked");
    }

    #[test]
    fn corrupted_payload_is_detected_and_dropped() {
        let store = tmp_store("corrupt");
        let k = publish_one(&store);
        let payload = store.root().join(k.as_str()).join("fig3.json");
        std::fs::write(&payload, b"{\"x\":9}").unwrap(); // same length, wrong bytes
        assert!(store.probe(&k).is_none(), "altered payload must miss");
        assert!(!store.root().join(k.as_str()).exists(), "corrupt entry must be removed");
        // Re-publication after quarantine works.
        publish_one(&store);
        assert!(store.probe(&k).is_some());
    }

    #[test]
    fn truncated_payload_is_detected_and_dropped() {
        let store = tmp_store("truncate");
        let k = publish_one(&store);
        let payload = store.root().join(k.as_str()).join("fig3.json");
        std::fs::write(&payload, b"{\"x\"").unwrap();
        assert!(store.probe(&k).is_none());
        assert!(!store.root().join(k.as_str()).exists());
    }

    #[test]
    fn mangled_manifest_is_detected_and_dropped() {
        let store = tmp_store("manifest");
        let k = publish_one(&store);
        std::fs::write(store.root().join(k.as_str()).join("manifest.json"), b"not json").unwrap();
        assert!(store.probe(&k).is_none());
        assert!(!store.root().join(k.as_str()).exists());
    }

    #[test]
    fn missing_payload_is_detected_and_dropped() {
        let store = tmp_store("missing");
        let k = publish_one(&store);
        std::fs::remove_file(store.root().join(k.as_str()).join("fig3.json")).unwrap();
        assert!(store.probe(&k).is_none());
    }

    #[test]
    fn eviction_is_safe_under_a_reader() {
        let store = tmp_store("evict");
        let k = publish_one(&store);
        let held = store.probe(&k).unwrap();
        assert!(store.evict(&k), "entry must evict");
        // The reader's copy is intact after eviction…
        assert_eq!(held.files[0].1, b"{\"x\":1}".to_vec());
        // …and the store misses cleanly.
        assert!(store.probe(&k).is_none());
        assert!(!store.evict(&k), "double eviction reports absence");
        assert!(store.is_empty());
    }

    #[test]
    fn publish_rejects_illegal_payload_names() {
        let store = tmp_store("names");
        let k = key();
        for bad in ["", "manifest.json", "a/b.json", "..", ".hidden"] {
            let m = manifest_for(&k, "canon".into(), job(), Vec::new());
            let files = vec![(bad.to_string(), Vec::new())];
            assert!(store.publish(m, &files).is_err(), "name `{bad}` must be rejected");
        }
    }

    #[test]
    fn probe_of_unknown_key_is_a_plain_miss() {
        let store = tmp_store("unknown");
        assert!(store.probe(&key()).is_none());
    }
}
