//! The bounded worker-pool scheduler.
//!
//! Jobs are submitted into three FIFO **priority lanes** (`high` /
//! `normal` / `low`); a fixed pool of worker threads drains `high`
//! before `normal` before `low`, FIFO within each lane. Every job walks
//! the lifecycle `Queued → Running → Done | Failed`, with `Cancelled`
//! reachable only from `Queued` (a running simulation is never torn
//! down mid-flight — its result is still deterministic and cacheable).
//!
//! **Singleflight.** Submissions are collapsed by [`JobKey`]: while a
//! key is queued, running, or already done, further submissions of the
//! same key return the existing entry instead of enqueueing a second
//! execution (`deduped` in the submit outcome; a per-entry counter
//! records how many submissions collapsed). A `Failed` or `Cancelled`
//! key is re-armed by the next submission.
//!
//! **Cache-first execution.** A worker first probes the
//! [`ResultStore`]; a verified hit completes the job without touching
//! the backend, a miss executes via [`JobBackend::execute`] and
//! publishes the result atomically. Combined with singleflight this
//! gives the service the serving-stack property: N concurrent identical
//! requests cost one simulation, and repeats across process lifetimes
//! cost none.
//!
//! Wall-clock here (queue wait, execution time) is scheduling
//! telemetry: it lands only in CAS manifests and stats snapshots, both
//! of which exempt those fields from byte-stability, and never in
//! result payloads.

use crate::job::{canonical, Job, JobKey, Priority};
use crate::stats::{ExperimentStat, Stats};
use crate::store::{manifest_for, FingerprintEntry, ResultStore};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What one executed job produced: named result payloads, verbatim
/// bytes. Names become files both in the CAS entry and in whatever
/// results directory a client materializes them into.
#[derive(Debug, Clone, Default)]
pub struct JobOutput {
    /// `(file name, bytes)` per payload.
    pub files: Vec<(String, Vec<u8>)>,
}

/// What the scheduler delegates: resolving a job's graph inputs and
/// actually running it. Implemented by `cxlg-bench` over the experiment
/// registry; tests use stubs.
pub trait JobBackend: Send + Sync {
    /// `(dataset label, Csr::fingerprint)` for every graph the job
    /// consumes — the input half of the job key. Called at submit time;
    /// implementations should memoize (a fingerprint is a pure function
    /// of the dataset label).
    fn fingerprints(&self, job: &Job) -> Result<Vec<(String, u64)>, String>;

    /// Execute the job, returning its result payloads. Must be
    /// deterministic for a fixed job: byte-identical payloads on every
    /// call — the property that makes the result store sound.
    fn execute(&self, key: &JobKey, job: &Job) -> Result<JobOutput, String>;
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// In a lane, not yet picked up.
    Queued,
    /// A worker is executing (or replaying) it.
    Running,
    /// Finished successfully; results are in the store.
    Done,
    /// The backend reported an error (or panicked).
    Failed,
    /// Pulled from the queue before a worker picked it up.
    Cancelled,
}

impl JobStatus {
    /// Wire name (`queued` / `running` / `done` / `failed` / `cancelled`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Whether the lifecycle can no longer advance.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled)
    }
}

/// Point-in-time view of one job, as returned by `status` / `wait`.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job's key.
    pub key: JobKey,
    /// The submitted job.
    pub job: Job,
    /// Lane it was submitted into.
    pub priority: Priority,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Whether completion came from the result store.
    pub cache_hit: bool,
    /// Execution wall-clock (ms) — 0 until terminal; telemetry.
    pub wall_ms: f64,
    /// Time spent queued before a worker picked the job up (ms) —
    /// telemetry.
    pub queue_wait_ms: f64,
    /// How many submissions collapsed onto this entry after the first.
    pub dedup_hits: u64,
    /// Backend error for `Failed` jobs.
    pub error: Option<String>,
    /// Result payload names (CAS entry contents) once `Done`.
    pub files: Vec<String>,
}

/// Outcome of a submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Key naming the (possibly pre-existing) entry.
    pub key: JobKey,
    /// `true` when singleflight collapsed this submission onto an
    /// existing queued/running/done entry.
    pub deduped: bool,
}

struct Entry {
    job: Job,
    priority: Priority,
    status: JobStatus,
    cache_hit: bool,
    wall_ms: f64,
    queue_wait_ms: f64,
    dedup_hits: u64,
    error: Option<String>,
    files: Vec<String>,
    fingerprints: Vec<(String, u64)>,
    queued_at: Instant,
}

impl Entry {
    fn snapshot(&self, key: &JobKey) -> JobSnapshot {
        JobSnapshot {
            key: key.clone(),
            job: self.job.clone(),
            priority: self.priority,
            status: self.status,
            cache_hit: self.cache_hit,
            wall_ms: self.wall_ms,
            queue_wait_ms: self.queue_wait_ms,
            dedup_hits: self.dedup_hits,
            error: self.error.clone(),
            files: self.files.clone(),
        }
    }
}

#[derive(Default)]
struct Counters {
    completed: u64,
    failed: u64,
    cancelled: u64,
    deduped: u64,
    cache_hits: u64,
    cache_misses: u64,
}

struct State {
    lanes: [VecDeque<JobKey>; 3],
    entries: BTreeMap<JobKey, Entry>,
    running: usize,
    shutdown: bool,
    counters: Counters,
    per_experiment: BTreeMap<String, (u64, f64)>,
}

struct Inner {
    backend: Arc<dyn JobBackend>,
    store: ResultStore,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The bounded worker-pool scheduler over one result store and one
/// backend.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawn a scheduler with `workers` pool threads (clamped to ≥ 1).
    pub fn new(store: ResultStore, backend: Arc<dyn JobBackend>, workers: usize) -> Arc<Self> {
        let inner = Arc::new(Inner {
            backend,
            store,
            state: Mutex::new(State {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                entries: BTreeMap::new(),
                running: 0,
                shutdown: false,
                counters: Counters::default(),
                per_experiment: BTreeMap::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cxlg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Arc::new(Scheduler {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// The scheduler's result store.
    pub fn store(&self) -> &ResultStore {
        &self.inner.store
    }

    /// Submit a job. Resolves the job's graph fingerprints through the
    /// backend (errors surface here, before anything is enqueued),
    /// derives the key, and either enqueues a new entry or collapses
    /// onto an existing one (singleflight).
    pub fn submit(&self, job: Job, priority: Priority) -> Result<SubmitOutcome, String> {
        let fingerprints = self.inner.backend.fingerprints(&job)?;
        let key = JobKey::derive(&job, &fingerprints);
        let mut st = self.inner.state.lock().unwrap();
        if st.shutdown {
            return Err("scheduler is shut down".to_string());
        }
        if let Some(e) = st.entries.get_mut(&key) {
            if e.status != JobStatus::Failed && e.status != JobStatus::Cancelled {
                e.dedup_hits += 1;
                st.counters.deduped += 1;
                return Ok(SubmitOutcome { key, deduped: true });
            }
            // Re-arm a failed/cancelled entry.
            e.status = JobStatus::Queued;
            e.priority = priority;
            e.cache_hit = false;
            e.wall_ms = 0.0;
            e.queue_wait_ms = 0.0;
            e.error = None;
            e.files.clear();
            e.fingerprints = fingerprints;
            e.queued_at = Instant::now();
        } else {
            st.entries.insert(
                key.clone(),
                Entry {
                    job,
                    priority,
                    status: JobStatus::Queued,
                    cache_hit: false,
                    wall_ms: 0.0,
                    queue_wait_ms: 0.0,
                    dedup_hits: 0,
                    error: None,
                    files: Vec::new(),
                    fingerprints,
                    queued_at: Instant::now(),
                },
            );
        }
        st.lanes[priority.lane()].push_back(key.clone());
        drop(st);
        self.inner.work_cv.notify_one();
        Ok(SubmitOutcome { key, deduped: false })
    }

    /// Current view of a job, or `None` for an unknown key.
    pub fn status(&self, key: &JobKey) -> Option<JobSnapshot> {
        let st = self.inner.state.lock().unwrap();
        st.entries.get(key).map(|e| e.snapshot(key))
    }

    /// Block until the job reaches a terminal state; `None` for an
    /// unknown key.
    pub fn wait(&self, key: &JobKey) -> Option<JobSnapshot> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.entries.get(key) {
                None => return None,
                Some(e) if e.status.is_terminal() => return Some(e.snapshot(key)),
                Some(_) => st = self.inner.done_cv.wait(st).unwrap(),
            }
        }
    }

    /// Cancel a **queued** job. Running or terminal jobs are left alone
    /// (`false`): a running simulation completes and its result is
    /// cached — cancellation would only waste the work.
    pub fn cancel(&self, key: &JobKey) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(e) = st.entries.get_mut(key) else {
            return false;
        };
        if e.status != JobStatus::Queued {
            return false;
        }
        e.status = JobStatus::Cancelled;
        st.counters.cancelled += 1;
        drop(st);
        self.inner.done_cv.notify_all();
        true
    }

    /// Block until every queued job has been picked up and every
    /// running job has finished.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let queued_live = st.lanes.iter().flatten().any(|k| {
                st.entries
                    .get(k)
                    .is_some_and(|e| e.status == JobStatus::Queued)
            });
            if !queued_live && st.running == 0 {
                return;
            }
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Service statistics snapshot (byte-stable modulo the wall-clock
    /// fields; see [`crate::stats`]).
    pub fn stats(&self) -> Stats {
        let st = self.inner.state.lock().unwrap();
        let mut queue_depth = [0usize; 3];
        for (lane, depth) in queue_depth.iter_mut().enumerate() {
            *depth = st.lanes[lane]
                .iter()
                .filter(|k| {
                    st.entries
                        .get(*k)
                        .is_some_and(|e| e.status == JobStatus::Queued)
                })
                .count();
        }
        Stats {
            queue_depth,
            running: st.running,
            completed: st.counters.completed,
            failed: st.counters.failed,
            cancelled: st.counters.cancelled,
            deduped: st.counters.deduped,
            cache_hits: st.counters.cache_hits,
            cache_misses: st.counters.cache_misses,
            per_experiment: st
                .per_experiment
                .iter()
                .map(|(name, (jobs, wall_ms))| ExperimentStat {
                    experiment: name.clone(),
                    jobs: *jobs,
                    cumulative_wall_ms: *wall_ms,
                })
                .collect(),
        }
    }

    /// Stop the pool: cancel everything still queued, let running jobs
    /// finish, and join the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            if !st.shutdown {
                st.shutdown = true;
                let keys: Vec<JobKey> = st.lanes.iter().flatten().cloned().collect();
                for k in keys {
                    if let Some(e) = st.entries.get_mut(&k) {
                        if e.status == JobStatus::Queued {
                            e.status = JobStatus::Cancelled;
                            st.counters.cancelled += 1;
                        }
                    }
                }
                for lane in &mut st.lanes {
                    lane.clear();
                }
            }
        }
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    while let Some((key, job, fingerprints)) = next_job(inner) {
        run_one(inner, &key, &job, &fingerprints);
    }
}

/// Pop the next live queued job, preferring lower lane indices; park on
/// the work condvar while all lanes are empty. `None` on shutdown.
fn next_job(inner: &Inner) -> Option<(JobKey, Job, Vec<(String, u64)>)> {
    let mut st = inner.state.lock().unwrap();
    loop {
        if st.shutdown {
            return None;
        }
        let popped = (0..3).find_map(|lane| st.lanes[lane].pop_front());
        match popped {
            Some(key) => {
                let Some(e) = st.entries.get_mut(&key) else {
                    continue;
                };
                if e.status != JobStatus::Queued {
                    // Cancelled while queued (tombstone), or a stale
                    // lane entry from a re-armed key: skip.
                    continue;
                }
                e.status = JobStatus::Running;
                e.queue_wait_ms = e.queued_at.elapsed().as_secs_f64() * 1e3;
                let picked = (key.clone(), e.job.clone(), e.fingerprints.clone());
                st.running += 1;
                return Some(picked);
            }
            None => st = inner.work_cv.wait(st).unwrap(),
        }
    }
}

/// Execute (or replay) one job and record its terminal state.
fn run_one(inner: &Inner, key: &JobKey, job: &Job, fingerprints: &[(String, u64)]) {
    let started = Instant::now();
    let (result, cache_hit) = match inner.store.probe(key) {
        Some(hit) => (
            Ok(hit.files.iter().map(|(name, _)| name.clone()).collect::<Vec<_>>()),
            true,
        ),
        None => {
            // Fresh execution. A panicking backend fails the job, not
            // the worker thread.
            let (outcome, span) = cxlg_core::mem::rss_span(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner.backend.execute(key, job)
                }))
                .unwrap_or_else(|_| Err("backend panicked".to_string()))
            });
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            match outcome {
                Ok(output) => {
                    let mut manifest = manifest_for(
                        key,
                        canonical(job, fingerprints),
                        job.clone(),
                        fingerprints
                            .iter()
                            .map(|(spec, fp)| FingerprintEntry {
                                spec: spec.clone(),
                                fingerprint: *fp,
                            })
                            .collect(),
                    );
                    manifest.wall_ms = wall_ms;
                    manifest.rss_peak_kb = span.after_kb;
                    manifest.rss_delta_kb = span.delta_kb();
                    match inner.store.publish(manifest, &output.files) {
                        Ok(_) => (
                            Ok(output.files.iter().map(|(n, _)| n.clone()).collect()),
                            false,
                        ),
                        Err(e) => (Err(format!("result publication failed: {e}")), false),
                    }
                }
                Err(e) => (Err(e), false),
            }
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut st = inner.state.lock().unwrap();
    if cache_hit {
        st.counters.cache_hits += 1;
    } else {
        st.counters.cache_misses += 1;
    }
    let exp_stat = st.per_experiment.entry(job.experiment.clone()).or_insert((0, 0.0));
    exp_stat.0 += 1;
    exp_stat.1 += wall_ms;
    match &result {
        Ok(_) => st.counters.completed += 1,
        Err(_) => st.counters.failed += 1,
    }
    if let Some(e) = st.entries.get_mut(key) {
        e.cache_hit = cache_hit;
        e.wall_ms = wall_ms;
        match result {
            Ok(files) => {
                e.status = JobStatus::Done;
                e.files = files;
            }
            Err(msg) => {
                e.status = JobStatus::Failed;
                e.error = Some(msg);
            }
        }
    }
    st.running -= 1;
    drop(st);
    inner.done_cv.notify_all();
}
